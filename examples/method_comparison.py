"""Compare all five search methods on one workload.

Run:  python examples/method_comparison.py

Reproduces the paper's comparison in miniature: the four exact methods
(Naive-Scan, LB-Scan, ST-Filter, TW-Sim-Search) answer identically but
at very different costs, and the FastMap method — excluded from the
paper's evaluation for exactly this reason — visibly loses answers.
"""

from repro.data import QueryWorkload, synthetic_sp500
from repro.eval.reporting import format_table
from repro.methods import FastMapMethod, LBScan, NaiveScan, STFilter, TWSimSearch
from repro.storage import SequenceDatabase


def main() -> None:
    dataset = synthetic_sp500(150, 60, seed=11)
    db = SequenceDatabase(page_size=1024)
    db.insert_many(dataset.sequences)
    print(f"database: {len(db)} sequences, {db.total_pages} pages\n")

    methods = [
        NaiveScan(db).build(),
        LBScan(db).build(),
        STFilter(db, n_categories=100).build(),
        TWSimSearch(db).build(),
        FastMapMethod(db, k=4, seed=0).build(),
    ]

    queries = QueryWorkload(dataset.sequences, n_queries=8, seed=3).queries()
    epsilon = 1.5

    rows = []
    dismissals = 0
    totals = {m.name: [0, 0, 0.0, 0.0] for m in methods}
    for query in queries:
        truth = None
        for method in methods:
            report = method.search(query, epsilon)
            agg = totals[method.name]
            agg[0] += len(report.answers)
            agg[1] += len(report.candidates)
            agg[2] += report.stats.cpu_seconds
            agg[3] += report.stats.simulated_io_seconds
            if method.name == "Naive-Scan":
                truth = report
            if method.name == "FastMap" and truth is not None:
                dismissals += len(
                    FastMapMethod.false_dismissals(report, truth)
                )

    n = len(queries)
    for name, (answers, candidates, cpu, io) in totals.items():
        rows.append(
            [
                name,
                answers / n,
                candidates / n,
                cpu / n,
                io / n,
                (cpu + io) / n,
            ]
        )
    print(
        format_table(
            ["method", "answers", "candidates", "cpu s", "sim-io s", "elapsed s"],
            rows,
            title=f"mean per query over {n} queries at eps={epsilon}",
        )
    )
    print()
    print(
        f"exact methods all returned {rows[0][1]:.1f} answers per query; "
        f"FastMap returned {rows[4][1]:.1f} "
        f"({dismissals} false dismissal(s) across the workload)."
    )
    print(
        "TW-Sim-Search touched "
        f"{totals['TW-Sim-Search'][1] / n:.1f} candidate sequence(s) per query "
        f"vs {len(db)} sequences read by each scan."
    )


if __name__ == "__main__":
    main()
