"""Cluster stocks by time-warping similarity (the intro's data-mining use).

Run:  python examples/stock_clustering.py

Uses the analysis layer on top of the paper's machinery: a calibrated
tolerance (target selectivity), an index-pruned similarity self-join,
connected-component clustering, and medoid extraction — "which tickers
traded alike, and which one is the archetype of each group".
"""

import numpy as np

from repro.analysis import cluster_by_similarity, suggest_epsilon
from repro.analysis.clustering import medoid
from repro.analysis.selfjoin import similarity_self_join
from repro.data import synthetic_sp500


def main() -> None:
    dataset = synthetic_sp500(160, 50, seed=23)
    sequences = [np.asarray(s.values) for s in dataset.sequences]
    labels = [s.label for s in dataset.sequences]
    print(f"dataset: {len(sequences)} tickers, ~{dataset.average_length:.0f} days")

    # Pick a tolerance that makes roughly 1.5% of random pairs similar.
    epsilon = suggest_epsilon(sequences, target_selectivity=0.015, seed=1)
    print(f"calibrated tolerance: eps = {epsilon:.3f} "
          "(targeting ~1.5% pair selectivity)\n")

    pairs = similarity_self_join(sequences, epsilon)
    print(f"similarity self-join: {len(pairs)} qualifying pair(s)")
    for pair in pairs[:5]:
        print(
            f"  {labels[pair.left]} ~ {labels[pair.right]} "
            f"(D_tw={pair.distance:.3f})"
        )
    print()

    clustering = cluster_by_similarity(sequences, epsilon)
    groups = clustering.non_trivial()
    print(f"clusters with >= 2 members: {len(groups)}")
    for rank, members in enumerate(groups[:6], 1):
        archetype = medoid(sequences, members)
        names = ", ".join(labels[i] for i in members[:6])
        extra = " ..." if len(members) > 6 else ""
        print(
            f"  #{rank}: {len(members)} tickers (medoid {labels[archetype]}): "
            f"{names}{extra}"
        )
    singletons = clustering.n_clusters - len(groups)
    print(f"\n{singletons} ticker(s) have no sufficiently similar peer.")


if __name__ == "__main__":
    main()
