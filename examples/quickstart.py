"""Quickstart: similarity search under time warping in five minutes.

Run:  python examples/quickstart.py

Builds a small TimeWarpingDatabase, inserts sequences of *different
lengths* (the scenario the paper targets — Euclidean distance cannot
even be evaluated there), and runs tolerance and k-nearest-neighbour
queries.  All results are exact: the 4-d feature index prunes with the
paper's lower bound, which provably never loses an answer.
"""

from repro import TimeWarpingDatabase, dtw_max


def main() -> None:
    db = TimeWarpingDatabase()

    # The paper's introduction example: S and Q describe the same shape
    # at different speeds, so their time-warping distance is zero.
    s_id = db.insert([20, 21, 21, 20, 20, 23, 23, 23], label="paper-S")

    # More sequences, various lengths and levels.
    db.insert([20, 20, 20, 21, 22, 23], label="similar-shape")
    db.insert([20, 25, 20, 25, 20], label="oscillating")
    db.insert([5, 6, 7, 8], label="rising-low")
    db.insert([20.5, 21.5, 20.5, 23.5, 23.0], label="near-miss")

    query = [20, 20, 21, 20, 23]
    print(f"query: {query}")
    print(f"database: {len(db)} sequences of lengths "
          f"{[len(db.get(i)) for i in range(len(db))]}")
    print()

    # -- tolerance search ------------------------------------------------
    for epsilon in (0.0, 0.75, 2.0):
        matches = db.search(query, epsilon=epsilon)
        names = [
            f"{db.label_of(m.seq_id)} (D_tw={m.distance:.2f})" for m in matches
        ]
        print(f"eps = {epsilon:>4}: {len(matches)} match(es): {names}")
    print()

    # -- k nearest neighbours ---------------------------------------------
    print("3 nearest neighbours under time warping:")
    for match in db.knn(query, k=3):
        print(
            f"  {db.label_of(match.seq_id):>14}  D_tw = {match.distance:.3f}"
        )
    print()

    # -- the distance itself ---------------------------------------------
    s = db.get(s_id)
    print(
        "dtw_max(paper-S, query) =", dtw_max(s.values, query),
        "(zero: both warp onto the same shape)",
    )


if __name__ == "__main__":
    main()
