"""Stock screening: find tickers whose price history matches a pattern.

Run:  python examples/stock_screening.py

The paper's motivating workload: a database of S&P-500-style daily
price sequences of *different lengths* (different listing dates and
sampling), searched for tickers whose recent trajectory is similar to a
target pattern under time warping.  Uses the synthetic S&P-500 stand-in
(DESIGN.md documents the substitution; point ``load_stock_csv`` at a
real file to use actual data).
"""

import numpy as np

from repro import TimeWarpingDatabase
from repro.data import synthetic_sp500


def main() -> None:
    dataset = synthetic_sp500(seed=42)
    print(
        f"dataset: {len(dataset)} tickers, average length "
        f"{dataset.average_length:.0f} days, source={dataset.source}"
    )

    db = TimeWarpingDatabase(page_size=1024)
    db.bulk_load(dataset.sequences)
    print(f"indexed {len(db)} sequences "
          f"({db.index.node_count()} R-tree pages)\n")

    # Screen for tickers that traded like TICK0100 did, allowing time
    # warping (a slower or faster version of the same move matches).
    target = dataset.sequences[100]
    pattern = np.asarray(target.values)
    print(f"target pattern: {target.label}, "
          f"{len(pattern)} days, range "
          f"[{pattern.min():.2f}, {pattern.max():.2f}]")

    for epsilon in (1.0, 2.5, 5.0):
        matches = db.search(pattern, epsilon=epsilon)
        tickers = [db.label_of(m.seq_id) for m in matches]
        shown = ", ".join(tickers[:8]) + (" ..." if len(tickers) > 8 else "")
        print(f"  within eps={epsilon:>4}: {len(matches):>3} ticker(s)  {shown}")
    print()

    # Nearest peers regardless of tolerance.
    print(f"5 tickers most similar to {target.label}:")
    for match in db.knn(pattern, k=5):
        seq = match.sequence
        print(
            f"  {db.label_of(match.seq_id):>9}  D_tw={match.distance:7.3f}  "
            f"len={len(seq):>3}  last={seq.last:8.2f}"
        )
    print()

    # A hand-drawn pattern also works — any length, any level.
    print("screening for a hand-drawn 'V' recovery around $50:")
    v_shape = [55, 52, 49, 47, 46, 47, 50, 54, 58]
    hits = db.search(v_shape, epsilon=6.0)
    print(f"  {len(hits)} ticker(s) match within eps=6.0; closest three:")
    for match in hits[:3]:
        print(f"  {db.label_of(match.seq_id):>9}  D_tw={match.distance:.3f}")


if __name__ == "__main__":
    main()
