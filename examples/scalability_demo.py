"""Scalability: why the index wins as the database grows (mini Figure 4).

Run:  python examples/scalability_demo.py

Builds random-walk databases of increasing size and measures all four
methods on the same queries, printing the per-query elapsed time
(measured CPU + simulated 2001-era disk) and the growing speedup of
TW-Sim-Search — the paper's Figure-4 story at laptop scale.
"""

from repro.data import QueryWorkload
from repro.eval.experiments import make_synthetic_database
from repro.eval.harness import WorkloadRunner
from repro.eval.reporting import format_table
from repro.methods import LBScan, NaiveScan, STFilter, TWSimSearch


def main() -> None:
    epsilon = 0.1
    length = 80
    rows = []
    for n in (200, 800, 3200):
        db, sequences = make_synthetic_database(n, length, seed=17)
        runner = WorkloadRunner(
            db,
            [
                lambda d: NaiveScan(d),
                lambda d: LBScan(d),
                lambda d: STFilter(d),
                lambda d: TWSimSearch(d),
            ],
        )
        queries = QueryWorkload(sequences, n_queries=4, seed=17).queries()
        summary = runner.run(queries, epsilon)
        rows.append(
            [
                n,
                summary["Naive-Scan"].mean_elapsed,
                summary["LB-Scan"].mean_elapsed,
                summary["ST-Filter"].mean_elapsed,
                summary["TW-Sim-Search"].mean_elapsed,
                summary.speedup("TW-Sim-Search", "LB-Scan"),
            ]
        )
        print(f"ran N={n} ({length}-element sequences)")

    print()
    print(
        format_table(
            [
                "N",
                "Naive-Scan s",
                "LB-Scan s",
                "ST-Filter s",
                "TW-Sim s",
                "speedup vs LB",
            ],
            rows,
            title=f"elapsed seconds per query (eps={epsilon})",
        )
    )
    print()
    print(
        "The scans grow linearly with N; TW-Sim-Search stays nearly flat, "
        "so its advantage keeps growing — the paper reports up to 720x at "
        "100,000 sequences."
    )


if __name__ == "__main__":
    main()
