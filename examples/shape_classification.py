"""Shape classification and live monitoring on cylinder-bell-funnel data.

Run:  python examples/shape_classification.py

Two downstream uses of the paper's machinery:

1. **1-NN classification** with LB_Kim pruning — label unseen shapes by
   their nearest training example under time warping, skipping most
   DTW evaluations thanks to the lower bound.
2. **Live stream monitoring** — watch an incoming tick stream and fire
   the moment its prefix warps onto a target pattern within tolerance.
"""

import numpy as np

from repro.analysis.classify import NearestNeighborClassifier
from repro.core.streaming import StreamMonitor
from repro.data.shapes import CBF_CLASSES, cbf_dataset
from repro.transforms import znormalize


def main() -> None:
    # -- 1. classification ----------------------------------------------
    train = cbf_dataset(10, 64, seed=1, noise=0.2)
    test = cbf_dataset(5, 64, seed=777, noise=0.2)
    normalize = lambda seqs: [znormalize(s.values).values for s in seqs]

    clf = NearestNeighborClassifier(normalize(train), [s.label for s in train])
    print(f"training: {len(clf)} examples of classes {clf.classes}")

    predictions = clf.predict_many(normalize(test))
    correct = sum(
        p.label == t.label for p, t in zip(predictions, test)
    )
    mean_evals = np.mean([p.dtw_evaluations for p in predictions])
    print(
        f"test accuracy: {correct}/{len(test)} "
        f"({100 * correct / len(test):.0f}%), "
        f"mean DTW evaluations per query: {mean_evals:.1f} of {len(clf)} "
        "(LB_Kim pruned the rest)\n"
    )
    for pred, truth in zip(predictions[:6], test[:6]):
        flag = "ok " if pred.label == truth.label else "MISS"
        print(
            f"  [{flag}] true={truth.label:<8} predicted={pred.label:<8} "
            f"D_tw={pred.distance:.3f}"
        )

    # -- 2. live monitoring ------------------------------------------------
    print("\nlive monitor: waiting for a 'ramp to 5' pattern in a stream")
    pattern = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    monitor = StreamMonitor(pattern, epsilon=0.3)
    rng = np.random.default_rng(3)
    # A stream that wanders, then performs the ramp in slow motion.
    stream = list(rng.uniform(-0.2, 0.2, 4))
    for level in pattern:
        stream.extend([level + rng.uniform(-0.1, 0.1)] * 2)
    fired_at = None
    for t, value in enumerate(stream):
        if monitor.push(value):
            fired_at = t
            break
        if not monitor.can_still_match:
            print(f"  t={t}: prefix can no longer match; resetting")
            monitor.reset()
    if fired_at is not None:
        print(
            f"  t={fired_at}: MATCH — the stream prefix warps onto the "
            f"pattern within eps=0.3"
        )
    else:
        print("  stream ended without a match")


if __name__ == "__main__":
    main()
