"""Subsequence matching: find a planted motif inside long sequences.

Run:  python examples/subsequence_motifs.py

The paper's section-6 extension: index feature vectors of sliding
windows instead of whole sequences, then answer "where does anything
like this pattern occur?" queries.  We plant a distinctive motif inside
a few long random walks — at different speeds, exercising the time
warping — and recover every occurrence.
"""

import numpy as np

from repro import SubsequenceIndex


def stretch(values, factor_pattern):
    """Time-warp a motif by replicating elements (the paper's transform)."""
    out = []
    for value, reps in zip(values, factor_pattern):
        out.extend([value] * reps)
    return out


def main() -> None:
    rng = np.random.default_rng(8)
    motif = [5.0, 5.6, 6.3, 6.8, 6.3, 5.6, 5.0, 4.4, 5.0]  # a bump
    print(f"motif: {motif}\n")

    # Build ten long noisy walks; plant the motif (sometimes stretched)
    # in three of them.
    sequences = []
    plants = {}
    for i in range(10):
        walk = list(np.cumsum(rng.uniform(-0.15, 0.15, 120)) + 2.0)
        if i in (2, 5, 8):
            reps = [1] * len(motif)
            if i == 5:  # slow-motion occurrence: every element doubled
                reps = [2] * len(motif)
            planted = stretch(motif, reps)
            pos = int(rng.integers(10, 120 - len(planted) - 10))
            walk[pos : pos + len(planted)] = planted
            plants[i] = (pos, len(planted))
        sequences.append(walk)

    # Index windows at the motif's own scale and its doubled form.
    index = SubsequenceIndex(window_lengths=[9, 18], stride=1)
    for i, seq in enumerate(sequences):
        index.add(seq, seq_id=i)
    index.build()
    print(
        f"indexed {index.window_count} windows of lengths "
        f"{index.window_lengths} over {len(sequences)} sequences\n"
    )

    matches = index.search(motif, epsilon=0.05)
    print(f"matches within eps=0.05: {len(matches)}")
    found_in = sorted({m.seq_id for m in matches})
    for m in matches[:12]:
        marker = ""
        if m.seq_id in plants and m.start == plants[m.seq_id][0]:
            marker = "   <- planted here"
        print(
            f"  seq {m.seq_id}  offset {m.start:>3}  len {m.length:>2}  "
            f"D_tw={m.distance:.4f}{marker}"
        )
    print()
    print(f"sequences containing a match: {found_in}")
    print(f"sequences with a planted motif: {sorted(plants)}")
    assert set(plants) <= set(found_in), "a planted motif was missed!"

    best = index.best_match(motif)
    assert best is not None
    print(
        f"\nbest single match: seq {best.seq_id} at offset {best.start} "
        f"(D_tw={best.distance:.4f})"
    )


if __name__ == "__main__":
    main()
