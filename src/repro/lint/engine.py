"""The rule engine behind ``repro lint``.

Stdlib-only static analysis: every checked file is parsed once into an
:class:`ast.Module` (plus a :mod:`tokenize` pass for suppression
comments) and handed to each active rule.  Rules are small classes with
two hooks — :meth:`Rule.check_file` for per-file checks and
:meth:`Rule.finalize` for whole-project checks that need to see every
file (dead exports, the no-false-dismissal registry cross-reference).

Suppressions are per-line comments::

    raise KeyError(name)  # repro-lint: disable=RL004
    # repro-lint: disable-file=RL003   (anywhere: whole file)

``disable=all`` / ``disable-file=all`` silence every rule.  Suppressed
findings are still collected (reported separately) so ``--format json``
artifacts show what was waived, not just what fired.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ValidationError
from ..obs.export import render_table

__all__ = [
    "Violation",
    "FileContext",
    "Project",
    "Rule",
    "LintReport",
    "run_lint",
    "apply_suppressions",
    "load_literal_dict_manifest",
    "manifest_entry_problem",
]

#: Rule code reserved for files the engine itself cannot parse.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)=([A-Za-z0-9_*,\s]+|all)"
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule code anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable anchor."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready plain-data form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """``(line -> codes, file-level codes)`` from suppression comments."""
    per_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, frozenset()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() if code.strip() != "all" else "all"
            for code in match.group(2).split(",")
            if code.strip()
        )
        if match.group(1) == "disable-file":
            whole_file.update(codes)
        else:
            line = token.start[0]
            per_line[line] = per_line.get(line, frozenset()) | codes
    return per_line, frozenset(whole_file)


class FileContext:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        suppressions, file_suppressions = _parse_suppressions(source)
        self.suppressions = suppressions
        self.file_suppressions = file_suppressions
        self._imports: dict[str, str] | None = None

    # -- suppression lookup --------------------------------------------------

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when *code* is waived on *line* (or file-wide)."""
        if "all" in self.file_suppressions or code in self.file_suppressions:
            return True
        codes = self.suppressions.get(line)
        return codes is not None and ("all" in codes or code in codes)

    # -- import-aware name resolution ---------------------------------------

    @property
    def imports(self) -> dict[str, str]:
        """Local alias -> dotted origin, from this file's import statements.

        ``import numpy as np`` maps ``np -> numpy``;
        ``from threading import Lock`` maps ``Lock -> threading.Lock``;
        relative imports keep their leading dots
        (``from ..obs.metrics import count`` -> ``..obs.metrics.count``).
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
                elif isinstance(node, ast.ImportFrom):
                    module = "." * node.level + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = (
                            f"{module}.{alias.name}" if module else alias.name
                        )
            self._imports = table
        return self._imports

    def qualified(self, node: ast.expr) -> str | None:
        """The dotted origin of a Name/Attribute chain, import-resolved.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        an unimported bare name resolves to itself (builtins).
        Returns ``None`` for expressions that are not a plain chain.
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def identifiers(self) -> frozenset[str]:
        """Every identifier-shaped token in the source (docstrings too)."""
        return frozenset(_IDENTIFIER_RE.findall(self.source))


class Project:
    """Everything one lint run can see: parsed files plus the repo root.

    *root* anchors the cross-file rules (the no-false-dismissal manifest
    under ``tests/``, the dead-export reference corpus spanning
    ``src``/``tests``/``benchmarks``/``docs``).
    """

    #: Directories (relative to root) scanned for cross-reference files.
    REFERENCE_DIRS = ("src", "tests", "benchmarks", "examples")

    def __init__(self, root: Path, files: list[FileContext]) -> None:
        self.root = root
        self.files = files
        self._by_rel = {ctx.rel: ctx for ctx in files}
        self._reference_identifiers: dict[str, frozenset[str]] | None = None

    def file(self, rel: str) -> FileContext | None:
        """The checked file at repo-relative posix path *rel*, if any."""
        return self._by_rel.get(rel)

    def reference_identifiers(self) -> dict[str, frozenset[str]]:
        """Identifier sets of every reference file, keyed by rel path.

        Covers all Python under :attr:`REFERENCE_DIRS` plus the Markdown
        docs (``*.md`` at the root and under ``docs/``) — a textual
        mention in documentation keeps a public symbol alive.
        """
        if self._reference_identifiers is not None:
            return self._reference_identifiers
        corpus: dict[str, frozenset[str]] = {}
        paths: list[Path] = []
        for sub in self.REFERENCE_DIRS:
            base = self.root / sub
            if base.is_dir():
                paths.extend(sorted(base.rglob("*.py")))
        paths.extend(sorted(self.root.glob("*.md")))
        docs = self.root / "docs"
        if docs.is_dir():
            paths.extend(sorted(docs.rglob("*.md")))
        for path in paths:
            rel = path.relative_to(self.root).as_posix()
            if rel in corpus:
                continue
            try:
                text = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            corpus[rel] = frozenset(_IDENTIFIER_RE.findall(text))
        self._reference_identifiers = corpus
        return corpus


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`code` (``RL0xx``), :attr:`title` (a short
    imperative label) and :attr:`rationale` (one sentence tying the rule
    to the invariant it protects), then override one or both hooks.
    """

    code: str = "RL0XX"
    title: str = ""
    rationale: str = ""

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        """Per-file findings (default: none)."""
        return iter(())

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Whole-project findings, after every file was seen."""
        return iter(())

    def violation(
        self, ctx_or_rel: FileContext | str, node: ast.AST | None, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at *node* (or the file)."""
        rel = ctx_or_rel.rel if isinstance(ctx_or_rel, FileContext) else ctx_or_rel
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Violation(rel, int(line), int(col) + 1, self.code, message)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    root: Path
    files_checked: int
    rules: list[str]
    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Non-zero iff any unsuppressed finding remains."""
        return 1 if self.violations else 0

    def to_json(self, *, indent: int = 2) -> str:
        """The machine-readable report (the CI artifact)."""
        return json.dumps(
            {
                "root": str(self.root),
                "files_checked": self.files_checked,
                "rules": list(self.rules),
                "summary": {
                    "violations": len(self.violations),
                    "suppressed": len(self.suppressed),
                },
                "violations": [v.to_dict() for v in self.violations],
                "suppressed": [v.to_dict() for v in self.suppressed],
            },
            indent=indent,
            sort_keys=True,
        )

    def render(self) -> str:
        """The human-readable table (reuses the obs table renderer)."""
        lines: list[str] = []
        if self.violations:
            lines.append(
                render_table(
                    ("rule", "location", "message"),
                    [
                        (v.rule, v.location, v.message)
                        for v in self.violations
                    ],
                )
            )
            lines.append("")
        lines.append(
            f"repro lint: {len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked, "
            f"rules: {', '.join(self.rules)}"
        )
        return "\n".join(lines)


def find_project_root(start: Path) -> Path:
    """Walk up from *start* to the enclosing ``pyproject.toml`` holder."""
    current = start if start.is_dir() else start.parent
    current = current.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def _collect_paths(paths: Sequence[str | Path]) -> list[Path]:
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ValidationError(f"lint path does not exist: {path}")
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(resolved)
    return collected


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Run the rule pack over *paths*; returns the :class:`LintReport`.

    *rules* restricts the pack to the given codes (case-insensitive);
    *root* overrides project-root autodetection (the nearest ancestor
    of the first path holding a ``pyproject.toml``).
    """
    from .rules import make_rules  # deferred: rules import this module

    if not paths:
        raise ValidationError("at least one lint path is required")
    files = _collect_paths(paths)
    project_root = (
        Path(root).resolve() if root is not None else find_project_root(
            Path(paths[0]).resolve()
        )
    )
    active_rules = make_rules(rules)
    contexts: list[FileContext] = []
    parse_failures: list[Violation] = []
    for path in files:
        rel = _relative(path, project_root)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", 1) or 1
            parse_failures.append(
                Violation(
                    rel,
                    int(line),
                    1,
                    PARSE_ERROR_CODE,
                    f"cannot parse file: {error}",
                )
            )
            continue
        contexts.append(FileContext(path, rel, source, tree))
    project = Project(project_root, contexts)

    raw: list[Violation] = list(parse_failures)
    for rule in active_rules:
        for ctx in contexts:
            raw.extend(rule.check_file(ctx, project))
        raw.extend(rule.finalize(project))

    active: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in sorted(set(raw)):
        ctx = project.file(violation.path)
        if ctx is not None and ctx.is_suppressed(violation.line, violation.rule):
            suppressed.append(violation)
        else:
            active.append(violation)
    return LintReport(
        root=project_root,
        files_checked=len(contexts) + len(parse_failures),
        rules=[rule.code for rule in active_rules],
        violations=active,
        suppressed=suppressed,
    )


def apply_suppressions(report: LintReport) -> list[Path]:
    """Append ``# repro-lint: disable=...`` to every violating line.

    The ``--fix-suppressions`` escape hatch for landing the analyzer on
    a tree with known, accepted debt: each unsuppressed finding gets an
    inline waiver (one comment per line, codes merged).  Lines that
    already carry a ``repro-lint:`` comment are left untouched.  Returns
    the modified files.
    """
    by_file: dict[str, dict[int, set[str]]] = {}
    for violation in report.violations:
        if violation.rule == PARSE_ERROR_CODE:
            continue
        by_file.setdefault(violation.path, {}).setdefault(
            violation.line, set()
        ).add(violation.rule)
    changed: list[Path] = []
    for rel, lines in sorted(by_file.items()):
        path = report.root / rel
        try:
            text = path.read_text()
        except OSError:
            continue
        source_lines = text.splitlines()
        modified = False
        for lineno, codes in lines.items():
            index = lineno - 1
            if index >= len(source_lines):
                continue
            line = source_lines[index]
            if "repro-lint:" in line:
                continue
            joined = ",".join(sorted(codes))
            source_lines[index] = f"{line}  # repro-lint: disable={joined}"
            modified = True
        if modified:
            trailing = "\n" if text.endswith("\n") else ""
            path.write_text("\n".join(source_lines) + trailing)
            changed.append(path)
    return changed


def load_literal_dict_manifest(
    root: Path, manifest_rel: str, manifest_var: str
) -> tuple[dict[str, str] | None, str | None]:
    """``(registry, error)`` from a literal str->str dict manifest file.

    The manifest convention shared by the registry cross-reference rules
    (RL001's no-false-dismissal registry, RL009's kernel-parity
    registry): a ``tests/``-side module assigns *manifest_var* a plain
    dict literal, read here with :func:`ast.literal_eval` — the manifest
    is never imported, so it stays checkable on unimportable trees.
    """
    path = root / manifest_rel
    if not path.is_file():
        return None, f"manifest {manifest_rel} not found"
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as error:
        return None, f"manifest {manifest_rel} is unreadable: {error}"
    for node in tree.body:
        targets: list[ast.expr]
        value_node: ast.expr
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value_node = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value_node = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == manifest_var
            for target in targets
        ):
            continue
        try:
            value = ast.literal_eval(value_node)
        except ValueError:
            return None, (
                f"manifest {manifest_rel}: {manifest_var} "
                "must be a literal dict"
            )
        if not isinstance(value, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in value.items()
        ):
            return None, (
                f"manifest {manifest_rel}: {manifest_var} "
                "must map names to test file paths"
            )
        return value, None
    return None, f"manifest {manifest_rel} does not define {manifest_var}"


def manifest_entry_problem(
    root: Path, registry: dict[str, str], name: str, manifest_rel: str
) -> str | None:
    """Why *name*'s manifest entry fails to vouch for it, or ``None``.

    Checks the three liveness conditions a registry entry must satisfy:
    the entry exists, the mapped test file exists, and that file
    actually references *name* as a whole word.
    """
    test_rel = registry.get(name)
    if test_rel is None:
        return f"not registered in {manifest_rel}"
    test_path = root / test_rel
    if not test_path.is_file():
        return f"maps to missing test file {test_rel!r} in {manifest_rel}"
    try:
        text = test_path.read_text()
    except OSError as err:
        return f"registered test {test_rel!r} is unreadable: {err}"
    if not re.search(rf"\b{re.escape(name)}\b", text):
        return f"registered test {test_rel!r} never references {name!r}"
    return None


def iter_module_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Top-level function definitions of a module (helper for rules)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_all_entries(tree: ast.Module) -> list[tuple[str, ast.expr]]:
    """``__all__`` string entries of a module with their AST nodes."""
    entries: list[tuple[str, ast.expr]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append((element.value, element))
    return entries


def literal_parts(node: ast.expr) -> str | None:
    """A string constant, or an f-string with placeholders as ``x``.

    Lets rules validate the *shape* of built names
    (``f"cascade.{name}.in"`` -> ``cascade.x.in``) without evaluating
    the formatted values.  Returns ``None`` for non-string expressions.
    """
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("x")
            else:
                return None
        return "".join(parts)
    return None


def walk_assign_targets(node: ast.stmt) -> Iterable[ast.expr]:
    """Assignment target expressions of Assign/AugAssign/AnnAssign."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []
