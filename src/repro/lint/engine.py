"""The rule engine behind ``repro lint``.

Stdlib-only static analysis: every checked file is parsed once into an
:class:`ast.Module` (plus a :mod:`tokenize` pass for suppression
comments) and handed to each active rule.  Rules are small classes with
three hooks — :meth:`Rule.check_file` for per-file checks,
:meth:`Rule.finalize` for whole-project checks that need to see every
file (dead exports, the no-false-dismissal registry cross-reference),
and :meth:`Rule.check_project` for rules that opt into the semantic
core (:mod:`repro.lint.semantics`): the import/module graph, symbol
table and conservative call graph are built once per run, lazily, and
shared by every opted-in rule.

Suppressions are per-line comments::

    raise KeyError(name)  # repro-lint: disable=RL004
    # repro-lint: disable-file=RL003   (anywhere: whole file)

``disable=all`` / ``disable-file=all`` silence every rule.  Suppressed
findings are still collected (reported separately) so ``--format json``
artifacts show what was waived, not just what fired.  Waivers whose
rule no longer fires on their line are reported in the ``stale``
section and removable with :func:`prune_suppressions`
(``--prune-suppressions``).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import ValidationError
from ..obs.export import render_table

if TYPE_CHECKING:
    from .semantics import SemanticGraph

__all__ = [
    "Violation",
    "StaleSuppression",
    "FileContext",
    "Project",
    "Rule",
    "LintReport",
    "run_lint",
    "apply_suppressions",
    "prune_suppressions",
    "load_literal_dict_manifest",
    "manifest_entry_problem",
]

#: Rule code reserved for files the engine itself cannot parse.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)=([A-Za-z0-9_*,\s]+|all)"
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule code anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable anchor."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready plain-data form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], dict[str, int]]:
    """``(line -> codes, file-level code -> declaring line)``."""
    per_line: dict[int, frozenset[str]] = {}
    whole_file: dict[str, int] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, whole_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() if code.strip() != "all" else "all"
            for code in match.group(2).split(",")
            if code.strip()
        )
        if match.group(1) == "disable-file":
            for code in codes:
                whole_file.setdefault(code, token.start[0])
        else:
            line = token.start[0]
            per_line[line] = per_line.get(line, frozenset()) | codes
    return per_line, whole_file


class FileContext:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        suppressions, file_suppression_lines = _parse_suppressions(source)
        self.suppressions = suppressions
        self.file_suppression_lines = file_suppression_lines
        self.file_suppressions = frozenset(file_suppression_lines)
        self._imports: dict[str, str] | None = None

    # -- suppression lookup --------------------------------------------------

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when *code* is waived on *line* (or file-wide)."""
        if "all" in self.file_suppressions or code in self.file_suppressions:
            return True
        codes = self.suppressions.get(line)
        return codes is not None and ("all" in codes or code in codes)

    # -- import-aware name resolution ---------------------------------------

    @property
    def imports(self) -> dict[str, str]:
        """Local alias -> dotted origin, from this file's import statements.

        ``import numpy as np`` maps ``np -> numpy``;
        ``from threading import Lock`` maps ``Lock -> threading.Lock``;
        relative imports keep their leading dots
        (``from ..obs.metrics import count`` -> ``..obs.metrics.count``).
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
                elif isinstance(node, ast.ImportFrom):
                    module = "." * node.level + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = (
                            f"{module}.{alias.name}" if module else alias.name
                        )
            self._imports = table
        return self._imports

    def qualified(self, node: ast.expr) -> str | None:
        """The dotted origin of a Name/Attribute chain, import-resolved.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        an unimported bare name resolves to itself (builtins).
        Returns ``None`` for expressions that are not a plain chain.
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def identifiers(self) -> frozenset[str]:
        """Every identifier-shaped token in the source (docstrings too)."""
        return frozenset(_IDENTIFIER_RE.findall(self.source))


class Project:
    """Everything one lint run can see: parsed files plus the repo root.

    *root* anchors the cross-file rules (the no-false-dismissal manifest
    under ``tests/``, the dead-export reference corpus spanning
    ``src``/``tests``/``benchmarks``/``docs``).
    """

    #: Directories (relative to root) scanned for cross-reference files.
    REFERENCE_DIRS = ("src", "tests", "benchmarks", "examples")

    def __init__(self, root: Path, files: list[FileContext]) -> None:
        self.root = root
        # Sorted by repo-relative path so every downstream consumer —
        # rule anchors, the semantic graph, the JSON report — is
        # independent of file-discovery order.
        self.files = sorted(files, key=lambda ctx: ctx.rel)
        self._by_rel = {ctx.rel: ctx for ctx in self.files}
        self._reference_identifiers: dict[str, frozenset[str]] | None = None

    def file(self, rel: str) -> FileContext | None:
        """The checked file at repo-relative posix path *rel*, if any."""
        return self._by_rel.get(rel)

    def reference_identifiers(self) -> dict[str, frozenset[str]]:
        """Identifier sets of every reference file, keyed by rel path.

        Covers all Python under :attr:`REFERENCE_DIRS` plus the Markdown
        docs (``*.md`` at the root and under ``docs/``) — a textual
        mention in documentation keeps a public symbol alive.
        """
        if self._reference_identifiers is not None:
            return self._reference_identifiers
        corpus: dict[str, frozenset[str]] = {}
        paths: list[Path] = []
        for sub in self.REFERENCE_DIRS:
            base = self.root / sub
            if base.is_dir():
                paths.extend(sorted(base.rglob("*.py")))
        paths.extend(sorted(self.root.glob("*.md")))
        docs = self.root / "docs"
        if docs.is_dir():
            paths.extend(sorted(docs.rglob("*.md")))
        for path in paths:
            rel = path.relative_to(self.root).as_posix()
            if rel in corpus:
                continue
            try:
                text = path.read_text()
            except (OSError, UnicodeDecodeError):
                continue
            corpus[rel] = frozenset(_IDENTIFIER_RE.findall(text))
        self._reference_identifiers = corpus
        return corpus


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`code` (``RL0xx``), :attr:`title` (a short
    imperative label) and :attr:`rationale` (one sentence tying the rule
    to the invariant it protects), then override one or more hooks.
    Overriding :meth:`check_project` opts the rule into the semantic
    core — the engine builds the module/symbol/call graph once, lazily,
    only when an active rule asks for it.
    """

    code: str = "RL0XX"
    title: str = ""
    rationale: str = ""

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        """Per-file findings (default: none)."""
        return iter(())

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Whole-project findings, after every file was seen."""
        return iter(())

    def check_project(
        self, graph: "SemanticGraph", project: Project
    ) -> Iterator[Violation]:
        """Whole-program findings over the semantic graph (opt-in)."""
        return iter(())

    @classmethod
    def uses_semantics(cls) -> bool:
        """True when the rule overrides :meth:`check_project`."""
        return cls.check_project is not Rule.check_project

    def violation(
        self, ctx_or_rel: FileContext | str, node: ast.AST | None, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at *node* (or the file)."""
        rel = ctx_or_rel.rel if isinstance(ctx_or_rel, FileContext) else ctx_or_rel
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Violation(rel, int(line), int(col) + 1, self.code, message)


@dataclass(frozen=True, order=True)
class StaleSuppression:
    """A waiver comment whose rule no longer fires on its line."""

    path: str
    line: int
    rule: str
    scope: str  # "line" | "file"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "scope": self.scope,
        }


@dataclass
class LintReport:
    """The outcome of one lint run."""

    root: Path
    files_checked: int
    rules: list[str]
    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    stale: list[StaleSuppression] = field(default_factory=list)
    #: The semantic graph, present when a semantic rule ran (or the
    #: caller requested it); never serialized into the JSON report.
    graph: "SemanticGraph | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def exit_code(self) -> int:
        """Non-zero iff any unsuppressed finding remains."""
        return 1 if self.violations else 0

    def to_json(self, *, indent: int = 2) -> str:
        """The machine-readable report (the CI artifact)."""
        return json.dumps(
            {
                "root": str(self.root),
                "files_checked": self.files_checked,
                "rules": list(self.rules),
                "summary": {
                    "violations": len(self.violations),
                    "suppressed": len(self.suppressed),
                    "stale": len(self.stale),
                },
                "violations": [v.to_dict() for v in self.violations],
                "suppressed": [v.to_dict() for v in self.suppressed],
                "stale": [s.to_dict() for s in self.stale],
            },
            indent=indent,
            sort_keys=True,
        )

    def render(self) -> str:
        """The human-readable table (reuses the obs table renderer)."""
        lines: list[str] = []
        if self.violations:
            lines.append(
                render_table(
                    ("rule", "location", "message"),
                    [
                        (v.rule, v.location, v.message)
                        for v in self.violations
                    ],
                )
            )
            lines.append("")
        lines.append(
            f"repro lint: {len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.stale)} stale waiver(s), "
            f"{self.files_checked} file(s) checked, "
            f"rules: {', '.join(self.rules)}"
        )
        return "\n".join(lines)


def find_project_root(start: Path) -> Path:
    """Walk up from *start* to the enclosing ``pyproject.toml`` holder."""
    current = start if start.is_dir() else start.parent
    current = current.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def _collect_paths(paths: Sequence[str | Path]) -> list[Path]:
    collected: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ValidationError(f"lint path does not exist: {path}")
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(resolved)
    return collected


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _stale_suppressions(
    project: Project, findings: Sequence[Violation], executed: frozenset[str]
) -> list[StaleSuppression]:
    """Waivers whose rule ran but produced nothing on their anchor.

    *findings* is the pre-suppression set: a waiver that silences a
    still-firing finding is live, not stale.  Codes outside *executed*
    (the rules this run actually exercised, plus RL000) are never
    reported stale — a restricted ``--rules`` run cannot tell whether
    the waived rule would fire.
    """
    by_line: dict[tuple[str, int], set[str]] = {}
    by_file: dict[str, set[str]] = {}
    for violation in findings:
        by_line.setdefault((violation.path, violation.line), set()).add(
            violation.rule
        )
        by_file.setdefault(violation.path, set()).add(violation.rule)
    stale: list[StaleSuppression] = []
    for ctx in project.files:
        for line in sorted(ctx.suppressions):
            fired = by_line.get((ctx.rel, line), set())
            for code in sorted(ctx.suppressions[line]):
                if code == "all":
                    if not fired:
                        stale.append(
                            StaleSuppression(ctx.rel, line, code, "line")
                        )
                elif code in executed and code not in fired:
                    stale.append(StaleSuppression(ctx.rel, line, code, "line"))
        file_fired = by_file.get(ctx.rel, set())
        for code, line in sorted(ctx.file_suppression_lines.items()):
            if code == "all":
                if not file_fired:
                    stale.append(StaleSuppression(ctx.rel, line, code, "file"))
            elif code in executed and code not in file_fired:
                stale.append(StaleSuppression(ctx.rel, line, code, "file"))
    return sorted(stale)


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    root: str | Path | None = None,
    want_graph: bool = False,
) -> LintReport:
    """Run the rule pack over *paths*; returns the :class:`LintReport`.

    *rules* restricts the pack to the given codes (case-insensitive);
    *root* overrides project-root autodetection (the nearest ancestor
    of the first path holding a ``pyproject.toml``).  *want_graph*
    forces the semantic graph onto the report even when no active rule
    needs it (the ``--graph`` export path).
    """
    from .rules import make_rules  # deferred: rules import this module

    if not paths:
        raise ValidationError("at least one lint path is required")
    files = _collect_paths(paths)
    project_root = (
        Path(root).resolve() if root is not None else find_project_root(
            Path(paths[0]).resolve()
        )
    )
    active_rules = make_rules(rules)
    contexts: list[FileContext] = []
    parse_failures: list[Violation] = []
    for path in files:
        rel = _relative(path, project_root)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", 1) or 1
            parse_failures.append(
                Violation(
                    rel,
                    int(line),
                    1,
                    PARSE_ERROR_CODE,
                    f"cannot parse file: {error}",
                )
            )
            continue
        contexts.append(FileContext(path, rel, source, tree))
    project = Project(project_root, contexts)

    graph: SemanticGraph | None = None
    if want_graph or any(rule.uses_semantics() for rule in active_rules):
        # Deferred import: the semantic core is only paid for when a
        # whole-program rule is active (or --graph asked for it).
        from .semantics import build_graph

        graph = build_graph(project)

    raw: list[Violation] = list(parse_failures)
    for rule in active_rules:
        for ctx in project.files:
            raw.extend(rule.check_file(ctx, project))
        raw.extend(rule.finalize(project))
        if graph is not None and rule.uses_semantics():
            raw.extend(rule.check_project(graph, project))

    ordered = sorted(set(raw))
    active: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in ordered:
        ctx = project.file(violation.path)
        if ctx is not None and ctx.is_suppressed(violation.line, violation.rule):
            suppressed.append(violation)
        else:
            active.append(violation)
    executed = frozenset(
        {rule.code for rule in active_rules} | {PARSE_ERROR_CODE}
    )
    return LintReport(
        root=project_root,
        files_checked=len(contexts) + len(parse_failures),
        rules=[rule.code for rule in active_rules],
        violations=active,
        suppressed=suppressed,
        stale=_stale_suppressions(project, ordered, executed),
        graph=graph,
    )


_DISABLE_INLINE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\s]+|all)"
)


def _merge_disable_comment(line: str, codes: set[str]) -> str | None:
    """*line* with *codes* merged into its ``disable=`` list, or None.

    Returns ``None`` when the line carries no inline ``disable=``
    comment to merge into (``disable-file=`` directives are left for a
    human — a line code does not belong in a file-wide waiver).
    """
    match = _DISABLE_INLINE_RE.search(line)
    if match is None:
        return None
    listed = match.group(1)
    stripped = listed.rstrip()
    existing = {code.strip() for code in stripped.split(",") if code.strip()}
    if "all" in existing:
        return line
    merged = sorted({code.upper() for code in existing} | codes)
    end = match.start(1) + len(stripped)
    return line[: match.start(1)] + ",".join(merged) + line[end:]


def apply_suppressions(report: LintReport) -> list[Path]:
    """Append ``# repro-lint: disable=...`` to every violating line.

    The ``--fix-suppressions`` escape hatch for landing the analyzer on
    a tree with known, accepted debt: each unsuppressed finding gets an
    inline waiver (one comment per line, codes merged).  A line that
    already carries a ``disable=`` comment gets the new codes merged
    into its existing list (deduped, sorted) rather than a second
    appended comment.  Returns the modified files.
    """
    by_file: dict[str, dict[int, set[str]]] = {}
    for violation in report.violations:
        if violation.rule == PARSE_ERROR_CODE:
            continue
        by_file.setdefault(violation.path, {}).setdefault(
            violation.line, set()
        ).add(violation.rule)
    changed: list[Path] = []
    for rel, lines in sorted(by_file.items()):
        path = report.root / rel
        try:
            text = path.read_text()
        except OSError:
            continue
        source_lines = text.splitlines()
        modified = False
        for lineno, codes in sorted(lines.items()):
            index = lineno - 1
            if index >= len(source_lines):
                continue
            line = source_lines[index]
            if "repro-lint:" in line:
                merged = _merge_disable_comment(line, codes)
                if merged is None or merged == line:
                    continue
                source_lines[index] = merged
                modified = True
                continue
            joined = ",".join(sorted(codes))
            source_lines[index] = f"{line}  # repro-lint: disable={joined}"
            modified = True
        if modified:
            trailing = "\n" if text.endswith("\n") else ""
            path.write_text("\n".join(source_lines) + trailing)
            changed.append(path)
    return changed


def _prune_line(line: str, codes: set[str]) -> str | None:
    """*line* with the stale *codes* pruned; ``None`` deletes the line.

    When every code in the directive is stale the whole comment goes —
    including any trailing justification text, which belongs to the
    waiver it explained.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return line
    listed = [
        code.strip() for code in match.group(2).split(",") if code.strip()
    ]
    kept = sorted(
        code
        for code in listed
        if (code if code == "all" else code.upper()) not in codes
    )
    if kept:
        stripped = match.group(2).rstrip()
        end = match.start(2) + len(stripped)
        return line[: match.start(2)] + ",".join(kept) + line[end:]
    remainder = line[: match.start()].rstrip()
    return remainder if remainder else None


def prune_suppressions(report: LintReport) -> list[Path]:
    """Remove every stale waiver the report found; returns changed files.

    The ``--prune-suppressions`` counterpart of
    :func:`apply_suppressions`: stale codes are dropped from their
    ``disable=`` / ``disable-file=`` lists, a directive left empty is
    removed outright, and a line holding nothing but the directive is
    deleted.
    """
    by_file: dict[str, dict[int, set[str]]] = {}
    for item in report.stale:
        by_file.setdefault(item.path, {}).setdefault(item.line, set()).add(
            item.rule
        )
    changed: list[Path] = []
    for rel, lines in sorted(by_file.items()):
        path = report.root / rel
        try:
            text = path.read_text()
        except OSError:
            continue
        source_lines = text.splitlines()
        modified = False
        deleted: set[int] = set()
        for lineno, codes in sorted(lines.items()):
            index = lineno - 1
            if index >= len(source_lines):
                continue
            pruned = _prune_line(source_lines[index], codes)
            if pruned is None:
                deleted.add(index)
                modified = True
            elif pruned != source_lines[index]:
                source_lines[index] = pruned
                modified = True
        if modified:
            kept_lines = [
                line
                for index, line in enumerate(source_lines)
                if index not in deleted
            ]
            trailing = "\n" if text.endswith("\n") else ""
            path.write_text("\n".join(kept_lines) + trailing)
            changed.append(path)
    return changed


def load_literal_dict_manifest(
    root: Path, manifest_rel: str, manifest_var: str
) -> tuple[dict[str, str] | None, str | None]:
    """``(registry, error)`` from a literal str->str dict manifest file.

    The manifest convention shared by the registry cross-reference rules
    (RL001's no-false-dismissal registry, RL009's kernel-parity
    registry): a ``tests/``-side module assigns *manifest_var* a plain
    dict literal, read here with :func:`ast.literal_eval` — the manifest
    is never imported, so it stays checkable on unimportable trees.
    """
    path = root / manifest_rel
    if not path.is_file():
        return None, f"manifest {manifest_rel} not found"
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as error:
        return None, f"manifest {manifest_rel} is unreadable: {error}"
    for node in tree.body:
        targets: list[ast.expr]
        value_node: ast.expr
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value_node = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value_node = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == manifest_var
            for target in targets
        ):
            continue
        try:
            value = ast.literal_eval(value_node)
        except ValueError:
            return None, (
                f"manifest {manifest_rel}: {manifest_var} "
                "must be a literal dict"
            )
        if not isinstance(value, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in value.items()
        ):
            return None, (
                f"manifest {manifest_rel}: {manifest_var} "
                "must map names to test file paths"
            )
        return value, None
    return None, f"manifest {manifest_rel} does not define {manifest_var}"


def manifest_entry_problem(
    root: Path, registry: dict[str, str], name: str, manifest_rel: str
) -> str | None:
    """Why *name*'s manifest entry fails to vouch for it, or ``None``.

    Checks the three liveness conditions a registry entry must satisfy:
    the entry exists, the mapped test file exists, and that file
    actually references *name* as a whole word.
    """
    test_rel = registry.get(name)
    if test_rel is None:
        return f"not registered in {manifest_rel}"
    test_path = root / test_rel
    if not test_path.is_file():
        return f"maps to missing test file {test_rel!r} in {manifest_rel}"
    try:
        text = test_path.read_text()
    except OSError as err:
        return f"registered test {test_rel!r} is unreadable: {err}"
    if not re.search(rf"\b{re.escape(name)}\b", text):
        return f"registered test {test_rel!r} never references {name!r}"
    return None


def iter_module_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Top-level function definitions of a module (helper for rules)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_all_entries(tree: ast.Module) -> list[tuple[str, ast.expr]]:
    """``__all__`` string entries of a module with their AST nodes."""
    entries: list[tuple[str, ast.expr]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append((element.value, element))
    return entries


def literal_parts(node: ast.expr) -> str | None:
    """A string constant, or an f-string with placeholders as ``x``.

    Lets rules validate the *shape* of built names
    (``f"cascade.{name}.in"`` -> ``cascade.x.in``) without evaluating
    the formatted values.  Returns ``None`` for non-string expressions.
    """
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("x")
            else:
                return None
        return "".join(parts)
    return None


def walk_assign_targets(node: ast.stmt) -> Iterable[ast.expr]:
    """Assignment target expressions of Assign/AugAssign/AnnAssign."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []
