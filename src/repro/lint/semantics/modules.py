"""The project import/module graph.

Maps every checked file to a dotted module name (``src/`` layouts lose
the layout prefix: ``src/repro/core/cascade.py`` ->
``repro.core.cascade``; ``__init__.py`` names the package itself),
resolves every import statement — absolute and relative — against that
namespace, and exposes the result two ways:

* ``imports_of(module)`` — the module-level dependency edges, for graph
  export and cycle-free traversals;
* ``bindings_of(module)`` — the local-name binding table each importing
  module ends up with (``from ..obs import metrics`` binds ``metrics``
  to the ``repro.obs.metrics`` module), which the symbol table chains
  through when resolving cross-module names.

Only modules inside the analyzed :class:`~repro.lint.engine.Project`
resolve to files; anything else (numpy, stdlib) stays an opaque
external name, which downstream layers treat as "unknown, assume
nothing" — the conservative default.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..engine import FileContext, Project

__all__ = ["ImportEdge", "ModuleGraph", "module_name_for"]

#: Path prefixes that are layout, not namespace (``src/repro/...`` is
#: importable as ``repro...``).
_LAYOUT_PREFIXES = ("src",)


def module_name_for(rel: str) -> str:
    """Dotted module name of the repo-relative posix path *rel*.

    ``src/repro/core/cascade.py`` -> ``repro.core.cascade``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``;
    ``tests/lint/conftest.py`` -> ``tests.lint.conftest``.
    """
    parts = rel.split("/")
    if len(parts) > 1 and parts[0] in _LAYOUT_PREFIXES:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved: *importer* depends on *imported*."""

    importer: str
    imported: str
    line: int


class ModuleGraph:
    """Dotted-name namespace plus import edges over one project."""

    def __init__(self, project: Project) -> None:
        self._by_module: dict[str, FileContext] = {}
        self._package_of: dict[str, str] = {}
        for ctx in project.files:
            name = module_name_for(ctx.rel)
            if not name:
                continue
            # First (lexicographically smallest rel) definition wins so
            # the mapping is independent of file-discovery order.
            existing = self._by_module.get(name)
            if existing is None or ctx.rel < existing.rel:
                self._by_module[name] = ctx
        for name, ctx in self._by_module.items():
            is_package = ctx.rel.endswith("__init__.py")
            self._package_of[name] = (
                name if is_package else name.rpartition(".")[0]
            )
        self._edges: list[ImportEdge] | None = None
        self._bindings: dict[str, dict[str, tuple[str, str | None]]] = {}

    # -- namespace lookups ---------------------------------------------------

    @property
    def modules(self) -> list[str]:
        """Every known dotted module name, sorted."""
        return sorted(self._by_module)

    def file_of(self, module: str) -> FileContext | None:
        """The file defining *module*, if it is part of the project."""
        return self._by_module.get(module)

    def package_of(self, module: str) -> str:
        """The package *module* lives in (itself, for packages)."""
        return self._package_of.get(module, module.rpartition(".")[0])

    # -- import resolution ---------------------------------------------------

    def resolve_import(
        self, importer: str, level: int, target: str | None
    ) -> str:
        """Absolute dotted name of a ``from``-import's source module.

        *level* is the number of leading dots (0 for absolute imports);
        *target* the module text after them (may be ``None`` for
        ``from . import x``).
        """
        if level == 0:
            return target or ""
        base = self.package_of(importer)
        for _ in range(level - 1):
            base = base.rpartition(".")[0]
        if target:
            return f"{base}.{target}" if base else target
        return base

    def bindings_of(self, module: str) -> dict[str, tuple[str, str | None]]:
        """Local name -> ``(source module, source name | None)``.

        ``(m, None)`` binds the module object itself (``import m`` /
        ``from pkg import submodule``); ``(m, "f")`` binds a member.
        ``from pkg import name`` is ambiguous between a submodule and a
        member of ``pkg``'s ``__init__``; when ``pkg.name`` is a known
        project module the submodule reading wins, matching the runtime
        only when ``__init__`` does not shadow it — a deliberate,
        documented approximation.
        """
        cached = self._bindings.get(module)
        if cached is not None:
            return cached
        table: dict[str, tuple[str, str | None]] = {}
        ctx = self._by_module.get(module)
        if ctx is not None:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        # ``import a.b`` binds ``a``; with asname the
                        # full dotted module is bound.
                        bound = alias.name if alias.asname else local
                        table[local] = (bound, None)
                elif isinstance(node, ast.ImportFrom):
                    source = self.resolve_import(
                        module, node.level, node.module
                    )
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        submodule = f"{source}.{alias.name}"
                        if submodule in self._by_module:
                            table[local] = (submodule, None)
                        else:
                            table[local] = (source, alias.name)
        self._bindings[module] = table
        return table

    @property
    def edges(self) -> list[ImportEdge]:
        """Every resolved import edge, sorted for determinism."""
        if self._edges is None:
            found: set[ImportEdge] = set()
            for module in sorted(self._by_module):
                ctx = self._by_module[module]
                for node in ast.walk(ctx.tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            found.add(
                                ImportEdge(module, alias.name, node.lineno)
                            )
                    elif isinstance(node, ast.ImportFrom):
                        source = self.resolve_import(
                            module, node.level, node.module
                        )
                        if source:
                            found.add(ImportEdge(module, source, node.lineno))
            self._edges = sorted(
                found, key=lambda e: (e.importer, e.imported, e.line)
            )
        return self._edges
