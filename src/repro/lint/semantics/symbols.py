"""Project-wide symbol table with alias, re-export and MRO resolution.

Top-level functions, classes (with their methods and resolved base
classes), module-level values and import bindings, indexed per module
and resolvable across modules: ``resolve("repro", "ReproError")``
follows the ``from .exceptions import ReproError`` re-export to the
defining :class:`ClassSymbol` in ``repro.exceptions``.

The resolver is *conservative by refusal*: anything it cannot pin to a
project definition becomes an :class:`ExternalSymbol` (dotted name kept
for diagnostics) or ``None``, never a guess.  Cycles in re-export
chains terminate via a visited set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import FileContext, Project
from .modules import ModuleGraph

__all__ = [
    "ClassSymbol",
    "ExternalSymbol",
    "FunctionSymbol",
    "ImportBinding",
    "ModuleSymbol",
    "Symbol",
    "SymbolTable",
    "ValueSymbol",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


class Symbol:
    """Base of every resolved name."""

    module: str
    qualname: str

    @property
    def key(self) -> str:
        """The canonical node id: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class FunctionSymbol(Symbol):
    """A top-level function or a class method."""

    module: str
    qualname: str
    node: FunctionNode = field(compare=False, repr=False)
    ctx: FileContext = field(compare=False, repr=False)
    owner: str | None = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass(frozen=True)
class ClassSymbol(Symbol):
    """A top-level class with its directly defined methods."""

    module: str
    qualname: str
    node: ast.ClassDef = field(compare=False, repr=False)
    ctx: FileContext = field(compare=False, repr=False)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass(frozen=True)
class ValueSymbol(Symbol):
    """A module-level assignment that is neither def nor class."""

    module: str
    qualname: str
    node: ast.stmt = field(compare=False, repr=False)
    value: ast.expr | None = field(compare=False, repr=False)


@dataclass(frozen=True)
class ModuleSymbol(Symbol):
    """A project module referenced as a value (``import repro.obs``)."""

    module: str
    qualname: str = ""

    @property
    def key(self) -> str:
        return self.module


@dataclass(frozen=True)
class ExternalSymbol(Symbol):
    """A name that resolves outside the project (stdlib, numpy, ...)."""

    module: str
    qualname: str = ""

    @property
    def dotted(self) -> str:
        return (
            f"{self.module}.{self.qualname}" if self.qualname else self.module
        )


@dataclass(frozen=True)
class ImportBinding:
    """A module-local name bound by an import statement."""

    local: str
    source_module: str
    source_name: str | None


class SymbolTable:
    """Definitions and cross-module name resolution over one project."""

    def __init__(self, modules: ModuleGraph) -> None:
        self.modules = modules
        self._members: dict[str, dict[str, Symbol]] = {}
        self._aliases: dict[str, dict[str, ast.expr]] = {}
        self._functions: list[FunctionSymbol] = []
        self._classes: list[ClassSymbol] = []
        self._bases: dict[str, tuple[str, ...]] = {}
        self._subclasses: dict[str, tuple[str, ...]] = {}
        self._methods_by_name: dict[str, tuple[FunctionSymbol, ...]] = {}
        self._attr_types: dict[str, dict[str, tuple[str, ...]]] = {}
        self._implementors: dict[str, tuple[str, ...]] = {}
        for module in modules.modules:
            ctx = modules.file_of(module)
            if ctx is not None:
                self._index_module(module, ctx)
        self._link_hierarchy()

    # -- construction --------------------------------------------------------

    def _index_module(self, module: str, ctx: FileContext) -> None:
        members: dict[str, Symbol] = {}
        aliases: dict[str, ast.expr] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionSymbol(module, stmt.name, stmt, ctx)
                members[stmt.name] = fn
                self._functions.append(fn)
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassSymbol(module, stmt.name, stmt, ctx)
                members[stmt.name] = cls
                self._classes.append(cls)
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method = FunctionSymbol(
                            module,
                            f"{stmt.name}.{sub.name}",
                            sub,
                            ctx,
                            owner=stmt.name,
                        )
                        self._functions.append(method)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    if name not in members:
                        members[name] = ValueSymbol(module, name, stmt, value)
                    if value is not None and isinstance(
                        value, (ast.Name, ast.Attribute)
                    ):
                        aliases[name] = value
        self._members[module] = members
        self._aliases[module] = aliases

    def _link_hierarchy(self) -> None:
        subclasses: dict[str, list[str]] = {}
        for cls in self._classes:
            base_keys: list[str] = []
            for base in cls.node.bases:
                resolved = self.resolve_expr(cls.module, base)
                if isinstance(resolved, ClassSymbol):
                    base_keys.append(resolved.key)
                    subclasses.setdefault(resolved.key, []).append(cls.key)
            self._bases[cls.key] = tuple(base_keys)
        self._subclasses = {
            key: tuple(sorted(set(values)))
            for key, values in subclasses.items()
        }
        by_name: dict[str, list[FunctionSymbol]] = {}
        for fn in self._functions:
            if fn.owner is not None:
                by_name.setdefault(fn.name, []).append(fn)
        self._methods_by_name = {
            name: tuple(sorted(fns, key=lambda f: f.key))
            for name, fns in by_name.items()
        }

    # -- enumeration ---------------------------------------------------------

    @property
    def functions(self) -> list[FunctionSymbol]:
        """Every function and method symbol, sorted by key."""
        return sorted(self._functions, key=lambda f: f.key)

    @property
    def classes(self) -> list[ClassSymbol]:
        """Every class symbol, sorted by key."""
        return sorted(self._classes, key=lambda c: c.key)

    def members_of(self, module: str) -> dict[str, Symbol]:
        """Symbols *defined* in (not imported into) *module*."""
        return self._members.get(module, {})

    def import_bindings(self, module: str) -> list[ImportBinding]:
        """The module's import-bound local names, sorted by local name.

        ``source_name`` is ``None`` when the binding denotes a module
        object itself (``import m`` / ``from pkg import submodule``).
        """
        return [
            ImportBinding(local, source_module, source_name)
            for local, (source_module, source_name) in sorted(
                self.modules.bindings_of(module).items()
            )
        ]

    def class_named(self, key: str) -> ClassSymbol | None:
        """The class at node key ``module:qualname``, if any."""
        module, _, qualname = key.partition(":")
        symbol = self._members.get(module, {}).get(qualname)
        return symbol if isinstance(symbol, ClassSymbol) else None

    def function_at(self, key: str) -> FunctionSymbol | None:
        """The function/method at node key, if any."""
        module, _, qualname = key.partition(":")
        owner, _, method = qualname.partition(".")
        if method:
            cls = self.class_named(f"{module}:{owner}")
            if cls is None:
                return None
            return self.find_method(cls, method, inherited=False)
        symbol = self._members.get(module, {}).get(qualname)
        return symbol if isinstance(symbol, FunctionSymbol) else None

    # -- resolution ----------------------------------------------------------

    def resolve(
        self, module: str, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> Symbol | None:
        """The symbol local name *name* denotes inside *module*.

        Follows module-level aliases (``dtw = dtw_additive``) and import
        bindings across modules until a definition (or an external name)
        is reached.  Returns ``None`` for genuinely unknown names —
        builtins, ``*``-imports, dynamic bindings.
        """
        if (module, name) in _seen:
            return None
        seen = _seen | {(module, name)}
        members = self._members.get(module)
        if members is None:
            return None
        symbol = members.get(name)
        if isinstance(symbol, ValueSymbol):
            alias = self._aliases.get(module, {}).get(name)
            if alias is not None:
                target = self._resolve_expr_inner(module, alias, seen)
                if target is not None:
                    return target
            return symbol
        if symbol is not None:
            return symbol
        binding = self.modules.bindings_of(module).get(name)
        if binding is None:
            return None
        source_module, source_name = binding
        if source_name is None:
            if self.modules.file_of(source_module) is not None:
                return ModuleSymbol(source_module)
            return ExternalSymbol(source_module)
        if self.modules.file_of(source_module) is not None:
            return self.resolve(source_module, source_name, seen)
        return ExternalSymbol(source_module, source_name)

    def resolve_expr(
        self, module: str, expr: ast.expr
    ) -> Symbol | None:
        """Resolve a Name/Attribute/string-annotation expression."""
        return self._resolve_expr_inner(module, expr, frozenset())

    def _resolve_expr_inner(
        self,
        module: str,
        expr: ast.expr,
        seen: frozenset[tuple[str, str]],
    ) -> Symbol | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            # Forward-reference annotation: ``"QueryEngine"``.
            return self.resolve(module, expr.value.split(".")[0], seen)
        if isinstance(expr, ast.Name):
            return self.resolve(module, expr.id, seen)
        if isinstance(expr, ast.Attribute):
            base = self._resolve_expr_inner(module, expr.value, seen)
            return self._member_of(base, expr.attr, seen)
        if isinstance(expr, ast.Subscript):
            # ``Optional[T]`` / ``list[T]``: resolve the container name;
            # callers that want the parameter unwrap it themselves.
            return self._resolve_expr_inner(module, expr.value, seen)
        return None

    def _member_of(
        self,
        base: Symbol | None,
        attr: str,
        seen: frozenset[tuple[str, str]],
    ) -> Symbol | None:
        if isinstance(base, ModuleSymbol):
            return self.resolve(base.module, attr, seen)
        if isinstance(base, ExternalSymbol):
            return ExternalSymbol(base.dotted, attr)
        if isinstance(base, ClassSymbol):
            method = self.find_method(base, attr)
            if method is not None:
                return method
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Symbol | None:
        """Resolve ``a.b.c`` relative to *module*."""
        parts = dotted.split(".")
        symbol = self.resolve(module, parts[0])
        seen: frozenset[tuple[str, str]] = frozenset()
        for attr in parts[1:]:
            symbol = self._member_of(symbol, attr, seen)
            if symbol is None:
                return None
        return symbol

    # -- class hierarchy -----------------------------------------------------

    def bases_of(self, cls: ClassSymbol) -> list[ClassSymbol]:
        """Direct project base classes of *cls*."""
        found: list[ClassSymbol] = []
        for key in self._bases.get(cls.key, ()):
            base = self.class_named(key)
            if base is not None:
                found.append(base)
        return found

    def mro(self, cls: ClassSymbol) -> list[ClassSymbol]:
        """*cls* plus its project ancestors, nearest first (BFS)."""
        chain: list[ClassSymbol] = []
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            chain.append(current)
            frontier.extend(self.bases_of(current))
        return chain

    def subclasses_of(self, cls: ClassSymbol) -> list[ClassSymbol]:
        """Every transitive project subclass of *cls*, sorted by key."""
        found: dict[str, ClassSymbol] = {}
        frontier = [cls.key]
        while frontier:
            key = frontier.pop()
            for sub_key in self._subclasses.get(key, ()):
                if sub_key in found:
                    continue
                sub = self.class_named(sub_key)
                if sub is not None:
                    found[sub_key] = sub
                    frontier.append(sub_key)
        return [found[key] for key in sorted(found)]

    def is_subclass(self, cls: ClassSymbol, ancestor_name: str) -> bool:
        """True when *cls*'s project MRO holds a class named so."""
        return any(c.name == ancestor_name for c in self.mro(cls))

    def find_method(
        self, cls: ClassSymbol, name: str, *, inherited: bool = True
    ) -> FunctionSymbol | None:
        """The method *name* on *cls* (walking the MRO by default)."""
        chain = self.mro(cls) if inherited else [cls]
        for owner in chain:
            for stmt in owner.node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == name
                ):
                    return FunctionSymbol(
                        owner.module,
                        f"{owner.name}.{name}",
                        stmt,
                        owner.ctx,
                        owner=owner.name,
                    )
        return None

    def methods_named(self, name: str) -> tuple[FunctionSymbol, ...]:
        """Every project method with this bare name, sorted by key."""
        return self._methods_by_name.get(name, ())

    # -- structural protocols ------------------------------------------------

    def is_protocol(self, cls: ClassSymbol) -> bool:
        """True when *cls* subclasses ``typing.Protocol`` (textually)."""
        for base in cls.node.bases:
            text = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if text == "Protocol":
                return True
        return False

    def implementors_of(self, protocol: ClassSymbol) -> list[ClassSymbol]:
        """Project classes structurally satisfying *protocol*.

        A class implements the protocol when its MRO defines every
        public method the protocol declares.  Protocols declaring no
        public methods match nothing (everything would).
        """
        cached = self._implementors.get(protocol.key)
        if cached is not None:
            return [
                cls
                for key in cached
                if (cls := self.class_named(key)) is not None
            ]
        wanted = sorted(
            stmt.name
            for stmt in protocol.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not stmt.name.startswith("_")
        )
        found: list[str] = []
        if wanted:
            for cls in self.classes:
                if cls.key == protocol.key or self.is_protocol(cls):
                    continue
                if all(
                    self.find_method(cls, name) is not None
                    for name in wanted
                ):
                    found.append(cls.key)
        self._implementors[protocol.key] = tuple(found)
        return [
            cls
            for key in found
            if (cls := self.class_named(key)) is not None
        ]

    # -- attribute types -----------------------------------------------------

    def attr_types(self, cls: ClassSymbol) -> dict[str, tuple[str, ...]]:
        """``self.attr`` -> candidate class keys, inferred per class.

        Sources, over every method of *cls* and its project ancestors:
        ``self.attr = ClassName(...)`` (constructor call),
        ``self.attr = factory(...)`` (project factory with a resolvable
        return annotation), and ``self.attr: T`` annotations.  Multiple
        candidate classes are all kept — downstream consumers fan out.
        """
        cached = self._attr_types.get(cls.key)
        if cached is not None:
            return cached
        found: dict[str, set[str]] = {}
        for owner in self.mro(cls):
            for stmt in owner.node.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                param_types: dict[str, str] = {}
                args = stmt.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.annotation is None:
                        continue
                    annotated = self.resolve_expr(
                        owner.module, arg.annotation
                    )
                    if isinstance(annotated, ClassSymbol):
                        param_types[arg.arg] = annotated.key
                for node in ast.walk(stmt):
                    attr, inferred = self._attr_assignment(
                        owner.module, node, param_types
                    )
                    if attr is not None and inferred is not None:
                        found.setdefault(attr, set()).add(inferred)
        table = {
            attr: tuple(sorted(keys)) for attr, keys in sorted(found.items())
        }
        self._attr_types[cls.key] = table
        return table

    def _attr_assignment(
        self,
        module: str,
        node: ast.AST,
        param_types: dict[str, str],
    ) -> tuple[str | None, str | None]:
        """``(attr, class key)`` when *node* types a ``self.attr``."""
        target: ast.expr | None = None
        annotation: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, annotation, value = node.target, node.annotation, node.value
        else:
            return None, None
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return None, None
        if annotation is not None:
            resolved = self.resolve_expr(module, annotation)
            if isinstance(resolved, ClassSymbol):
                return target.attr, resolved.key
        if isinstance(value, ast.Name) and value.id in param_types:
            # ``self._db = db`` with an annotated parameter.
            return target.attr, param_types[value.id]
        cls_key = self.infer_call_type(module, value)
        if cls_key is not None:
            return target.attr, cls_key
        return None, None

    def infer_call_type(
        self, module: str, value: ast.expr | None
    ) -> str | None:
        """Class key a call expression evaluates to, if inferable.

        ``ClassName(...)`` -> the class; ``factory(...)`` -> the class
        named by the factory's return annotation, when both resolve
        inside the project.
        """
        if not isinstance(value, ast.Call):
            return None
        resolved = self.resolve_expr(module, value.func)
        if isinstance(resolved, ClassSymbol):
            return resolved.key
        if isinstance(resolved, FunctionSymbol):
            returns = resolved.node.returns
            if returns is not None:
                ret = self.resolve_expr(resolved.module, returns)
                if isinstance(ret, ClassSymbol):
                    return ret.key
        return None
