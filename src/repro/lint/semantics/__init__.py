"""The whole-program semantic core behind the cross-module lint rules.

``repro lint``'s original rules see one file at a time (plus literal
manifests), which cannot express the invariants the codebase actually
depends on: *transitive* lock discipline across the executor plane,
*reachable* charge accounting, ReproError-only raise-sets *closed over
calls*, and cascade tiers that are wired **and** property-tested.  This
package supplies the three layers those rules share:

* :mod:`~repro.lint.semantics.modules` — the project-wide import/module
  graph: repo-relative files mapped to dotted module names, import
  statements resolved (including relative imports) to edges and
  per-file binding tables.
* :mod:`~repro.lint.semantics.symbols` — the symbol table: top-level
  functions, classes (with methods, resolved base classes and a
  subclass index), aliases, and cross-module resolution that follows
  re-export chains.
* :mod:`~repro.lint.semantics.callgraph` — a conservative call graph
  over function/method symbols with type-informed attribute-call
  resolution and reachability queries from the declared entry points
  (:mod:`~repro.lint.semantics.entrypoints`).

Everything here is derived from the already-parsed
:class:`~repro.lint.engine.Project` — no imports of the analyzed code,
so the graph stays buildable on broken or foreign trees.  Construction
and every exported artifact are deterministic: iteration is sorted by
(module, qualname) throughout, so two runs over the same tree emit
byte-identical JSON.
"""

from __future__ import annotations

from .callgraph import CallGraph, CallSite, SemanticGraph, build_graph
from .entrypoints import EntryPoint, find_entry_points
from .export import GRAPH_SCHEMA_VERSION, graph_to_dict, render_dot, render_json
from .modules import ImportEdge, ModuleGraph, module_name_for
from .symbols import (
    ClassSymbol,
    ExternalSymbol,
    FunctionSymbol,
    ImportBinding,
    ModuleSymbol,
    Symbol,
    SymbolTable,
    ValueSymbol,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassSymbol",
    "EntryPoint",
    "ExternalSymbol",
    "FunctionSymbol",
    "GRAPH_SCHEMA_VERSION",
    "ImportBinding",
    "ImportEdge",
    "ModuleGraph",
    "ModuleSymbol",
    "SemanticGraph",
    "Symbol",
    "SymbolTable",
    "ValueSymbol",
    "build_graph",
    "find_entry_points",
    "graph_to_dict",
    "module_name_for",
    "render_dot",
    "render_json",
]
