"""Deterministic call-graph export: the ``repro lint --graph`` artifact.

Two formats, chosen by file extension at the CLI: JSON (the CI
artifact, schema below) and Graphviz DOT (for eyeballs).  Both are
byte-stable across runs — every collection is emitted in sorted order
and nothing touches the clock.

JSON schema (version 1)::

    {
      "schema_version": 1,
      "modules": ["repro.core.cascade", ...],
      "imports": [["repro.core.cascade", "repro.obs.metrics"], ...],
      "nodes": [{"key": "m:C.f", "module": "m", "qualname": "C.f",
                 "entry": "query" | null}, ...],
      "edges": [["caller key", "callee key"], ...],
      "entry_points": [{"kind": "query", "key": ...}, ...],
      "unresolved": [{"caller": ..., "attr": ..., "line": ...}, ...]
    }
"""

from __future__ import annotations

import json

from .callgraph import SemanticGraph

__all__ = ["GRAPH_SCHEMA_VERSION", "graph_to_dict", "render_dot", "render_json"]

#: Bumped when the JSON artifact layout changes shape.
GRAPH_SCHEMA_VERSION = 1


def graph_to_dict(graph: SemanticGraph) -> dict[str, object]:
    """The JSON-ready plain-data form of the semantic graph."""
    entry_kind = {ep.key: ep.kind for ep in sorted(graph.entry_points)}
    nodes = [
        {
            "key": key,
            "module": graph.calls.nodes[key].module,
            "qualname": graph.calls.nodes[key].qualname,
            "entry": entry_kind.get(key),
        }
        for key in sorted(graph.calls.nodes)
    ]
    return {
        "schema_version": GRAPH_SCHEMA_VERSION,
        "modules": graph.modules.modules,
        "imports": sorted(
            {(e.importer, e.imported) for e in graph.modules.edges}
        ),
        "nodes": nodes,
        "edges": graph.calls.edges,
        "entry_points": [
            ep.to_dict() for ep in sorted(set(graph.entry_points))
        ],
        "unresolved": [
            {"caller": site.caller, "attr": site.attr, "line": site.line}
            for site in graph.calls.unresolved
        ],
    }


def render_json(graph: SemanticGraph, *, indent: int = 2) -> str:
    """The JSON artifact text (sorted keys, stable bytes)."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def render_dot(graph: SemanticGraph) -> str:
    """A Graphviz digraph of the call graph, entry points highlighted."""
    entry_kind = {ep.key: ep.kind for ep in sorted(graph.entry_points)}
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for key in sorted(graph.calls.nodes):
        attrs = ""
        kind = entry_kind.get(key)
        if kind is not None:
            attrs = f' [style=filled, fillcolor=lightblue, xlabel="{kind}"]'
        lines.append(f"  {_dot_quote(key)}{attrs};")
    for caller, callee in graph.calls.edges:
        lines.append(f"  {_dot_quote(caller)} -> {_dot_quote(callee)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
