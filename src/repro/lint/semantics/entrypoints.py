"""Declared entry points: where outside control flow enters the code.

The reachability rules all start from the same root set, discovered
structurally (never configured per-file, so a new executor or CLI verb
is picked up automatically):

* ``query`` — ``search*`` / ``knn*`` methods of classes named
  ``QueryEngine`` or ``ShardedDatabase``: the paths the shard thread
  pool runs concurrently.
* ``api`` — every other public method of those classes (build,
  insert/delete, persistence).
* ``executor`` — public methods of ``ShardExecutor`` and its project
  subclasses: the fan-out surface each executor implementation exposes.
* ``worker`` — functions wired as ``target=`` of a ``*Process(...)``
  call: spawn-side worker loops that run in a fresh interpreter.
* ``cli`` — ``main`` and ``_cmd_*`` functions of ``cli`` /
  ``__main__`` modules: the verbs a shell invocation reaches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .modules import ModuleGraph
from .symbols import ClassSymbol, FunctionSymbol, SymbolTable

__all__ = ["EntryPoint", "find_entry_points"]

#: Classes whose methods the shard executors drive concurrently.
_QUERY_CLASSES = frozenset({"QueryEngine", "ShardedDatabase"})

#: Method-name prefixes that mark the concurrent query path.
_QUERY_PREFIXES = ("search", "knn")

#: Base class naming the executor fan-out protocol.
_EXECUTOR_BASE = "ShardExecutor"


@dataclass(frozen=True, order=True)
class EntryPoint:
    """One declared entry point: a call-graph root with its kind."""

    kind: str
    key: str

    def to_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "key": self.key}


def _class_entry_points(
    table: SymbolTable, cls: ClassSymbol
) -> list[EntryPoint]:
    found: list[EntryPoint] = []
    if cls.name in _QUERY_CLASSES:
        for stmt in cls.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            kind = (
                "query"
                if stmt.name.startswith(_QUERY_PREFIXES)
                else "api"
            )
            found.append(
                EntryPoint(kind, f"{cls.module}:{cls.name}.{stmt.name}")
            )
    if cls.name == _EXECUTOR_BASE or table.is_subclass(cls, _EXECUTOR_BASE):
        for stmt in cls.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            found.append(
                EntryPoint(
                    "executor", f"{cls.module}:{cls.name}.{stmt.name}"
                )
            )
    return found


def _worker_entry_points(
    modules: ModuleGraph, table: SymbolTable
) -> list[EntryPoint]:
    found: list[EntryPoint] = []
    for module in modules.modules:
        ctx = modules.file_of(module)
        if ctx is None:
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            callee_name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id
                if isinstance(callee, ast.Name)
                else None
            )
            if callee_name is None or not callee_name.endswith("Process"):
                continue
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                target = table.resolve_expr(module, keyword.value)
                if isinstance(target, FunctionSymbol):
                    found.append(EntryPoint("worker", target.key))
    return found


def _cli_entry_points(
    modules: ModuleGraph, table: SymbolTable
) -> list[EntryPoint]:
    found: list[EntryPoint] = []
    for module in modules.modules:
        leaf = module.rsplit(".", 1)[-1]
        if leaf not in ("cli", "__main__"):
            continue
        for name, symbol in table.members_of(module).items():
            if not isinstance(symbol, FunctionSymbol) or symbol.owner:
                continue
            if name == "main" or name.startswith("_cmd_"):
                found.append(EntryPoint("cli", symbol.key))
    return found


def find_entry_points(
    modules: ModuleGraph, table: SymbolTable
) -> list[EntryPoint]:
    """Every declared entry point of the project, sorted."""
    found: list[EntryPoint] = []
    for cls in table.classes:
        found.extend(_class_entry_points(table, cls))
    found.extend(_worker_entry_points(modules, table))
    found.extend(_cli_entry_points(modules, table))
    return sorted(set(found))
