"""The conservative project call graph and its reachability queries.

Nodes are every top-level function and class method in the project
(keyed ``module:qualname``).  Edges come from four resolution
strategies, applied in order to each call (and each bare function
*reference*, so callbacks handed to thread pools and ``target=``
keywords count as potential calls):

1. **Direct names** — ``f(...)`` resolves through the symbol table
   (imports, aliases, re-exports).  A class name adds an edge to its
   ``__init__`` and records the instantiation site.
2. **Module attributes** — ``metrics.count(...)`` where ``metrics`` is
   a bound module resolves to that module's member.
3. **Typed receivers** — ``self.m()``, ``self.attr.m()``, ``x.m()``
   resolve through inferred types: the enclosing class's MRO, the
   class attribute-type table (``self._cascade = FilterCascade(...)``),
   parameter/return annotations, and local constructor assignments.
   Method edges fan out to every override in project subclasses of the
   resolved class — virtual dispatch is over-approximated, never
   narrowed.
4. **Unique-name fallback** — an attribute call whose receiver type is
   unknown links to the project method of that bare name **iff exactly
   one exists**; ambiguous names are recorded as unresolved call sites
   instead of guessing (see DESIGN.md §16 for the soundness caveats).

Nested functions and lambdas are folded into their enclosing node: a
closure's calls belong to the function that created it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import Project
from .entrypoints import EntryPoint, find_entry_points
from .modules import ModuleGraph
from .symbols import (
    ClassSymbol,
    ExternalSymbol,
    FunctionSymbol,
    ModuleSymbol,
    Symbol,
    SymbolTable,
)

__all__ = ["CallGraph", "CallSite", "SemanticGraph", "build_graph"]


@dataclass(frozen=True, order=True)
class CallSite:
    """An attribute call the resolver could not pin to one target."""

    caller: str
    attr: str
    line: int


@dataclass
class _FunctionFacts:
    """Everything one pass extracts from a single function body."""

    callees: set[str] = field(default_factory=set)
    instantiates: set[str] = field(default_factory=set)
    unresolved: list[CallSite] = field(default_factory=list)


class _BodyVisitor(ast.NodeVisitor):
    """Collects call/reference edges for one function node.

    Nested function and lambda bodies are visited as part of the
    enclosing function; nested *class* bodies are skipped (their
    methods are their own nodes).
    """

    def __init__(
        self,
        graph: "CallGraph",
        fn: FunctionSymbol,
        local_types: dict[str, str],
    ) -> None:
        self.graph = graph
        self.table = graph.symbols
        self.fn = fn
        self.facts = _FunctionFacts()
        self.local_types = local_types

    # -- scope handling ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None

    # -- reference edges -----------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            symbol = self.table.resolve(self.fn.module, node.id)
            if isinstance(symbol, FunctionSymbol):
                self.facts.callees.add(symbol.key)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._resolve_call(node)
        # Children are visited generically: argument expressions carry
        # callback references, receivers may nest further calls.
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A bare method reference (``pool.submit(self._task)``) is a
        # potential call of that method.
        if isinstance(node.ctx, ast.Load):
            targets = self._receiver_methods(node, reference_only=True)
            if targets:
                self.facts.callees.update(targets)
        self.generic_visit(node)

    # -- call resolution -----------------------------------------------------

    def _resolve_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            symbol = self.table.resolve(self.fn.module, func.id)
            self._link_symbol(symbol)
            return
        if isinstance(func, ast.Attribute):
            targets = self._receiver_methods(func, reference_only=False)
            if targets is None:
                return  # known-external receiver: numpy, stdlib, ...
            if targets:
                self.facts.callees.update(targets)
            else:
                self._fallback(func)
            return
        # Anything else (call of a call, subscript, lambda) is opaque.

    def _link_symbol(self, symbol: Symbol | None) -> None:
        if isinstance(symbol, FunctionSymbol):
            self.facts.callees.add(symbol.key)
        elif isinstance(symbol, ClassSymbol):
            self.facts.instantiates.add(symbol.key)
            init = self.table.find_method(symbol, "__init__")
            if init is not None:
                self.facts.callees.add(init.key)

    def _receiver_methods(
        self, func: ast.Attribute, *, reference_only: bool
    ) -> set[str] | None:
        """Method node keys an attribute expression may denote.

        ``None`` means the receiver is *known external* (numpy, the
        stdlib): the call leaves the project and is neither an edge nor
        an unresolved site.
        """
        attr = func.attr
        receiver = func.value
        # self.m / cls.m / self.attr.m
        own = self._self_receiver_classes(receiver)
        if own is not None:
            return self._methods_on(own, attr)
        # module.member or Class.member through the symbol table
        resolved = self.table.resolve_expr(self.fn.module, receiver)
        if isinstance(resolved, ExternalSymbol):
            return None
        if isinstance(resolved, ModuleSymbol):
            member = self.table.resolve(resolved.module, attr)
            found: set[str] = set()
            if isinstance(member, FunctionSymbol):
                found.add(member.key)
            elif isinstance(member, ClassSymbol) and not reference_only:
                self.facts.instantiates.add(member.key)
                init = self.table.find_method(member, "__init__")
                if init is not None:
                    found.add(init.key)
            return found
        if isinstance(resolved, ClassSymbol):
            # ``SomeClass.method`` — unbound reference or classmethod.
            return self._methods_on([resolved.key], attr)
        # Locally typed receiver: ``x = Engine(...); x.search(...)``
        if isinstance(receiver, ast.Name):
            local = self.local_types.get(receiver.id)
            if local is not None:
                return self._methods_on([local], attr)
        # ``super().m(...)`` — the base-class implementation.
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and self.fn.owner is not None
        ):
            owner = self.table.class_named(
                f"{self.fn.module}:{self.fn.owner}"
            )
            if owner is not None:
                inherited: set[str] = set()
                for base in self.table.bases_of(owner):
                    method = self.table.find_method(base, attr)
                    if method is not None:
                        inherited.add(method.key)
                return inherited
            return set()
        # Chained call receiver: ``active_kernel().max_matrix(...)``
        if isinstance(receiver, ast.Call):
            inferred = self.table.infer_call_type(self.fn.module, receiver)
            if inferred is not None:
                return self._methods_on([inferred], attr)
        return set()

    def _self_receiver_classes(
        self, receiver: ast.expr
    ) -> list[str] | None:
        """Candidate class keys when the receiver is rooted at self/cls."""
        owner = self.fn.owner
        if owner is None:
            return None
        own_key = f"{self.fn.module}:{owner}"
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return [own_key]
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in ("self", "cls")
        ):
            cls = self.table.class_named(own_key)
            if cls is None:
                return None
            candidates = self.table.attr_types(cls).get(receiver.attr)
            return list(candidates) if candidates else []
        return None

    def _methods_on(self, class_keys: list[str], attr: str) -> set[str]:
        """Resolved method keys on the classes plus dispatch fan-out.

        Virtual dispatch is over-approximated: subclass overrides are
        always included, and a receiver typed as a ``typing.Protocol``
        fans out to every structural implementor in the project.
        """
        found: set[str] = set()
        for key in class_keys:
            cls = self.table.class_named(key)
            if cls is None:
                continue
            method = self.table.find_method(cls, attr)
            if method is not None:
                found.add(method.key)
            impls = (
                self.table.implementors_of(cls)
                if self.table.is_protocol(cls)
                else []
            )
            for candidate in [*self.table.subclasses_of(cls), *impls]:
                override = self.table.find_method(
                    candidate, attr, inherited=False
                )
                if override is not None:
                    found.add(override.key)
        return found

    def _fallback(self, func: ast.Attribute) -> None:
        """Unique-name resolution for untyped attribute calls."""
        methods = self.table.methods_named(func.attr)
        if len(methods) == 1:
            self.facts.callees.add(methods[0].key)
        else:
            self.facts.unresolved.append(
                CallSite(self.fn.key, func.attr, func.lineno)
            )


def _local_types(
    table: SymbolTable, fn: FunctionSymbol
) -> dict[str, str]:
    """Name -> class key for locals with inferable types, one pass.

    Parameters with project-class annotations, ``x = ClassName(...)``
    constructor assignments, ``x = factory(...)`` through return
    annotations, and ``x = self.attr`` through the class attribute-type
    table (only when unambiguous).
    """
    types: dict[str, str] = {}
    args = fn.node.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
    ):
        if arg.annotation is not None:
            resolved = table.resolve_expr(fn.module, arg.annotation)
            if isinstance(resolved, ClassSymbol):
                types[arg.arg] = resolved.key
    owner_cls = (
        table.class_named(f"{fn.module}:{fn.owner}")
        if fn.owner is not None
        else None
    )
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        inferred = table.infer_call_type(fn.module, node.value)
        if inferred is None and owner_cls is not None:
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                candidates = table.attr_types(owner_cls).get(value.attr, ())
                if len(candidates) == 1:
                    inferred = candidates[0]
        if inferred is not None:
            types[target.id] = inferred
    return types


class CallGraph:
    """Edges and reachability over every project function/method."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.nodes: dict[str, FunctionSymbol] = {
            fn.key: fn for fn in symbols.functions
        }
        self._edges: dict[str, tuple[str, ...]] = {}
        self._instantiations: dict[str, tuple[str, ...]] = {}
        self.unresolved: list[CallSite] = []
        instantiated_by: dict[str, set[str]] = {}
        for key in sorted(self.nodes):
            fn = self.nodes[key]
            visitor = _BodyVisitor(self, fn, _local_types(symbols, fn))
            for stmt in fn.node.body:
                visitor.visit(stmt)
            facts = visitor.facts
            self._edges[key] = tuple(
                sorted(k for k in facts.callees if k in self.nodes)
            )
            for cls_key in facts.instantiates:
                instantiated_by.setdefault(cls_key, set()).add(key)
            self.unresolved.extend(facts.unresolved)
        self._instantiations = {
            cls_key: tuple(sorted(callers))
            for cls_key, callers in sorted(instantiated_by.items())
        }
        self.unresolved.sort()

    def callees_of(self, key: str) -> tuple[str, ...]:
        """Possible direct callees of the node, sorted."""
        return self._edges.get(key, ())

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Every (caller, callee) pair, sorted."""
        return [
            (caller, callee)
            for caller in sorted(self._edges)
            for callee in self._edges[caller]
        ]

    def instantiators_of(self, class_key: str) -> tuple[str, ...]:
        """Function nodes that construct instances of the class."""
        return self._instantiations.get(class_key, ())

    def reachable_from(self, roots: list[str]) -> frozenset[str]:
        """Transitive closure of the call edges from *roots*."""
        seen: set[str] = set()
        frontier = [key for key in roots if key in self.nodes]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            frontier.extend(
                callee
                for callee in self._edges.get(key, ())
                if callee not in seen
            )
        return frozenset(seen)


@dataclass
class SemanticGraph:
    """The bundled semantic core one lint run shares across rules."""

    project: Project
    modules: ModuleGraph
    symbols: SymbolTable
    calls: CallGraph
    entry_points: list[EntryPoint]

    def entry_keys(self, *kinds: str) -> list[str]:
        """Node keys of the entry points of the given kinds (or all)."""
        wanted = set(kinds)
        return sorted(
            {
                ep.key
                for ep in self.entry_points
                if not wanted or ep.kind in wanted
            }
        )

    def reachable_from_entries(self, *kinds: str) -> frozenset[str]:
        """Call-graph closure from the selected entry-point kinds."""
        return self.calls.reachable_from(self.entry_keys(*kinds))


def build_graph(project: Project) -> SemanticGraph:
    """Build the full semantic core for *project* (deterministic)."""
    modules = ModuleGraph(project)
    symbols = SymbolTable(modules)
    calls = CallGraph(symbols)
    entry_points = find_entry_points(modules, symbols)
    return SemanticGraph(project, modules, symbols, calls, entry_points)
