"""``repro lint`` — the domain-aware static-analysis pass.

The paper's central guarantee (the lower-bound candidate set is a
*superset* of the true answers) plus the sharded, thread-parallel
engine rest on conventions nothing used to machine-check: every lower
bound must be property-tested for no false dismissal, shared state on
the query path must be lock-guarded or thread-local, work counters must
be deterministic functions of the seeded workload.  This package is the
static gate for those conventions: an AST-based rule engine
(:mod:`repro.lint.engine`) plus one module per project rule under
:mod:`repro.lint.rules`.

Run it as ``repro lint [--rules ...] [--format json|table] PATH`` or via
the ``repro-lint`` console script; suppress a finding in place with a
``# repro-lint: disable=RL0xx`` comment on the offending line.
"""

from __future__ import annotations

from .engine import (
    FileContext,
    LintReport,
    Project,
    Rule,
    StaleSuppression,
    Violation,
    apply_suppressions,
    prune_suppressions,
    run_lint,
)
from .rules import ALL_RULES, RULES_BY_CODE, make_rules

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "FileContext",
    "LintReport",
    "Project",
    "Rule",
    "StaleSuppression",
    "Violation",
    "apply_suppressions",
    "make_rules",
    "prune_suppressions",
    "run_lint",
]
