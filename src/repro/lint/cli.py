"""Standalone entry point for the static analyzer.

``repro-lint src/repro`` is sugar for ``repro lint src/repro`` — the
console script installs separately so CI jobs (and pre-commit hooks)
can invoke the analyzer without spelling the subcommand.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Delegate to ``repro lint`` with the same arguments."""
    from ..cli import main as repro_main

    args = list(sys.argv[1:] if argv is None else argv)
    return repro_main(["lint", *args])


if __name__ == "__main__":
    sys.exit(main())
