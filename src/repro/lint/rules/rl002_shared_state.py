"""RL002 — shared mutable state on the query path must be protected.

:class:`~repro.core.sharding.ShardedDatabase` fans queries out on a
thread pool, and the engines it drives are shared across those workers.
Any bare ``self.x = ...`` write reachable from a ``search*`` / ``knn*``
entry point is therefore a data race unless the attribute is a
``threading.local``, a ``contextvars.ContextVar``, a lock object, or
the write happens under a ``with self.<lock>:`` block.

The rule builds a per-class call graph over ``self.method()`` edges,
walks every method reachable from a query entry point, and flags
unguarded attribute writes.  Reads are never flagged (the codebase's
convention is copy-on-read snapshots), and writes to attributes rooted
at a thread-local (``self._last.stats = ...``) are safe by
construction.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation, walk_assign_targets

__all__ = ["SharedStateRule"]

#: Constructor origins that make an attribute safe to mutate per thread.
_THREAD_SAFE_FACTORIES = frozenset(
    {"threading.local", "contextvars.ContextVar"}
)

#: Constructor origins that mark an attribute as a lock object.
_LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition",
     "threading.Semaphore", "threading.BoundedSemaphore"}
)


def _method_defs(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, ast.FunctionDef)
    }


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when *node* is exactly ``self.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _root_self_attr(node: ast.expr) -> str | None:
    """The first attribute after ``self`` in a dotted/subscripted chain.

    ``self._last.stats`` -> ``_last``; ``self._assign[gid]`` ->
    ``_assign``; anything not rooted at ``self`` -> ``None``.
    """
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        parent = current.value
        if isinstance(current, ast.Attribute) and isinstance(
            parent, ast.Name
        ) and parent.id == "self":
            return current.attr
        current = parent
    return None


class _WriteCollector(ast.NodeVisitor):
    """Collects unguarded ``self.*`` writes inside one method body."""

    def __init__(
        self,
        ctx: FileContext,
        safe_attrs: frozenset[str],
        lock_attrs: frozenset[str],
    ) -> None:
        self.ctx = ctx
        self.safe_attrs = safe_attrs
        self.lock_attrs = lock_attrs
        self.lock_depth = 0
        self.writes: list[tuple[ast.expr, str]] = []

    def _is_lock_guard(self, item: ast.withitem) -> bool:
        attr = _self_attr(item.context_expr)
        return attr is not None and attr in self.lock_attrs

    def visit_With(self, node: ast.With) -> None:
        guarded = any(self._is_lock_guard(item) for item in node.items)
        if guarded:
            self.lock_depth += 1
        self.generic_visit(node)
        if guarded:
            self.lock_depth -= 1

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if isinstance(target, ast.Starred):
            self._check_target(target.value)
            return
        root = _root_self_attr(target)
        if root is None:
            return
        if root in self.safe_attrs or root in self.lock_attrs:
            return
        if self.lock_depth > 0:
            return
        self.writes.append((target, root))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    # Nested function/class definitions start a fresh ``self`` scope.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None


class SharedStateRule(Rule):
    code = "RL002"
    title = "query-path state must be lock-guarded or thread-local"
    rationale = (
        "shard thread pools run search*/knn* concurrently on shared "
        "engines; a bare attribute write there is a data race"
    )

    #: Classes whose instances cross the shard thread-pool boundary.
    target_classes = ("QueryEngine", "ShardedDatabase")
    #: Method-name prefixes that are query-path entry points.
    entry_prefixes = ("search", "knn")

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in self.target_classes:
                yield from self._check_class(ctx, node)

    def _classify_attrs(
        self, ctx: FileContext, methods: dict[str, ast.FunctionDef]
    ) -> tuple[frozenset[str], frozenset[str]]:
        """``(thread-safe attrs, lock attrs)`` over the whole class."""
        safe: set[str] = set()
        locks: set[str] = set()
        for method in methods.values():
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                origin = ctx.qualified(stmt.value.func)
                if origin is None:
                    continue
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if origin in _THREAD_SAFE_FACTORIES:
                        safe.add(attr)
                    elif origin in _LOCK_FACTORIES:
                        locks.add(attr)
        return frozenset(safe), frozenset(locks)

    def _reachable(self, methods: dict[str, ast.FunctionDef]) -> set[str]:
        """Methods reachable from the query entry points via self-calls."""
        entries = [
            name
            for name in methods
            if name.startswith(self.entry_prefixes)
        ]
        reachable: set[str] = set()
        frontier = list(entries)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for node in ast.walk(methods[name]):
                if not isinstance(node, ast.Call):
                    continue
                callee = _self_attr(node.func)
                if callee is not None and callee in methods:
                    frontier.append(callee)
        return reachable

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        methods = _method_defs(cls)
        safe, locks = self._classify_attrs(ctx, methods)
        for name in sorted(self._reachable(methods)):
            collector = _WriteCollector(ctx, safe, locks)
            for stmt in methods[name].body:
                collector.visit(stmt)
            for target, root in collector.writes:
                yield self.violation(
                    ctx,
                    target,
                    f"{cls.name}.{name} writes shared attribute "
                    f"'self.{root}' on the query path without a lock, "
                    "threading.local, or contextvars protection",
                )
