"""RL016 — every registered cascade tier is wired in and NFD-covered.

The paper's exactness argument is per-tier: each lower bound in the
cascade must underestimate the true time-warping distance, and the
no-false-dismissal property suite proves it for each *registered* tier
name.  Two failure modes can silently void that argument as the
cascade grows:

* a tier constant is declared (``TIER_LEMIRE = "lb_lemire"``) and
  validated by the constructor, but the evaluation machinery reachable
  from :meth:`FilterCascade.run` / :meth:`run_many` never touches it —
  a wired-but-dead tier that filters nothing while claiming coverage;
* a tier is evaluated but its name is missing from the
  ``tests/nfd_manifest.py`` registry, so nothing property-tests its
  bound — a latent false dismissal.

This rule checks both, whole-program.  *Registered tiers* are the
module-level ``TIER_*`` string constants in the module defining
``FilterCascade``.  *Reachable* means the constant's name is
referenced in the body (or signature) of a function in the call-graph
closure of ``run`` / ``run_many`` — with the cascade constructor
included as an implicit root (no instance reaches ``run`` without it)
and one hop of module-global expansion, so a tier referenced only
through a dispatch table like ``_TIER_COLUMNS`` still counts.
*Covered* means :func:`manifest_entry_problem` accepts the tier's
string value against ``NO_FALSE_DISMISSAL_REGISTRY`` — the same
liveness bar RL001 sets for the bound functions themselves.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..engine import (
    Project,
    Rule,
    Violation,
    load_literal_dict_manifest,
    manifest_entry_problem,
)

if TYPE_CHECKING:
    from ..semantics import SemanticGraph

__all__ = ["ExactnessReachabilityRule"]

_CASCADE_CLASS = "FilterCascade"
_RUN_METHODS = ("run", "run_many")
_TIER_NAME_RE = re.compile(r"^TIER_[A-Z0-9_]+$")

_MANIFEST_REL = "tests/nfd_manifest.py"
_MANIFEST_VAR = "NO_FALSE_DISMISSAL_REGISTRY"


def _referenced_names(node: ast.AST) -> set[str]:
    """Every identifier loaded anywhere under *node*."""
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


class ExactnessReachabilityRule(Rule):
    code = "RL016"
    title = "cascade tiers must be reachable from run() and NFD-covered"
    rationale = (
        "a tier constant the cascade never evaluates, or one missing "
        "from the no-false-dismissal registry, silently voids the "
        "paper's exactness guarantee"
    )

    def check_project(
        self, graph: "SemanticGraph", project: Project
    ) -> Iterator[Violation]:
        from ..semantics import ClassSymbol, ValueSymbol

        cascade: ClassSymbol | None = None
        for cls in graph.symbols.classes:
            if cls.name == _CASCADE_CLASS:
                cascade = cls
                break
        if cascade is None:
            return  # nothing to check: the project has no cascade

        roots: list[str] = []
        missing_runs: list[str] = []
        for method_name in _RUN_METHODS:
            method = graph.symbols.find_method(cascade, method_name)
            if method is None:
                missing_runs.append(method_name)
            else:
                roots.append(method.key)
        if missing_runs:
            yield self.violation(
                cascade.ctx,
                cascade.node,
                f"{_CASCADE_CLASS} defines no "
                f"{'/'.join(missing_runs)} method — the exactness "
                "reachability check has no entry point",
            )
        if not roots:
            return
        init = graph.symbols.find_method(cascade, "__init__")
        if init is not None:
            roots.append(init.key)

        # Names referenced by the closure, plus one hop through
        # module-global dispatch tables (e.g. _TIER_COLUMNS values).
        referenced: set[str] = set()
        for key in sorted(graph.calls.reachable_from(roots)):
            fn = graph.calls.nodes.get(key)
            if fn is not None and fn.module == cascade.module:
                referenced |= _referenced_names(fn.node)
        members = graph.symbols.members_of(cascade.module)
        for name in sorted(referenced & set(members)):
            member = members[name]
            if isinstance(member, ValueSymbol) and member.value is not None:
                referenced |= _referenced_names(member.value)

        registry, manifest_error = load_literal_dict_manifest(
            project.root, _MANIFEST_REL, _MANIFEST_VAR
        )
        for name in sorted(members):
            member = members[name]
            if not isinstance(member, ValueSymbol):
                continue
            if not _TIER_NAME_RE.match(name):
                continue
            value = member.value
            if not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                continue
            tier = value.value
            if name not in referenced:
                yield self.violation(
                    cascade.ctx,
                    member.node,
                    f"registered tier {name} ({tier!r}) is never "
                    f"referenced by code reachable from "
                    f"{_CASCADE_CLASS}.run/run_many — the cascade "
                    "claims a tier it cannot evaluate",
                )
            if registry is None:
                yield self.violation(
                    cascade.ctx,
                    member.node,
                    f"tier {name} ({tier!r}) cannot be NFD-checked: "
                    f"{manifest_error}",
                )
            else:
                problem = manifest_entry_problem(
                    project.root, registry, tier, _MANIFEST_REL
                )
                if problem is not None:
                    yield self.violation(
                        cascade.ctx,
                        member.node,
                        f"tier {name} ({tier!r}) is not covered by the "
                        f"no-false-dismissal registry: {problem}",
                    )
