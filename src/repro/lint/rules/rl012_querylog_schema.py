"""RL012 — every QueryRecord field is in the query-log schema manifest.

The structured query log (:mod:`repro.obs.querylog`) is a persistence
format: records written today must load under tomorrow's
``SCHEMA_VERSION`` checks, so every field of :class:`QueryRecord` is a
schema commitment.  Mirroring RL009/RL011, a declared manifest
(``tests/obs/querylog_manifest.py``) maps each field name to the test
file exercising its round-trip, and this rule verifies the mapping is
complete, the files exist, and each one actually references the field
it vouches for.  Adding a field without a manifest entry — i.e.
without a test pinning its serialization — is a violation at the
field's definition site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    load_literal_dict_manifest,
    manifest_entry_problem,
)

__all__ = ["QuerylogSchemaRule"]


class QuerylogSchemaRule(Rule):
    code = "RL012"
    title = "QueryRecord fields must be in the query-log schema manifest"
    rationale = (
        "query-log records are a persisted, schema-versioned format; a "
        "field without a manifest-registered round-trip test can change "
        "shape silently and break every stored log on load"
    )

    #: Repo-relative path of the declared manifest.
    manifest_rel = "tests/obs/querylog_manifest.py"
    manifest_var = "QUERYRECORD_FIELDS"

    #: Module (suffix) and class whose fields form the schema.
    schema_module = "obs/querylog.py"
    schema_class = "QueryRecord"

    def _record_fields(
        self, project: Project
    ) -> list[tuple[str, FileContext, ast.AST]]:
        """Every annotated field of the schema dataclass, in order."""
        fields: list[tuple[str, FileContext, ast.AST]] = []
        for ctx in project.files:
            rel = ctx.rel.replace("\\", "/")
            if rel.startswith("tests/") or not rel.endswith(self.schema_module):
                continue
            for node in ast.walk(ctx.tree):
                if (
                    not isinstance(node, ast.ClassDef)
                    or node.name != self.schema_class
                ):
                    continue
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    target = stmt.target
                    if isinstance(target, ast.Name):
                        fields.append((target.id, ctx, stmt))
        return fields

    def finalize(self, project: Project) -> Iterator[Violation]:
        fields = self._record_fields(project)
        if not fields:
            return
        registry, error = load_literal_dict_manifest(
            project.root, self.manifest_rel, self.manifest_var
        )
        if registry is None:
            for name, ctx, node in fields:
                yield self.violation(
                    ctx,
                    node,
                    f"QueryRecord field {name!r} cannot be verified: {error}",
                )
            return
        for name, ctx, node in fields:
            problem = manifest_entry_problem(
                project.root, registry, name, self.manifest_rel
            )
            if problem is not None:
                yield self.violation(
                    ctx, node, f"QueryRecord field {name!r}: {problem}"
                )
        # Stale manifest keys are the runtime suite's job, as in RL011.
