"""RL001 — every lower bound is property-tested for no false dismissal.

The cascade is only exact because every bound it prunes with satisfies
``bound(S, Q) <= D_tw(S, Q)``.  That proof obligation is discharged by
the hypothesis suites, and this rule makes the link machine-checked: a
declared manifest (``tests/nfd_manifest.py``) maps every lower-bound
name — ``lb_*`` / ``dtw_lb*`` functions and the cascade tier table —
to the test file that exercises its no-false-dismissal property, and
the rule verifies the mapping is complete, the files exist, and each
one actually references the bound it vouches for.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    iter_module_functions,
    load_literal_dict_manifest,
    manifest_entry_problem,
)

__all__ = ["NfdRegistryRule"]

#: Function names that denote a lower bound of ``D_tw``.
_BOUND_NAME_RE = re.compile(r"^(lb_|dtw_lb)")

#: Module-level constants declaring cascade tier names (``TIER_YI = "lb_yi"``).
_TIER_CONST_RE = re.compile(r"^TIER_[A-Z_]+$")


class NfdRegistryRule(Rule):
    code = "RL001"
    title = "lower bounds must be in the no-false-dismissal test registry"
    rationale = (
        "an unregistered bound could silently prune true answers; the "
        "manifest ties every bound to the property test proving it cannot"
    )

    #: Repo-relative path of the declared manifest.
    manifest_rel = "tests/nfd_manifest.py"
    manifest_var = "NO_FALSE_DISMISSAL_REGISTRY"

    def _required(
        self, project: Project
    ) -> dict[str, tuple[FileContext, ast.AST]]:
        """Bound name -> (file, anchor node), first definition wins."""
        required: dict[str, tuple[FileContext, ast.AST]] = {}
        for ctx in project.files:
            for func in iter_module_functions(ctx.tree):
                if _BOUND_NAME_RE.match(func.name) and not func.name.startswith(
                    "_"
                ):
                    required.setdefault(func.name, (ctx, func))
            for node in ctx.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                names = [
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                ]
                if not any(_TIER_CONST_RE.match(name) for name in names):
                    continue
                value = node.value
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and _BOUND_NAME_RE.match(value.value)
                ):
                    required.setdefault(value.value, (ctx, node))
        return required

    def finalize(self, project: Project) -> Iterator[Violation]:
        required = self._required(project)
        if not required:
            return
        registry, error = load_literal_dict_manifest(
            project.root, self.manifest_rel, self.manifest_var
        )
        if registry is None:
            for name, (ctx, node) in sorted(required.items()):
                yield self.violation(
                    ctx, node, f"lower bound {name!r} cannot be verified: {error}"
                )
            return
        for name, (ctx, node) in sorted(required.items()):
            problem = manifest_entry_problem(
                project.root, registry, name, self.manifest_rel
            )
            if problem is not None:
                yield self.violation(
                    ctx, node, f"lower bound {name!r}: {problem}"
                )
        # Stale manifest entries (a key matching no bound) are left to the
        # registry-driven test suite: a partial lint run legitimately sees
        # only a subset of the bounds, so staleness is not decidable here.
