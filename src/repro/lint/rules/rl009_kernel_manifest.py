"""RL009 — every DTW kernel registration is in the kernel-parity registry.

A kernel only earns its place in ``KERNELS`` by being pinned bit-exact
to the ``reference`` kernel — distances, matrices, and the structured
outcomes the metric charges derive from.  That proof obligation lives in
the hypothesis differential suite, and this rule makes the link
machine-checked, mirroring RL001's no-false-dismissal manifest: a
declared manifest (``tests/distance/kernel_manifest.py``) maps every
registered kernel name to the test file exercising its parity contract,
and the rule verifies the mapping is complete, the files exist, and each
one actually references the kernel it vouches for.

Registrations are found statically: calls to ``register_kernel(...)``
and direct ``KERNELS[...] = ...`` assignments.  The kernel name must be
a string literal in both forms — a computed name cannot be tied to a
manifest entry, so it is a violation in itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    load_literal_dict_manifest,
    manifest_entry_problem,
    walk_assign_targets,
)

__all__ = ["KernelManifestRule"]


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class KernelManifestRule(Rule):
    code = "RL009"
    title = "DTW kernels must be in the kernel-parity test registry"
    rationale = (
        "an unregistered kernel could silently drift from the reference "
        "semantics; the manifest ties every kernel to the differential "
        "suite proving it bit-exact"
    )

    #: Repo-relative path of the declared manifest.
    manifest_rel = "tests/distance/kernel_manifest.py"
    manifest_var = "KERNEL_PARITY_REGISTRY"

    #: Dotted-origin suffixes of the registration entry points.
    register_call = "register_kernel"
    registry_name = "KERNELS"

    def _origin_matches(self, ctx: FileContext, node: ast.expr, tail: str) -> bool:
        origin = ctx.qualified(node)
        return origin is not None and origin.split(".")[-1] == tail

    def _registrations(
        self, project: Project
    ) -> tuple[dict[str, tuple[FileContext, ast.AST]], list[Violation]]:
        """Kernel name -> (file, anchor), plus non-literal-name findings."""
        found: dict[str, tuple[FileContext, ast.AST]] = {}
        non_literal: list[Violation] = []
        for ctx in project.files:
            if ctx.rel.replace("\\", "/").startswith("tests/"):
                continue  # fixtures and suites may fake registrations
            # The body of ``def register_kernel`` is the entry point's
            # implementation — its internal ``KERNELS[name] = kernel``
            # write is not a registration site.
            internal: set[int] = set()
            for fn in ast.walk(ctx.tree):
                if (
                    isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and fn.name == self.register_call
                ):
                    internal.update(id(inner) for inner in ast.walk(fn))
            for node in ast.walk(ctx.tree):
                if id(node) in internal:
                    continue
                if isinstance(node, ast.Call) and self._origin_matches(
                    ctx, node.func, self.register_call
                ):
                    if not node.args:
                        continue
                    name = _literal_str(node.args[0])
                    if name is None:
                        non_literal.append(
                            self.violation(
                                ctx,
                                node,
                                f"{self.register_call}() name must be a "
                                "string literal so the registration can be "
                                "tied to its kernel-parity manifest entry",
                            )
                        )
                        continue
                    found.setdefault(name, (ctx, node))
                elif isinstance(node, ast.stmt):
                    for target in walk_assign_targets(node):
                        if not isinstance(target, ast.Subscript):
                            continue
                        if not self._origin_matches(
                            ctx, target.value, self.registry_name
                        ):
                            continue
                        name = _literal_str(target.slice)
                        if name is None:
                            non_literal.append(
                                self.violation(
                                    ctx,
                                    node,
                                    f"{self.registry_name}[...] key must be "
                                    "a string literal so the registration "
                                    "can be tied to its kernel-parity "
                                    "manifest entry",
                                )
                            )
                            continue
                        found.setdefault(name, (ctx, node))
        return found, non_literal

    def finalize(self, project: Project) -> Iterator[Violation]:
        required, non_literal = self._registrations(project)
        yield from non_literal
        if not required:
            return
        registry, error = load_literal_dict_manifest(
            project.root, self.manifest_rel, self.manifest_var
        )
        if registry is None:
            for name, (ctx, node) in sorted(required.items()):
                yield self.violation(
                    ctx, node, f"kernel {name!r} cannot be verified: {error}"
                )
            return
        for name, (ctx, node) in sorted(required.items()):
            problem = manifest_entry_problem(
                project.root, registry, name, self.manifest_rel
            )
            if problem is not None:
                yield self.violation(ctx, node, f"kernel {name!r}: {problem}")
        # As with RL001, stale manifest entries are the runtime suite's
        # job: optional kernels (``numba``) legitimately register on some
        # machines only, so an extra manifest key is not an error here.
