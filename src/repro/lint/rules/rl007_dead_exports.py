"""RL007 — no dead public exports.

A name in ``__all__`` is a promise: it is API someone can build on, so
it must be exercised by tests, used by the tree, or at least documented.
A symbol exported nowhere-referenced is usually a refactoring leftover —
and worse, it silently rots because nothing would fail if it broke.

The reference corpus is every Python file under ``src`` / ``tests`` /
``benchmarks`` / ``examples`` plus the Markdown docs (``*.md`` at the
repo root and under ``docs/``): a documented symbol is alive.  Files
that themselves export the name (the defining module and any
re-exporting ``__init__``) do not count as references.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation, dotted_all_entries

__all__ = ["DeadExportRule"]


class DeadExportRule(Rule):
    code = "RL007"
    title = "every __all__ export must be referenced somewhere"
    rationale = (
        "an unreferenced public symbol is untested API that silently "
        "rots; reference it from tests/docs or stop exporting it"
    )

    def finalize(self, project: Project) -> Iterator[Violation]:
        # name -> (exporting rel paths, first anchor)
        exports: dict[str, tuple[set[str], FileContext, object]] = {}
        for ctx in project.files:
            for name, node in dotted_all_entries(ctx.tree):
                if name in exports:
                    exports[name][0].add(ctx.rel)
                else:
                    exports[name] = ({ctx.rel}, ctx, node)
        if not exports:
            return
        corpus = project.reference_identifiers()
        # The checked files may live outside the reference dirs (e.g. a
        # fixture tree); fold their identifier sets in as well.
        merged: dict[str, frozenset[str]] = dict(corpus)
        for ctx in project.files:
            merged.setdefault(ctx.rel, ctx.identifiers())
        for name, (exporting, ctx, node) in sorted(exports.items()):
            referenced = any(
                name in identifiers
                for rel, identifiers in merged.items()
                if rel not in exporting
            )
            if not referenced:
                anchor = node if isinstance(node, ast.AST) else None
                yield self.violation(
                    ctx,
                    anchor,
                    f"public symbol {name!r} is exported in __all__ but "
                    "referenced nowhere in src/tests/benchmarks/docs — "
                    "exercise it or stop exporting it",
                )
