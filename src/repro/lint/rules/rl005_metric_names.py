"""RL005 — metric names follow the ``layer.noun`` grammar.

DESIGN.md §9 defines the observability namespace: every instrument name
is at least two dotted lowercase segments, the first naming the layer
that charges it (``cascade.lb_kim.pruned``, ``index.rtree.node_reads``,
``engine.queries``, ``dtw.cells``).  A flat name like ``"queries"``
collides across layers once snapshots merge, and a miscased segment
splits one logical series into two.

The rule validates every string literal (and the literal skeleton of
every f-string, with formatted values standing in as one segment)
passed as the name argument of a registry call — ``.count()``,
``.observe()``, ``.set_gauge()``, ``.counter()``, ``.gauge()``,
``.histogram()``, ``.timer()`` on registry-shaped receivers, plus the
module-level ambient helpers imported from :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation, literal_parts

__all__ = ["MetricNameRule"]

#: The DESIGN.md §9 grammar: >= 2 dotted segments of lowercase
#: alphanumerics, ``_``, ``-`` and the ``[]`` used by shard labels.
_NAME_GRAMMAR = re.compile(
    r"^[a-z][a-z0-9_\-\[\]]*(\.[a-z0-9_\-\[\]]+)+$"
)

_REGISTRY_METHODS = frozenset(
    {"count", "observe", "set_gauge", "counter", "gauge", "histogram", "timer"}
)

_AMBIENT_HELPERS = frozenset({"count", "observe", "set_gauge"})

#: Receiver identifiers that denote a metrics registry.  Matching on the
#: receiver name keeps ``str.count`` / ``list.count`` out of scope.
_RECEIVER_NAMES = frozenset(
    {"registry", "per_query", "metrics", "outer", "sink"}
)


def _receiver_name(node: ast.expr) -> str | None:
    """The identifier a method call's receiver ends in, underscores
    stripped (``self._metrics`` -> ``metrics``)."""
    if isinstance(node, ast.Name):
        return node.id.lstrip("_")
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_")
    return None


class MetricNameRule(Rule):
    code = "RL005"
    title = "metric names must match the layer.noun grammar"
    rationale = (
        "flat or miscased instrument names collide across layers when "
        "per-shard snapshots merge (DESIGN.md par.9)"
    )

    def _is_registry_call(self, ctx: FileContext, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr not in _REGISTRY_METHODS:
                return False
            receiver = _receiver_name(func.value)
            return receiver is not None and (
                receiver in _RECEIVER_NAMES
                or receiver.endswith("registry")
                or receiver.endswith("metrics")
            )
        if isinstance(func, ast.Name) and func.id in _AMBIENT_HELPERS:
            origin = ctx.imports.get(func.id, "")
            return origin.endswith(f"obs.metrics.{func.id}") or origin.endswith(
                f"obs.{func.id}"
            )
        return False

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not self._is_registry_call(ctx, node):
                continue
            name = literal_parts(node.args[0])
            if name is None:
                continue
            if not _NAME_GRAMMAR.match(name):
                yield self.violation(
                    ctx,
                    node.args[0],
                    f"metric name {name!r} does not follow the layer.noun "
                    "grammar of DESIGN.md par.9 (>= 2 dotted lowercase "
                    "segments, e.g. 'sharded.queries')",
                )
