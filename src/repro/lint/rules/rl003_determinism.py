"""RL003 — no wall clock and no unseeded randomness in the library.

Work counters (``dtw.cells``, ``cascade.*.pruned``, node reads) are
gated bit-for-bit against committed baselines, and sharded runs must
merge to single-shard totals exactly.  Both guarantees require every
code path to be a deterministic function of the seeded workload: a
``time.time()`` call or an unseeded ``np.random.default_rng()`` in the
library proper silently breaks them.

Flagged:

* wall-clock reads (``time.time`` / ``perf_counter`` / ``monotonic`` /
  ``strftime`` ..., ``datetime.now`` / ``utcnow`` / ``today``),
* ``np.random.default_rng()`` with no argument, a literal ``None``, or
  a parameter whose declared default is ``None``,
* the global-state NumPy RNG (``np.random.rand`` and friends) and the
  :mod:`random` module-level functions / unseeded ``random.Random()``,
* ``rng=None`` / ``seed=None`` parameter defaults (the deterministic
  convention is an integer default, usually ``0``).

The timing plane itself is exempt: everything under ``perf/`` plus the
declared timing modules (the obs instruments and the CPU-cost
accounting in the methods/eval layers).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation

__all__ = ["DeterminismRule"]

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.strftime",
        "time.gmtime",
        "time.localtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_NUMPY_GLOBAL_RNG = frozenset(
    {
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.random",
        "numpy.random.randint",
        "numpy.random.seed",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.normal",
        "numpy.random.uniform",
    }
)

_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
        "random.seed",
    }
)

_RNG_PARAM_NAMES = frozenset({"rng", "seed"})


def _none_default_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Parameter names of *func* whose declared default is ``None``."""
    names: set[str] = set()
    args = func.args
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        if isinstance(default, ast.Constant) and default.value is None:
            names.add(arg.arg)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if isinstance(kw_default, ast.Constant) and kw_default.value is None:
            names.add(arg.arg)
    return names


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, rule: "DeterminismRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.none_params: list[set[str]] = []
        self.violations: list[Violation] = []

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        none_defaults = _none_default_params(node)
        for name in sorted(none_defaults & _RNG_PARAM_NAMES):
            self.violations.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"function {node.name!r} defaults {name}=None — use a "
                    "deterministic integer default so unparameterized "
                    "calls stay reproducible",
                )
            )
        self.none_params.append(none_defaults)
        self.generic_visit(node)
        self.none_params.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _is_unseeded_arg(self, call: ast.Call) -> bool:
        if call.keywords:
            return False
        if not call.args:
            return True
        if len(call.args) != 1:
            return False
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and arg.value is None:
            return True
        if isinstance(arg, ast.Name):
            return any(arg.id in params for params in self.none_params)
        return False

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.ctx.qualified(node.func)
        if origin is not None:
            if origin in _WALL_CLOCK:
                self.violations.append(
                    self.rule.violation(
                        self.ctx,
                        node,
                        f"wall-clock call {origin}() in the library — work "
                        "counters must be deterministic functions of the "
                        "seeded workload (timing belongs in perf/)",
                    )
                )
            elif origin in _NUMPY_GLOBAL_RNG or origin in _RANDOM_MODULE_FUNCS:
                self.violations.append(
                    self.rule.violation(
                        self.ctx,
                        node,
                        f"{origin}() uses hidden global RNG state — pass an "
                        "explicitly seeded Generator / random.Random instead",
                    )
                )
            elif origin in ("numpy.random.default_rng", "random.Random"):
                if self._is_unseeded_arg(node):
                    self.violations.append(
                        self.rule.violation(
                            self.ctx,
                            node,
                            f"{origin}() without a seed is nondeterministic — "
                            "every RNG in the library must be constructed "
                            "from an explicit seed or caller-owned Generator",
                        )
                    )
        self.generic_visit(node)


class DeterminismRule(Rule):
    code = "RL003"
    title = "no wall clock or unseeded randomness in src/repro"
    rationale = (
        "bit-exact counter baselines and shard-merge parity only hold "
        "when the library is a deterministic function of seeded input"
    )

    #: Path fragments exempt from this rule (the timing plane).
    exempt_dirs = ("perf/",)
    exempt_suffixes = (
        "obs/metrics.py",
        "obs/tracing.py",
        "obs/querylog.py",
        "methods/base.py",
        "methods/cascade_scan.py",
        "eval/experiments.py",
    )

    def _exempt(self, rel: str) -> bool:
        posix = rel.replace("\\", "/")
        if any(
            f"/{fragment}" in f"/{posix}" for fragment in self.exempt_dirs
        ):
            return True
        return posix.endswith(self.exempt_suffixes)

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        if self._exempt(ctx.rel):
            return
        visitor = _DeterminismVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.violations
