"""RL015 — the public API's transitive raise-set is ReproError-only.

RL004 flags a bare builtin ``raise`` where it stands, but the contract
it protects is a property of *paths*, not lines: a caller of
:mod:`repro`'s facade must be able to catch every library failure as
:class:`~repro.exceptions.ReproError`.  This rule closes RL004 over
the call graph.  Roots are the package facade — every name exported by
``src/repro/__init__.py``'s ``__all__``, expanded to all public
methods (plus ``__init__``) for exported classes.  Every function in
the call-graph closure of those roots is then checked:

* a raise of a builtin exception type is a contract break (same
  builtin set as RL004),
* a raise of a *project* exception class that does not subclass
  ``ReproError`` is one too — a case RL004's per-file view cannot see,
  since the class definition may live in another module.

Deliberate protocol raises (``KeyError`` from a mapping ``__getitem__``,
``AttributeError`` from an immutability guard) stay waivable in place —
the same lines typically already carry an RL004 waiver, and
``--fix-suppressions`` merges the codes into one comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..engine import Project, Rule, Violation, dotted_all_entries
from .rl004_exceptions import _BUILTIN_EXCEPTIONS

if TYPE_CHECKING:
    from ..semantics import SemanticGraph

__all__ = ["ExceptionContractRule"]

#: The package whose ``__all__`` defines the public facade.
_FACADE_MODULE = "repro"

#: The root of the sanctioned exception hierarchy.
_DOMAIN_BASE = "ReproError"


class ExceptionContractRule(Rule):
    code = "RL015"
    title = "public API paths raise only ReproError subclasses"
    rationale = (
        "callers catch ReproError at the facade; any transitive raise "
        "of a builtin or an off-hierarchy class escapes that net"
    )

    def _facade_roots(self, graph: "SemanticGraph") -> list[str]:
        """Call-graph roots: the resolved ``__all__`` of the facade."""
        from ..semantics import ClassSymbol, FunctionSymbol

        ctx = graph.modules.file_of(_FACADE_MODULE)
        if ctx is None:
            return []
        roots: set[str] = set()
        for name, _node in dotted_all_entries(ctx.tree):
            symbol = graph.symbols.resolve(_FACADE_MODULE, name)
            if isinstance(symbol, FunctionSymbol):
                roots.add(symbol.key)
            elif isinstance(symbol, ClassSymbol):
                for owner in graph.symbols.mro(symbol):
                    for stmt in owner.node.body:
                        if not isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            continue
                        if (
                            stmt.name.startswith("_")
                            and stmt.name != "__init__"
                        ):
                            continue
                        roots.add(
                            f"{owner.module}:{owner.name}.{stmt.name}"
                        )
        return sorted(roots)

    def check_project(
        self, graph: "SemanticGraph", project: Project
    ) -> Iterator[Violation]:
        from ..semantics import ClassSymbol

        closure = graph.calls.reachable_from(self._facade_roots(graph))
        for key in sorted(closure):
            fn = graph.calls.nodes.get(key)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name_node: ast.expr = (
                    exc.func if isinstance(exc, ast.Call) else exc
                )
                if not isinstance(name_node, ast.Name):
                    continue
                resolved = graph.symbols.resolve(fn.module, name_node.id)
                if isinstance(resolved, ClassSymbol):
                    if not graph.symbols.is_subclass(resolved, _DOMAIN_BASE):
                        yield self.violation(
                            fn.ctx,
                            node,
                            f"{fn.qualname} (reachable from the public "
                            f"API) raises {name_node.id}, a project "
                            f"class outside the {_DOMAIN_BASE} "
                            "hierarchy — callers catching "
                            f"{_DOMAIN_BASE} at the facade miss it",
                        )
                elif resolved is None and name_node.id in _BUILTIN_EXCEPTIONS:
                    yield self.violation(
                        fn.ctx,
                        node,
                        f"{fn.qualname} (reachable from the public API) "
                        f"raises builtin {name_node.id} — the facade "
                        f"contract promises every failure is a "
                        f"{_DOMAIN_BASE}; raise a domain subclass or "
                        "waive a documented protocol raise",
                    )
