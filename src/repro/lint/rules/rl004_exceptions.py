"""RL004 — only :class:`~repro.exceptions.ReproError` subclasses cross
the public API boundary.

The library's contract is that any failure it raises is catchable as
one type.  A bare ``raise ValueError(...)`` deep in a module silently
breaks that contract for every caller of the public facade.  The fix is
always a domain subclass — and because several of those dual-inherit
(``ValidationError(ReproError, ValueError)``), migrating never breaks
callers catching the builtin.

Deliberate builtin raises that implement a documented protocol (e.g.
``KeyError`` from a mapping-shaped ``stage(name)`` lookup) are waived
in place with ``# repro-lint: disable=RL004``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation

__all__ = ["ExceptionDomainRule"]

#: Builtin exception types that must not cross the API boundary.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "AttributeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "StopIteration",
    }
)


class ExceptionDomainRule(Rule):
    code = "RL004"
    title = "raise ReproError subclasses, not bare builtins"
    rationale = (
        "callers are promised every library failure is catchable as "
        "ReproError; a bare builtin raise breaks that contract"
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name_node: ast.expr = (
                exc.func if isinstance(exc, ast.Call) else exc
            )
            if not isinstance(name_node, ast.Name):
                continue
            # An import-shadowed name is not the builtin.
            if name_node.id in ctx.imports:
                continue
            if name_node.id in _BUILTIN_EXCEPTIONS:
                yield self.violation(
                    ctx,
                    node,
                    f"bare builtin raise {name_node.id} crosses the public "
                    "API boundary — raise a ReproError subclass (see "
                    "repro.exceptions) or waive a documented protocol "
                    "raise with a suppression",
                )
