"""RL010 — worker functions must not touch module-level mutable state.

The process executor starts shard workers with the ``spawn`` method:
each worker re-imports the module and gets a **fresh copy** of every
module-level object.  A module-level dict, list or set referenced from
a worker entry point therefore *looks* shared with the parent but is
not — mutations diverge silently across the process boundary, which is
exactly the failure mode the executor plane's bit-exactness contract
forbids.  Worker state must live in arguments (pickled once, explicit)
or in shared memory (:mod:`repro.exec.shm`), never in module globals.

The rule finds functions wired as process entry points — any name
passed as the ``target=`` of a ``Process(...)``-style call — walks the
module-level call graph reachable from them, and flags every reference
to a module-level mutable binding (container literals, comprehensions,
or calls to the standard mutable-container factories) from those
functions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation, walk_assign_targets

__all__ = ["SpawnSafetyRule"]

#: Call origins that build a mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.Counter",
        "collections.deque",
        "collections.OrderedDict",
    }
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _mutable_module_globals(
    ctx: FileContext, tree: ast.Module
) -> dict[str, ast.stmt]:
    """Module-level names bound to a mutable container, name -> binding."""
    found: dict[str, ast.stmt] = {}
    for stmt in tree.body:
        targets = walk_assign_targets(stmt)
        if not targets:
            continue
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS)
        if not mutable and isinstance(value, ast.Call):
            origin = ctx.qualified(value.func)
            mutable = origin in _MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found[target.id] = stmt
    return found


def _worker_entry_names(tree: ast.Module) -> set[str]:
    """Names passed as ``target=`` to a ``*Process(...)`` call."""
    entries: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        callee_name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None
        )
        if callee_name is None or not callee_name.endswith("Process"):
            continue
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                entries.add(keyword.value.id)
    return entries


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _reachable_workers(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef]:
    """Worker entry functions plus module functions they call."""
    functions = _module_functions(tree)
    frontier = [name for name in _worker_entry_names(tree) if name in functions]
    reachable: dict[str, ast.FunctionDef] = {}
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable[name] = functions[name]
        for node in ast.walk(functions[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in functions
            ):
                frontier.append(node.func.id)
    return reachable


def _local_names(fn: ast.FunctionDef) -> set[str]:
    """Names the function binds locally (params + assignment targets).

    A local binding shadows a same-named module global, so references
    to it are process-safe; ``global`` declarations cancel the shadow.
    """
    shadow = {
        arg.arg
        for arg in (
            fn.args.args
            + fn.args.posonlyargs
            + fn.args.kwonlyargs
            + ([fn.args.vararg] if fn.args.vararg else [])
            + ([fn.args.kwarg] if fn.args.kwarg else [])
        )
    }
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        for target in walk_assign_targets(node) if isinstance(
            node, ast.stmt
        ) else ():
            if isinstance(target, ast.Name):
                shadow.add(target.id)
        if isinstance(node, (ast.For, ast.comprehension)) and isinstance(
            node.target, ast.Name
        ):
            shadow.add(node.target.id)
    return shadow - declared_global


class SpawnSafetyRule(Rule):
    code = "RL010"
    title = "process-worker functions must not use module-level mutable state"
    rationale = (
        "spawned workers re-import the module, so a module-level "
        "container referenced from a worker is a fresh copy — mutations "
        "silently diverge from the parent instead of being shared"
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        mutable = _mutable_module_globals(ctx, ctx.tree)
        if not mutable:
            return
        for fn_name, fn in sorted(_reachable_workers(ctx.tree).items()):
            local_shadow = _local_names(fn)
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Name)
                    and node.id in mutable
                    and node.id not in local_shadow
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"worker function {fn_name!r} references "
                        f"module-level mutable {node.id!r}; spawned "
                        "workers get a fresh copy, so this state is not "
                        "shared with the parent — pass it through the "
                        "worker's arguments or shared memory instead",
                    )
                elif isinstance(node, ast.Global) and any(
                    name in mutable for name in node.names
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"worker function {fn_name!r} declares a module "
                        "global mutable binding; spawned workers cannot "
                        "share module state with the parent",
                    )
