"""RL006 — hot-path modules must not allocate inside per-cell loops.

The DTW kernel and the cascade's batched tiers are the measured inner
loops of every benchmark; an ``np.zeros`` or a list comprehension
re-executed per cell (i.e. at loop depth >= 2) turns an O(1) step into
an allocator round-trip and shows up directly in the gated wall-time
series.  The convention is to hoist buffers out of the loop nest and
mutate them in place (``mask[:] = True``) — this rule flags the
allocations that were not hoisted.

Scope is the configured hot modules only (``distance/dtw.py``, the
reference and vectorized DTW kernels, ``core/cascade.py``); a
comprehension or constructor call at depth 0/1 (per-query or
per-diagonal, not per-cell) is fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation

__all__ = ["HotLoopAllocationRule"]

#: Call origins that allocate a fresh container/array.
_ALLOCATING_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "numpy.array",
        "numpy.asarray",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.concatenate",
        "numpy.arange",
        "numpy.tile",
        "numpy.repeat",
    }
)

#: Loop depth at which an allocation counts as per-cell.
_HOT_DEPTH = 2


class _LoopVisitor(ast.NodeVisitor):
    def __init__(self, rule: "HotLoopAllocationRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.depth = 0
        self.violations: list[Violation] = []

    def _enter_loop(self, node: ast.For | ast.While) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._enter_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node)

    def _flag(self, node: ast.AST, what: str) -> None:
        self.violations.append(
            self.rule.violation(
                self.ctx,
                node,
                f"{what} inside a depth-{self.depth} loop nest of a hot-path "
                "module — hoist the buffer out of the loop and mutate it "
                "in place",
            )
        )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self.depth >= _HOT_DEPTH:
            self._flag(node, "list comprehension allocates")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        if self.depth >= _HOT_DEPTH:
            self._flag(node, "set comprehension allocates")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self.depth >= _HOT_DEPTH:
            self._flag(node, "dict comprehension allocates")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.depth >= _HOT_DEPTH:
            origin = self.ctx.qualified(node.func)
            if origin is not None and origin in _ALLOCATING_CALLS:
                self._flag(node, f"{origin}() allocates")
        self.generic_visit(node)

    # A nested function body restarts the depth count: its loops run in
    # their own invocation, not per cell of the enclosing nest.
    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        outer = self.depth
        self.depth = 0
        self.generic_visit(node)
        self.depth = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_function(node)


class HotLoopAllocationRule(Rule):
    code = "RL006"
    title = "no allocation inside per-cell loops of hot-path modules"
    rationale = (
        "the DTW/cascade inner loops are the benchmarked kernels; a "
        "per-cell allocation regresses the gated wall-time series"
    )

    #: Repo-relative suffixes of the hot-path modules.
    hot_modules = (
        "distance/dtw.py",
        "distance/kernels/reference.py",
        "distance/kernels/vectorized.py",
        "core/cascade.py",
    )

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        posix = ctx.rel.replace("\\", "/")
        if not posix.endswith(self.hot_modules):
            return
        visitor = _LoopVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.violations
