"""RL008 — benchmark workload specs must be explicitly seeded.

The regression gate compares work counters bit-for-bit against the
committed baselines, which is only meaningful when every spec in
``perf/workloads.py`` pins its dataset seed.  A ``DatasetSpec`` (or a
direct dataset-generator call) relying on an implicit or defaulted seed
would drift the counters and turn the gate into noise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Project, Rule, Violation

__all__ = ["BenchSeedRule"]

#: Constructors/generators that must receive an explicit ``seed=``.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "DatasetSpec",
        "random_walk_dataset",
        "synthetic_sp500",
        "cbf_dataset",
    }
)


class BenchSeedRule(Rule):
    code = "RL008"
    title = "benchmark specs in perf/workloads.py must set seeds"
    rationale = (
        "unseeded workloads make the bit-exact counter baselines "
        "non-comparable across runs"
    )

    #: Repo-relative suffixes this rule applies to.
    target_suffixes = ("perf/workloads.py",)

    def check_file(
        self, ctx: FileContext, project: Project
    ) -> Iterator[Violation]:
        posix = ctx.rel.replace("\\", "/")
        if not posix.endswith(self.target_suffixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name is None or name not in _SEEDED_CONSTRUCTORS:
                continue
            keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
            if "seed" not in keywords and "rng" not in keywords:
                yield self.violation(
                    ctx,
                    node,
                    f"{name}(...) in the benchmark workload registry must "
                    "pass an explicit seed= so counter baselines stay "
                    "bit-comparable",
                )
