"""RL011 — every sequence store registration is in the parity registry.

A store only earns its place in ``STORES`` by honouring the heap
store's logical byte arithmetic — answers, page counts and every
simulated ``storage.*`` charge must be bit-identical to the oracle
across all backends, executors and shard counts.  That proof obligation
lives in the store-parity suite, and this rule makes the link
machine-checked, mirroring RL009's kernel manifest: a declared manifest
(``tests/storage/store_manifest.py``) maps every registered store name
to the test file exercising its parity contract, and the rule verifies
the mapping is complete, the files exist, and each one actually
references the store it vouches for.

Registrations are found statically: classes decorated with
``@register_store`` (the name is the class body's ``name`` ClassVar)
and direct ``STORES[...] = ...`` assignments.  The store name must be
a string literal in both forms — a computed name cannot be tied to a
manifest entry, so it is a violation in itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    load_literal_dict_manifest,
    manifest_entry_problem,
    walk_assign_targets,
)

__all__ = ["StoreManifestRule"]


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _class_name_literal(cls: ast.ClassDef) -> str | None:
    """The literal value of the class body's ``name`` attribute, if any."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "name":
                return _literal_str(stmt.value)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return _literal_str(stmt.value)
    return None


class StoreManifestRule(Rule):
    code = "RL011"
    title = "sequence stores must be in the store-parity test registry"
    rationale = (
        "an unregistered store could silently diverge from the heap "
        "oracle's logical layout; the manifest ties every store to the "
        "parity suite proving answers and storage.* charges bit-identical"
    )

    #: Repo-relative path of the declared manifest.
    manifest_rel = "tests/storage/store_manifest.py"
    manifest_var = "STORE_PARITY_REGISTRY"

    #: Dotted-origin suffixes of the registration entry points.
    register_call = "register_store"
    registry_name = "STORES"

    def _origin_matches(self, ctx: FileContext, node: ast.expr, tail: str) -> bool:
        origin = ctx.qualified(node)
        return origin is not None and origin.split(".")[-1] == tail

    def _registrations(
        self, project: Project
    ) -> tuple[dict[str, tuple[FileContext, ast.AST]], list[Violation]]:
        """Store name -> (file, anchor), plus non-literal-name findings."""
        found: dict[str, tuple[FileContext, ast.AST]] = {}
        non_literal: list[Violation] = []
        for ctx in project.files:
            if ctx.rel.replace("\\", "/").startswith("tests/"):
                continue  # fixtures and suites may fake registrations
            # The body of ``def register_store`` is the entry point's
            # implementation — its internal ``STORES[cls.name] = cls``
            # write is not a registration site.
            internal: set[int] = set()
            for fn in ast.walk(ctx.tree):
                if (
                    isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and fn.name == self.register_call
                ):
                    internal.update(id(inner) for inner in ast.walk(fn))
            for node in ast.walk(ctx.tree):
                if id(node) in internal:
                    continue
                if isinstance(node, ast.ClassDef) and any(
                    self._origin_matches(ctx, deco, self.register_call)
                    for deco in node.decorator_list
                ):
                    name = _class_name_literal(node)
                    if name is None:
                        non_literal.append(
                            self.violation(
                                ctx,
                                node,
                                f"@{self.register_call} class must declare "
                                "its 'name' as a string literal so the "
                                "registration can be tied to its "
                                "store-parity manifest entry",
                            )
                        )
                        continue
                    found.setdefault(name, (ctx, node))
                elif isinstance(node, ast.stmt):
                    for target in walk_assign_targets(node):
                        if not isinstance(target, ast.Subscript):
                            continue
                        if not self._origin_matches(
                            ctx, target.value, self.registry_name
                        ):
                            continue
                        name = _literal_str(target.slice)
                        if name is None:
                            non_literal.append(
                                self.violation(
                                    ctx,
                                    node,
                                    f"{self.registry_name}[...] key must be "
                                    "a string literal so the registration "
                                    "can be tied to its store-parity "
                                    "manifest entry",
                                )
                            )
                            continue
                        found.setdefault(name, (ctx, node))
        return found, non_literal

    def finalize(self, project: Project) -> Iterator[Violation]:
        required, non_literal = self._registrations(project)
        yield from non_literal
        if not required:
            return
        registry, error = load_literal_dict_manifest(
            project.root, self.manifest_rel, self.manifest_var
        )
        if registry is None:
            for name, (ctx, node) in sorted(required.items()):
                yield self.violation(
                    ctx, node, f"store {name!r} cannot be verified: {error}"
                )
            return
        for name, (ctx, node) in sorted(required.items()):
            problem = manifest_entry_problem(
                project.root, registry, name, self.manifest_rel
            )
            if problem is not None:
                yield self.violation(ctx, node, f"store {name!r}: {problem}")
        # As with RL009, stale manifest entries are the runtime suite's
        # job: an extra manifest key is not an error here.
