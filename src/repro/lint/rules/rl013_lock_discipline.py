"""RL013 — lock discipline over the whole concurrent call graph.

RL002 protects the query path one file at a time: it only sees
``self.method()`` edges inside ``QueryEngine`` / ``ShardedDatabase``.
But the shard thread pool does not stop at a class boundary — a
``search`` call flows into the cascade, the store, the kernel registry,
and any of those can hide an unguarded write.  This rule closes the
check over the semantic call graph: every function reachable from a
``query``, ``executor`` or ``worker`` entry point is a function some
thread pool or spawned process may run concurrently, so every mutable
attribute or global it writes must be

* guarded by a ``with self.<lock>:`` block (lock attributes are
  classified across the class MRO, so the lock may live in a base
  class in another module),
* rooted at a ``threading.local`` / ``contextvars.ContextVar``, or
* **per-query-local**: an attribute of a class whose every
  instantiation site is itself inside the concurrent closure — a fresh
  instance per call cannot race.

Construction-phase methods (``__init__`` and friends) are exempt: an
object under construction has not been published yet.  A write the
rule cannot prove safe but a human can (e.g. a single-writer pattern
documented at the site) is waived in place with a justification::

    self._hits += 1  # repro-lint: disable=RL013 -- guarded by caller
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..engine import Project, Rule, Violation
from .rl002_shared_state import (
    _LOCK_FACTORIES,
    _THREAD_SAFE_FACTORIES,
    _WriteCollector,
    _self_attr,
)

if TYPE_CHECKING:
    from ..semantics import ClassSymbol, FunctionSymbol, SemanticGraph

__all__ = ["LockDisciplineRule"]

#: Entry-point kinds whose closure runs under concurrency.
_CONCURRENT_KINDS = ("query", "executor", "worker")

#: Methods that run before the instance is published to other threads.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__",
     "__set_name__", "__setstate__"}
)


class LockDisciplineRule(Rule):
    code = "RL013"
    title = "concurrent-closure writes must be lock-guarded or local"
    rationale = (
        "thread pools and spawned workers run the whole call-graph "
        "closure of query entry points concurrently; an unguarded "
        "write anywhere in that closure is a data race"
    )

    def check_project(
        self, graph: "SemanticGraph", project: Project
    ) -> Iterator[Violation]:
        closures = {
            kind: graph.reachable_from_entries(kind)
            for kind in _CONCURRENT_KINDS
        }
        combined = frozenset().union(*closures.values())
        callers: dict[str, set[str]] = {}
        for caller, callee in graph.calls.edges:
            callers.setdefault(callee, set()).add(caller)
        attr_classes: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        for key in sorted(combined):
            fn = graph.calls.nodes.get(key)
            if fn is None or fn.node.name in _CONSTRUCTION_METHODS:
                continue
            kinds = ",".join(
                kind for kind in _CONCURRENT_KINDS if key in closures[kind]
            )
            yield from self._check_globals(fn, kinds)
            if fn.owner is not None and not self._construction_only(
                graph, fn, callers
            ):
                yield from self._check_attr_writes(
                    graph, fn, combined, attr_classes, kinds
                )

    # -- module-global writes ------------------------------------------------

    def _check_globals(
        self, fn: "FunctionSymbol", kinds: str
    ) -> Iterator[Violation]:
        declared = {
            name
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        if not declared:
            return
        for node in ast.walk(fn.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    yield self.violation(
                        fn.ctx,
                        target,
                        f"{fn.qualname} writes module global "
                        f"'{target.id}' on a concurrent path (reachable "
                        f"from {kinds} entry points) — use a lock or "
                        "per-query state",
                    )

    # -- attribute writes ----------------------------------------------------

    def _construction_only(
        self,
        graph: "SemanticGraph",
        fn: "FunctionSymbol",
        callers: dict[str, set[str]],
    ) -> bool:
        """True when *fn* is only reached through its class's constructors.

        A helper like ``FeatureStore._adopt`` that every constructor and
        alternate-constructor classmethod funnels through runs on an
        instance that has not been published yet — its writes are
        construction, not sharing.
        """
        sites = callers.get(fn.key)
        if not sites:
            return False
        for caller_key in sites:
            caller = graph.calls.nodes.get(caller_key)
            if (
                caller is None
                or caller.module != fn.module
                or caller.owner != fn.owner
            ):
                return False
            if caller.node.name in _CONSTRUCTION_METHODS:
                continue
            if any(
                isinstance(decorator, ast.Name)
                and decorator.id == "classmethod"
                for decorator in caller.node.decorator_list
            ):
                continue
            return False
        return True

    def _classify_attrs(
        self, graph: "SemanticGraph", cls: "ClassSymbol"
    ) -> tuple[frozenset[str], frozenset[str]]:
        """``(thread-safe attrs, lock attrs)`` across the class MRO.

        Unlike RL002's per-file scan this walks base classes in other
        modules, resolving factory origins through each defining file's
        own import table.
        """
        safe: set[str] = set()
        locks: set[str] = set()
        for owner in graph.symbols.mro(cls):
            for stmt in owner.node.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    origin = owner.ctx.qualified(node.value.func)
                    if origin is None:
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        if origin in _THREAD_SAFE_FACTORIES:
                            safe.add(attr)
                        elif origin in _LOCK_FACTORIES:
                            locks.add(attr)
        return frozenset(safe), frozenset(locks)

    def _is_per_query_local(
        self,
        graph: "SemanticGraph",
        cls: "ClassSymbol",
        closure: frozenset[str],
    ) -> bool:
        """True when every instance of *cls* is built inside the closure.

        A class constructed only by functions that themselves run on
        the concurrent path yields one fresh instance per call — its
        attributes are per-query state, not shared state.
        """
        sites = graph.calls.instantiators_of(cls.key)
        return bool(sites) and all(site in closure for site in sites)

    def _check_attr_writes(
        self,
        graph: "SemanticGraph",
        fn: "FunctionSymbol",
        closure: frozenset[str],
        attr_classes: dict[str, tuple[frozenset[str], frozenset[str]]],
        kinds: str,
    ) -> Iterator[Violation]:
        cls = graph.symbols.class_named(f"{fn.module}:{fn.owner}")
        if cls is None:
            return
        if self._is_per_query_local(graph, cls, closure):
            return
        if cls.key not in attr_classes:
            attr_classes[cls.key] = self._classify_attrs(graph, cls)
        safe, locks = attr_classes[cls.key]
        collector = _WriteCollector(fn.ctx, safe, locks)
        for stmt in fn.node.body:
            collector.visit(stmt)
        for target, root in collector.writes:
            yield self.violation(
                fn.ctx,
                target,
                f"{fn.qualname} writes shared attribute 'self.{root}' "
                f"on a concurrent path (reachable from {kinds} entry "
                "points) without a lock, threading.local/contextvars "
                "protection, or per-query-local construction",
            )
