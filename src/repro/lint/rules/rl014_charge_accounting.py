"""RL014 — every charged metric is accounted for by tests or baselines.

A metric charged in ``src/`` that nothing ever asserts on is
observability rot: it costs a dict update per query and drifts
silently when a refactor renames a layer.  This rule collects every
charge site in the project's ``src/`` tree — ``.count()`` /
``.observe()`` / ``.set_gauge()`` on registry-shaped receivers plus the
ambient :mod:`repro.obs.metrics` helpers, the same surface RL005
validates — and requires each charged name to *resolve* into at least
one accounting artifact:

* a parity/regression suite under ``tests/`` referencing the name,
* a bench baseline (``BENCH_*.json`` at the repo root or
  ``benchmarks/_baselines/*.json``), or
* the ``tests/obs/charge_manifest.py`` literal manifest
  (``CHARGE_ACCOUNTING_REGISTRY``), whose entries are themselves
  checked for liveness like RL001's.

F-string charges are matched by skeleton: each formatted value becomes
a one-segment wildcard, so ``f"cascade.{tier}.pruned"`` is accounted by
any artifact mentioning ``cascade.lb_kim.pruned``.

The only exemption is the ``.seconds`` convention: a name whose final
segment is exactly ``seconds`` is a wall-time series, excluded from
parity suites by design (DESIGN.md §9) — and nothing *else* is
excluded, so a timing-ish name spelled any other way must be accounted
or renamed.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from ..engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    load_literal_dict_manifest,
    manifest_entry_problem,
)
from .rl005_metric_names import _receiver_name

if TYPE_CHECKING:
    from ..semantics import SemanticGraph

__all__ = ["ChargeAccountingRule"]

#: Registry methods that charge a series (creation helpers are not
#: charges; an instrument built but never charged shows up as RL007
#: dead code instead).
_CHARGE_METHODS = frozenset({"count", "observe", "set_gauge"})

_RECEIVER_NAMES = frozenset(
    {"registry", "per_query", "metrics", "outer", "sink"}
)

#: Marker for f-string placeholders; ``*`` cannot appear in a metric
#: name, so skeletons never collide with literal text.
_PLACEHOLDER = "*"

#: What one placeholder may stand for inside a name segment.
_WILDCARD = r"[a-z0-9_\-\[\]]+"

_MANIFEST_REL = "tests/obs/charge_manifest.py"
_MANIFEST_VAR = "CHARGE_ACCOUNTING_REGISTRY"


def _charge_skeleton(node: ast.expr) -> str | None:
    """The charged name with formatted values as ``*`` placeholders."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append(_PLACEHOLDER)
            else:
                return None
        return "".join(parts)
    return None


def _skeleton_pattern(skeleton: str) -> re.Pattern[str]:
    """A regex matching every concrete name the skeleton can charge."""
    return re.compile(
        re.escape(skeleton).replace(re.escape(_PLACEHOLDER), _WILDCARD)
    )


def _is_charge_call(ctx: FileContext, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr not in _CHARGE_METHODS:
            return False
        receiver = _receiver_name(func.value)
        return receiver is not None and (
            receiver in _RECEIVER_NAMES
            or receiver.endswith("registry")
            or receiver.endswith("metrics")
        )
    if isinstance(func, ast.Name) and func.id in _CHARGE_METHODS:
        origin = ctx.imports.get(func.id, "")
        return origin.endswith(f"obs.metrics.{func.id}") or origin.endswith(
            f"obs.{func.id}"
        )
    return False


class ChargeAccountingRule(Rule):
    code = "RL014"
    title = "charged metrics must resolve to a test, baseline or manifest"
    rationale = (
        "a metric nothing asserts on drifts silently; every charge "
        "must be pinned by a parity suite, bench baseline, or the "
        "charge manifest (DESIGN.md par.9)"
    )

    def check_project(
        self, graph: "SemanticGraph", project: Project
    ) -> Iterator[Violation]:
        corpus = self._accounting_corpus(project.root)
        registry, _error = load_literal_dict_manifest(
            project.root, _MANIFEST_REL, _MANIFEST_VAR
        )
        for ctx in project.files:
            if not ctx.rel.startswith("src/"):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if not _is_charge_call(ctx, node):
                    continue
                skeleton = _charge_skeleton(node.args[0])
                if skeleton is None:
                    continue
                if skeleton.rsplit(".", 1)[-1] == "seconds":
                    continue  # the one sanctioned parity exclusion
                if self._accounted(skeleton, corpus, registry, project.root):
                    continue
                display = skeleton.replace(_PLACEHOLDER, "{...}")
                yield self.violation(
                    ctx,
                    node.args[0],
                    f"charged metric {display!r} resolves to no parity "
                    "suite under tests/, no bench baseline "
                    "(BENCH_*.json, benchmarks/_baselines/) and no "
                    f"{_MANIFEST_REL} entry; account for it or use the "
                    "'.seconds' timing convention",
                )

    # -- accounting corpus ---------------------------------------------------

    def _accounting_corpus(self, root: Path) -> list[tuple[str, str]]:
        """``(rel path, text)`` of every accounting artifact, sorted."""
        paths: list[Path] = []
        tests = root / "tests"
        if tests.is_dir():
            paths.extend(sorted(tests.rglob("*.py")))
        paths.extend(sorted(root.glob("BENCH_*.json")))
        baselines = root / "benchmarks" / "_baselines"
        if baselines.is_dir():
            paths.extend(sorted(baselines.glob("*.json")))
        corpus: list[tuple[str, str]] = []
        for path in paths:
            try:
                corpus.append(
                    (path.relative_to(root).as_posix(), path.read_text())
                )
            except (OSError, UnicodeDecodeError):
                continue
        return corpus

    def _accounted(
        self,
        skeleton: str,
        corpus: list[tuple[str, str]],
        registry: dict[str, str] | None,
        root: Path,
    ) -> bool:
        pattern = _skeleton_pattern(skeleton)
        if any(pattern.search(text) for _rel, text in corpus):
            return True
        if registry is not None:
            for name in registry:
                if pattern.fullmatch(name) is None:
                    continue
                if (
                    manifest_entry_problem(root, registry, name, _MANIFEST_REL)
                    is None
                ):
                    return True
        return False
