"""The ``repro lint`` rule pack — one module per rule.

========  ==============================================================
RL001     every lower bound is in the no-false-dismissal test registry
RL002     shared mutable state on the query path is lock/thread guarded
RL003     no wall clock or unseeded randomness inside ``src/repro``
RL004     only :class:`~repro.exceptions.ReproError` subclasses raised
RL005     metric names follow the ``layer.noun`` grammar (DESIGN.md §9)
RL006     hot-path modules do not allocate inside per-cell loops
RL007     no dead public exports (``__all__`` referenced nowhere)
RL008     benchmark workload specs are explicitly seeded
RL009     every DTW kernel is in the kernel-parity test registry
RL010     process-worker functions avoid module-level mutable state
RL011     every sequence store is in the store-parity test registry
RL012     every QueryRecord field is in the query-log schema manifest
RL013     concurrent-closure writes are lock-guarded or per-query-local
RL014     charged metrics resolve to a test, bench baseline or manifest
RL015     public API raise-sets are ReproError-only, closed over calls
RL016     cascade tiers are reachable from run() and NFD-covered
========  ==============================================================

RL013-RL016 are whole-program rules: they opt into the engine's
``check_project`` hook and share one :mod:`~repro.lint.semantics`
graph per run.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...exceptions import ValidationError
from ..engine import Rule
from .rl001_nfd_registry import NfdRegistryRule
from .rl002_shared_state import SharedStateRule
from .rl003_determinism import DeterminismRule
from .rl004_exceptions import ExceptionDomainRule
from .rl005_metric_names import MetricNameRule
from .rl006_hot_loops import HotLoopAllocationRule
from .rl007_dead_exports import DeadExportRule
from .rl008_bench_seeds import BenchSeedRule
from .rl009_kernel_manifest import KernelManifestRule
from .rl010_spawn_safety import SpawnSafetyRule
from .rl011_store_manifest import StoreManifestRule
from .rl012_querylog_schema import QuerylogSchemaRule
from .rl013_lock_discipline import LockDisciplineRule
from .rl014_charge_accounting import ChargeAccountingRule
from .rl015_exception_contract import ExceptionContractRule
from .rl016_exactness_reachability import ExactnessReachabilityRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "make_rules",
    "NfdRegistryRule",
    "SharedStateRule",
    "DeterminismRule",
    "ExceptionDomainRule",
    "MetricNameRule",
    "HotLoopAllocationRule",
    "DeadExportRule",
    "BenchSeedRule",
    "KernelManifestRule",
    "SpawnSafetyRule",
    "StoreManifestRule",
    "QuerylogSchemaRule",
    "LockDisciplineRule",
    "ChargeAccountingRule",
    "ExceptionContractRule",
    "ExactnessReachabilityRule",
]

#: Every rule class, in code order.
ALL_RULES: tuple[type[Rule], ...] = (
    NfdRegistryRule,
    SharedStateRule,
    DeterminismRule,
    ExceptionDomainRule,
    MetricNameRule,
    HotLoopAllocationRule,
    DeadExportRule,
    BenchSeedRule,
    KernelManifestRule,
    SpawnSafetyRule,
    StoreManifestRule,
    QuerylogSchemaRule,
    LockDisciplineRule,
    ChargeAccountingRule,
    ExceptionContractRule,
    ExactnessReachabilityRule,
)

RULES_BY_CODE: dict[str, type[Rule]] = {rule.code: rule for rule in ALL_RULES}


def make_rules(codes: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    if codes is None:
        return [rule() for rule in ALL_RULES]
    selected: list[Rule] = []
    seen: set[str] = set()
    for raw in codes:
        code = raw.strip().upper()
        if not code or code in seen:
            continue
        rule = RULES_BY_CODE.get(code)
        if rule is None:
            known = ", ".join(sorted(RULES_BY_CODE))
            raise ValidationError(f"unknown lint rule {raw!r} (known: {known})")
        seen.add(code)
        selected.append(rule())
    if not selected:
        raise ValidationError("no lint rules selected")
    return selected
