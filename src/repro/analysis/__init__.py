"""Analysis utilities on top of the similarity-search core.

The paper motivates similarity search as a data-mining primitive; this
package provides the mining operations users actually run on top of it:

* :mod:`repro.analysis.selfjoin` — the ε-similarity self-join (all
  pairs within tolerance) with index-accelerated pruning, and the
  similarity graph it induces.
* :mod:`repro.analysis.clustering` — clustering over the similarity
  graph (connected components) with medoid extraction.
* :mod:`repro.analysis.calibrate` — tolerance calibration: suggest an
  ε that yields a target result selectivity, from a sample of
  lower-bound and true distances.
"""

from .calibrate import DistanceProfile, suggest_epsilon
from .classify import NearestNeighborClassifier, Prediction
from .clustering import SimilarityClustering, cluster_by_similarity
from .selfjoin import SimilarityPair, similarity_graph, similarity_self_join

__all__ = [
    "DistanceProfile",
    "suggest_epsilon",
    "NearestNeighborClassifier",
    "Prediction",
    "SimilarityClustering",
    "cluster_by_similarity",
    "SimilarityPair",
    "similarity_graph",
    "similarity_self_join",
]
