"""Clustering sequences by time-warping similarity.

Builds the ε-similarity graph (index-pruned self-join) and groups its
connected components — the classic density-free clustering for "which
stocks traded alike" questions.  Each cluster exposes a *medoid*: the
member minimizing the sum of exact DTW distances to the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence

from ..distance.dtw import dtw_max
from ..exceptions import ValidationError
from ..types import SequenceLike, as_array
from .selfjoin import similarity_graph

__all__ = ["SimilarityClustering", "cluster_by_similarity"]


@dataclass(frozen=True)
class SimilarityClustering:
    """Result of :func:`cluster_by_similarity`.

    Attributes
    ----------
    clusters:
        Member index lists, largest cluster first (ties by smallest
        member); singletons included.
    epsilon:
        The tolerance the similarity graph was built with.
    """

    clusters: list[list[int]]
    epsilon: float

    @property
    def n_clusters(self) -> int:
        """Number of clusters (singletons included)."""
        return len(self.clusters)

    def cluster_of(self, index: int) -> int:
        """Position of the cluster containing *index*."""
        for c, members in enumerate(self.clusters):
            if index in members:
                return c
        raise ValidationError(f"index {index} was not clustered")

    def non_trivial(self) -> list[list[int]]:
        """Only the clusters with at least two members."""
        return [c for c in self.clusters if len(c) > 1]


def cluster_by_similarity(
    sequences: TypingSequence[SequenceLike],
    epsilon: float,
    *,
    page_size: int = 1024,
) -> SimilarityClustering:
    """Connected components of the ε-similarity graph."""
    adjacency = similarity_graph(sequences, epsilon, page_size=page_size)
    seen: set[int] = set()
    clusters: list[list[int]] = []
    for start in range(len(sequences)):
        if start in seen:
            continue
        component: list[int] = []
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        clusters.append(sorted(component))
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return SimilarityClustering(clusters=clusters, epsilon=epsilon)


def medoid(
    sequences: TypingSequence[SequenceLike], members: TypingSequence[int]
) -> int:
    """The member minimizing total DTW distance to the other members."""
    if not members:
        raise ValidationError("medoid requires a non-empty member list")
    if len(members) == 1:
        return members[0]
    arrays = {i: as_array(sequences[i], allow_empty=False) for i in members}
    best_index = members[0]
    best_total = float("inf")
    for i in members:
        total = sum(dtw_max(arrays[i], arrays[j]) for j in members if j != i)
        if total < best_total:
            best_total = total
            best_index = i
    return best_index
