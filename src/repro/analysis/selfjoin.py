"""ε-similarity self-join under time warping.

Finds every pair of sequences whose Definition-2 time-warping distance
is within a tolerance.  A naive join evaluates ``O(n^2)`` DTWs; here
each sequence's feature vector range-queries the same 4-d R-tree the
paper's search uses, so only pairs surviving ``D_tw-lb`` pay for
verification — the self-join inherits the paper's no-false-dismissal
guarantee (Theorem 1 applied pairwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence

import numpy as np

from ..core.features import extract_feature
from ..core.lower_bound import feature_rect
from ..distance.dtw import dtw_max_early_abandon
from ..exceptions import ValidationError
from ..index.rtree.bulk import STRBulkLoader
from ..types import SequenceLike, as_array

__all__ = ["SimilarityPair", "similarity_self_join", "similarity_graph"]


@dataclass(frozen=True, order=True)
class SimilarityPair:
    """One qualifying pair of the self-join (``left < right``)."""

    left: int
    right: int
    distance: float


def similarity_self_join(
    sequences: TypingSequence[SequenceLike],
    epsilon: float,
    *,
    page_size: int = 1024,
) -> list[SimilarityPair]:
    """All pairs ``(i, j), i < j`` with ``D_tw(S_i, S_j) <= epsilon``.

    Returns pairs sorted by ``(left, right)``; each carries its exact
    distance.  Raises for an empty input or negative tolerance.
    """
    if not sequences:
        raise ValidationError("self-join requires at least one sequence")
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    arrays = [as_array(seq, allow_empty=False) for seq in sequences]
    features = [extract_feature(arr) for arr in arrays]

    loader = STRBulkLoader(4, page_size=page_size)
    for i, feature in enumerate(features):
        loader.add(feature.as_tuple(), i)
    tree = loader.build()

    pairs: list[SimilarityPair] = []
    for i, feature in enumerate(features):
        rect = feature_rect(feature, epsilon)
        for j in tree.range_search(rect):
            if j <= i:
                continue  # each unordered pair once
            distance = dtw_max_early_abandon(arrays[i], arrays[j], epsilon)
            if distance <= epsilon:
                pairs.append(SimilarityPair(i, j, distance))
    pairs.sort()
    return pairs


def similarity_graph(
    sequences: TypingSequence[SequenceLike],
    epsilon: float,
    *,
    page_size: int = 1024,
) -> dict[int, set[int]]:
    """Adjacency sets of the ε-similarity graph over *sequences*.

    Every index appears as a key (isolated sequences map to an empty
    set), so downstream algorithms can iterate the node set directly.
    """
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(sequences))}
    for pair in similarity_self_join(sequences, epsilon, page_size=page_size):
        adjacency[pair.left].add(pair.right)
        adjacency[pair.right].add(pair.left)
    return adjacency
