"""Tolerance calibration: what ε yields the result size I want?

The paper observes that "most users are interested in just a few
answers" but gives no guidance for picking ε.  This module samples
query/sequence pairs the way the paper's workload does, profiles the
resulting distance distribution, and inverts it: given a target
selectivity (expected fraction of the database in the answer set),
suggest the tolerance.

The exact distance is profiled on a bounded sample; the cheap
``D_tw-lb`` is profiled on all sampled pairs, giving a bracketing
estimate (since ``D_tw-lb <= D_tw``, its quantile curve can only make
the suggestion conservative when used as a fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence

import numpy as np

from ..core.lower_bound import dtw_lb
from ..distance.dtw import dtw_max
from ..exceptions import ValidationError
from ..types import SequenceLike, as_array

__all__ = ["DistanceProfile", "suggest_epsilon"]


@dataclass(frozen=True)
class DistanceProfile:
    """Sampled distance distribution between random database pairs.

    Attributes
    ----------
    true_distances:
        Sorted exact ``D_tw`` samples.
    lower_bounds:
        Sorted ``D_tw-lb`` samples over the same pairs.
    """

    true_distances: np.ndarray
    lower_bounds: np.ndarray

    def quantile(self, q: float) -> float:
        """The *q*-quantile of the true-distance sample."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.true_distances, q))

    def selectivity_at(self, epsilon: float) -> float:
        """Estimated fraction of pairs within *epsilon*."""
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        return float((self.true_distances <= epsilon).mean())

    def filtering_power_at(self, epsilon: float) -> float:
        """Estimated fraction of pairs the index prunes at *epsilon*.

        ``1 - P(D_tw-lb <= eps)``: how much of the database a range
        query avoids touching.
        """
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        return float((self.lower_bounds > epsilon).mean())


def profile_distances(
    sequences: TypingSequence[SequenceLike],
    *,
    n_pairs: int = 500,
    seed: int = 0,
) -> DistanceProfile:
    """Sample random pairs and profile their distances."""
    if len(sequences) < 2:
        raise ValidationError("profiling requires at least two sequences")
    if n_pairs < 1:
        raise ValidationError(f"n_pairs must be >= 1, got {n_pairs}")
    rng = np.random.default_rng(seed)
    arrays = [as_array(seq, allow_empty=False) for seq in sequences]
    true_distances = np.empty(n_pairs)
    lower_bounds = np.empty(n_pairs)
    n = len(arrays)
    for k in range(n_pairs):
        i = int(rng.integers(n))
        j = int(rng.integers(n - 1))
        if j >= i:
            j += 1
        true_distances[k] = dtw_max(arrays[i], arrays[j])
        lower_bounds[k] = dtw_lb(arrays[i], arrays[j])
    true_distances.sort()
    lower_bounds.sort()
    return DistanceProfile(
        true_distances=true_distances, lower_bounds=lower_bounds
    )


def suggest_epsilon(
    sequences: TypingSequence[SequenceLike],
    target_selectivity: float,
    *,
    n_pairs: int = 500,
    seed: int = 0,
) -> float:
    """Suggest an ε whose expected answer fraction is *target_selectivity*.

    E.g. ``target_selectivity=0.01`` aims for ~1% of the database per
    query — the regime the paper's experiments inhabit.
    """
    if not 0.0 < target_selectivity <= 1.0:
        raise ValidationError(
            f"target_selectivity must be in (0, 1], got {target_selectivity}"
        )
    profile = profile_distances(sequences, n_pairs=n_pairs, seed=seed)
    return profile.quantile(target_selectivity)
