"""1-nearest-neighbour classification under time warping.

The classic downstream consumer of a fast DTW stack: label a sequence
by its nearest labelled example.  The classifier prunes with the
paper's lower bound exactly the way the search does — candidates are
visited in ascending ``D_tw-lb`` order and evaluation stops once the
bound exceeds the best true distance found — so most training examples
never pay for a DTW evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TypingSequence

import numpy as np

from ..core.features import extract_feature
from ..core.lower_bound import dtw_lb_features
from ..distance.dtw import dtw_max
from ..exceptions import ValidationError
from ..types import SequenceLike, as_array

__all__ = ["NearestNeighborClassifier", "Prediction"]


@dataclass(frozen=True)
class Prediction:
    """Outcome of one classification.

    Attributes
    ----------
    label:
        The predicted class (the nearest example's label).
    neighbor_index:
        Index of the nearest training example.
    distance:
        Its time-warping distance to the query.
    dtw_evaluations:
        Full DTW computations spent (vs ``len(training set)`` for an
        unpruned 1-NN) — the pruning-power metric.
    """

    label: str
    neighbor_index: int
    distance: float
    dtw_evaluations: int


class NearestNeighborClassifier:
    """DTW 1-NN with lower-bound pruning.

    Parameters
    ----------
    sequences:
        Training examples.
    labels:
        One class label per training example.
    """

    def __init__(
        self,
        sequences: TypingSequence[SequenceLike],
        labels: TypingSequence[str],
    ) -> None:
        if not sequences:
            raise ValidationError("classifier requires training examples")
        if len(sequences) != len(labels):
            raise ValidationError(
                f"{len(sequences)} sequences but {len(labels)} labels"
            )
        self._arrays = [as_array(seq, allow_empty=False) for seq in sequences]
        self._labels = [str(label) for label in labels]
        self._features = [extract_feature(arr) for arr in self._arrays]

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def classes(self) -> list[str]:
        """Distinct class labels, sorted."""
        return sorted(set(self._labels))

    def predict(self, query: SequenceLike) -> Prediction:
        """Classify *query* by its nearest training example under DTW."""
        q = as_array(query, allow_empty=False)
        q_feature = extract_feature(q)
        # Visit candidates in ascending lower-bound order.
        order = sorted(
            range(len(self._arrays)),
            key=lambda i: dtw_lb_features(self._features[i], q_feature),
        )
        best_distance = np.inf
        best_index = order[0]
        evaluations = 0
        for i in order:
            bound = dtw_lb_features(self._features[i], q_feature)
            if bound >= best_distance:
                break  # no later candidate can beat the incumbent
            evaluations += 1
            distance = dtw_max(self._arrays[i], q)
            if distance < best_distance:
                best_distance = distance
                best_index = i
        return Prediction(
            label=self._labels[best_index],
            neighbor_index=best_index,
            distance=float(best_distance),
            dtw_evaluations=evaluations,
        )

    def predict_many(
        self, queries: TypingSequence[SequenceLike]
    ) -> list[Prediction]:
        """Classify several queries."""
        return [self.predict(q) for q in queries]

    def score(
        self,
        queries: TypingSequence[SequenceLike],
        true_labels: TypingSequence[str],
    ) -> float:
        """Accuracy over a labelled test set."""
        if len(queries) != len(true_labels):
            raise ValidationError(
                f"{len(queries)} queries but {len(true_labels)} labels"
            )
        if not queries:
            raise ValidationError("score requires at least one query")
        hits = sum(
            self.predict(q).label == str(t)
            for q, t in zip(queries, true_labels)
        )
        return hits / len(queries)
