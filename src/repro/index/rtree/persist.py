"""R-tree persistence: serialize a tree to pages, reload it later.

The index a production system builds over a large sequence database
must survive restarts.  The format mirrors the cost model: one node per
``page_size`` block, entries laid out exactly as the fan-out derivation
assumes (``2 * ndim`` float64 bounds + one 8-byte pointer per entry),
so a saved file's size equals ``node_count * page_size`` — the quantity
the paper compares against the database size ("less than 4%").

Layout::

    header page:  magic, version, ndim, page_size, min/max entries,
                  node count, root page id, entry count
    node pages:   level (u32), entry count (u32), then per entry
                  ndim lows (f64), ndim highs (f64), pointer (u64) —
                  child page id for internal entries, record id for
                  leaf entries.

Nodes are numbered in depth-first order with the root last, so children
always precede their parents and loading is a single forward pass.
"""

from __future__ import annotations

import struct
from pathlib import Path

from ...exceptions import PageOverflowError, StorageError, ValidationError
from .geometry import Rect
from .node import Entry, Node
from .rtree import RTree

__all__ = ["save_rtree", "load_rtree"]

_MAGIC = b"RPRT"
_VERSION = 2
_HEADER = struct.Struct("<4sIIIIIQQQ")
_NODE_HEADER = struct.Struct("<II")


def save_rtree(tree: RTree, path: str | Path) -> int:
    """Write *tree* to *path*; returns the number of bytes written."""
    page_size = tree.page_size if tree.page_size else 1024
    ndim = tree.ndim
    entry_struct = struct.Struct(f"<{2 * ndim}dQ")
    if _NODE_HEADER.size + tree.max_entries * entry_struct.size > page_size:
        raise ValidationError(
            "tree fan-out does not fit its own page size; cannot persist"
        )

    # Assign page ids in post-order (children before parents).
    pages: list[Node] = []
    page_of: dict[int, int] = {}

    def assign(node: Node) -> None:
        for entry in node.entries:
            if entry.child is not None:
                assign(entry.child)
        page_of[id(node)] = len(pages)
        pages.append(node)

    assign(tree._root)

    blob = bytearray()
    blob += _HEADER.pack(
        _MAGIC,
        _VERSION,
        ndim,
        page_size,
        tree.min_entries,
        tree.max_entries,
        len(pages),
        page_of[id(tree._root)],
        len(tree),
    )
    blob += b"\x00" * (page_size - len(blob))

    for node in pages:
        page = bytearray()
        page += _NODE_HEADER.pack(node.level, len(node.entries))
        for entry in node.entries:
            pointer = (
                page_of[id(entry.child)]
                if entry.child is not None
                else int(entry.record)  # type: ignore[arg-type]
            )
            page += entry_struct.pack(
                *entry.rect.lows, *entry.rect.highs, pointer
            )
        if len(page) > page_size:
            raise PageOverflowError("node serialization overflowed its page")
        page += b"\x00" * (page_size - len(page))
        blob += page

    path = Path(path)
    with open(path, "wb") as f:
        f.write(bytes(blob))
    return len(blob)


def load_rtree(path: str | Path) -> RTree:
    """Reload a tree written by :func:`save_rtree`."""
    path = Path(path)
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < _HEADER.size:
        raise StorageError(f"{path} is not an R-tree file (too small)")
    (
        magic,
        version,
        ndim,
        page_size,
        min_entries,
        max_entries,
        node_count,
        root_page,
        entry_count,
    ) = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise StorageError(f"{path} is not an R-tree file (bad magic)")
    if version != _VERSION:
        raise StorageError(f"unsupported R-tree file version {version}")
    expected = page_size * (1 + node_count)
    if len(data) != expected:
        raise StorageError(
            f"corrupt R-tree file: {len(data)} bytes, expected {expected}"
        )

    entry_struct = struct.Struct(f"<{2 * ndim}dQ")
    nodes: list[Node] = []
    raw_entries: list[list[tuple[Rect, int]]] = []
    for page_no in range(node_count):
        base = page_size * (1 + page_no)
        level, n_entries = _NODE_HEADER.unpack_from(data, base)
        node = Node(level=level)
        entries: list[tuple[Rect, int]] = []
        offset = base + _NODE_HEADER.size
        for _ in range(n_entries):
            values = entry_struct.unpack_from(data, offset)
            offset += entry_struct.size
            rect = Rect(values[:ndim], values[ndim : 2 * ndim])
            entries.append((rect, int(values[-1])))
        nodes.append(node)
        raw_entries.append(entries)

    # Children precede parents, so a forward pass can wire pointers.
    for node, entries in zip(nodes, raw_entries):
        for rect, pointer in entries:
            if node.is_leaf:
                node.add(Entry(rect=rect, record=pointer))
            else:
                if pointer >= len(nodes):
                    raise StorageError("corrupt R-tree file: bad child pointer")
                node.add(Entry(rect=rect, child=nodes[pointer]))

    tree = RTree(
        ndim,
        page_size=None,
        min_entries=min_entries,
        max_entries=max_entries,
    )
    tree._page_size = page_size
    tree._adopt(nodes[root_page], entry_count)
    return tree
