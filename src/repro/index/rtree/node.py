"""R-tree node and entry layout, with page-size-derived fan-out.

The paper sets the R-tree page size to 1 KB.  To make node accesses
meaningful as page reads, the fan-out is derived from a physical entry
layout: each entry stores ``2 * ndim`` float64 bounds plus an 8-byte
child pointer / record id, and each node carries a small fixed header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ...exceptions import ValidationError
from .geometry import Rect

__all__ = ["Entry", "Node", "fanout_for_page_size", "NODE_HEADER_BYTES"]

#: Bytes reserved per node for (level, entry count, page id).
NODE_HEADER_BYTES = 16

#: Bytes per coordinate bound (float64).
_BOUND_BYTES = 8

#: Bytes per child pointer or record identifier.
_POINTER_BYTES = 8


def fanout_for_page_size(page_size: int, ndim: int) -> tuple[int, int]:
    """``(min_entries, max_entries)`` for a node stored in one page.

    ``max_entries`` is how many ``(rect, pointer)`` entries fit after the
    header; ``min_entries`` is Guttman's 40% fill factor (at least 2).
    Raises :class:`ValidationError` if the page cannot hold 3 entries —
    below that an R-tree degenerates.
    """
    if page_size <= 0:
        raise ValidationError(f"page_size must be positive, got {page_size}")
    if ndim <= 0:
        raise ValidationError(f"ndim must be positive, got {ndim}")
    entry_bytes = 2 * ndim * _BOUND_BYTES + _POINTER_BYTES
    max_entries = (page_size - NODE_HEADER_BYTES) // entry_bytes
    if max_entries < 3:
        raise ValidationError(
            f"page size {page_size} holds only {max_entries} entries of "
            f"dimension {ndim}; need at least 3"
        )
    min_entries = max(2, int(max_entries * 0.4))
    return min_entries, int(max_entries)


@dataclass
class Entry:
    """One slot of a node: an MBR plus either a child node or a record id.

    Leaf entries carry ``record`` (an opaque application identifier —
    TW-Sim-Search stores the sequence id); internal entries carry
    ``child``.
    """

    rect: Rect
    child: Optional["Node"] = None
    record: Union[int, None] = None

    def __post_init__(self) -> None:
        if (self.child is None) == (self.record is None):
            raise ValidationError(
                "entry must reference exactly one of child node or record id"
            )

    @property
    def is_leaf_entry(self) -> bool:
        """True when this entry points at a data record."""
        return self.record is not None


class Node:
    """An R-tree node: a page-sized bucket of :class:`Entry` objects.

    ``level`` is 0 for leaves and grows towards the root, matching the
    R-tree invariant that all leaves are at the same depth.
    """

    __slots__ = ("level", "entries", "parent", "capacity_pages")

    def __init__(self, level: int = 0) -> None:
        if level < 0:
            raise ValidationError(f"level must be non-negative, got {level}")
        self.level = level
        self.entries: list[Entry] = []
        self.parent: Optional["Node"] = None
        #: Pages this node occupies; > 1 only for X-tree supernodes.
        self.capacity_pages = 1

    @property
    def is_leaf(self) -> bool:
        """True when the node holds data entries."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries."""
        if not self.entries:
            raise ValidationError("empty node has no MBR")
        return Rect.union_of(e.rect for e in self.entries)

    def add(self, entry: Entry) -> None:
        """Append *entry*, wiring the parent pointer of a child node."""
        if entry.child is not None:
            entry.child.parent = self
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node({kind}, {len(self.entries)} entries)"
