"""The R*-tree (Beckmann et al., SIGMOD 1990).

The paper lists the R*-tree among the indexes its method can use
("any multi-dimensional indexes such as the R-tree, R+-tree, R*-tree,
and X-tree").  This module implements the R*-tree's two insertion-time
improvements over Guttman's R-tree:

* **ChooseSubtree** — at the level just above the leaves, descend into
  the child whose MBR needs the least *overlap* enlargement (ties:
  least volume enlargement, then least volume); higher levels use the
  classic least-volume-enlargement rule.
* **Forced reinsertion** — the first time a node at a given level
  overflows during an insertion, instead of splitting, the ~30% of its
  entries farthest from the node's MBR center are removed and
  re-inserted, giving the tree a chance to re-organize.  Subsequent
  overflows at that level split with the margin-driven R* split.

Deletion and queries are inherited unchanged from :class:`RTree`.
"""

from __future__ import annotations

import math
from typing import Sequence as TypingSequence

from ...exceptions import IndexCorruptionError, ValidationError
from .geometry import Rect
from .node import Entry, Node
from .rtree import RTree, SplitStrategy

__all__ = ["RStarTree"]


class RStarTree(RTree):
    """An R-tree with R* insertion heuristics.

    Parameters
    ----------
    ndim, page_size, min_entries, max_entries:
        As for :class:`RTree`.
    reinsert_fraction:
        Fraction of a node's entries removed on the first overflow at
        each level (the R* paper recommends 0.3).
    """

    def __init__(
        self,
        ndim: int,
        *,
        page_size: int | None = 1024,
        min_entries: int | None = None,
        max_entries: int | None = None,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(
            ndim,
            page_size=page_size,
            min_entries=min_entries,
            max_entries=max_entries,
            split=SplitStrategy.RSTAR,
        )
        if not 0.0 < reinsert_fraction < 0.5:
            raise ValidationError(
                f"reinsert_fraction must be in (0, 0.5), got {reinsert_fraction}"
            )
        self._reinsert_fraction = reinsert_fraction
        # Levels that already had their once-per-insertion reinsertion.
        self._ot_levels: set[int] = set()

    # -- insertion ----------------------------------------------------------

    def insert(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Insert with R* overflow treatment (reinsert once per level)."""
        self._ot_levels = set()
        super().insert(rect, record)

    def delete(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Delete; condensation reinsertions use split-only treatment."""
        self._ot_levels = {level for level in range(self._root.level + 1)}
        super().delete(rect, record)

    def _choose_leaf(self, node: Node, rect: Rect, target_level: int) -> Node:
        """R* ChooseSubtree."""
        while node.level > target_level:
            if node.level == 1:
                best = self._least_overlap_child(node, rect)
            else:
                best = self._least_enlargement_child(node, rect)
            if best.child is None:
                raise IndexCorruptionError("internal node with no children")
            node = best.child
        return node

    def _least_enlargement_child(self, node: Node, rect: Rect) -> Entry:
        best: Entry | None = None
        best_key = (math.inf, math.inf)
        for entry in node.entries:
            key = (entry.rect.enlargement(rect), entry.rect.volume())
            if key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def _least_overlap_child(self, node: Node, rect: Rect) -> Entry:
        """Least overlap enlargement; ties by volume enlargement, volume."""
        best: Entry | None = None
        best_key = (math.inf, math.inf, math.inf)
        for entry in node.entries:
            enlarged = entry.rect.union(rect)
            overlap_before = sum(
                entry.rect.overlap(other.rect)
                for other in node.entries
                if other is not entry
            )
            overlap_after = sum(
                enlarged.overlap(other.rect)
                for other in node.entries
                if other is not entry
            )
            key = (
                overlap_after - overlap_before,
                entry.rect.enlargement(rect),
                entry.rect.volume(),
            )
            if key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def _handle_overflow(self, node: Node) -> None:
        """R* OverflowTreatment: reinsert once per level, then split."""
        while True:
            if len(node.entries) <= self._max_entries:
                self._adjust_upward(node)
                return
            can_reinsert = (
                node.parent is not None and node.level not in self._ot_levels
            )
            if can_reinsert:
                self._ot_levels.add(node.level)
                self._forced_reinsert(node)
                return
            # Split (the base implementation handles propagation); it
            # may overflow the parent, which loops here again.
            self._split_once(node)
            parent = node.parent
            if parent is None:
                return
            node = parent

    def _split_once(self, node: Node) -> None:
        """One split step of the base algorithm (no overflow loop)."""
        group_a, group_b = self._split.function(
            list(node.entries), self._min_entries, self._max_entries
        )
        node.entries = group_a
        for entry in group_a:
            if entry.child is not None:
                entry.child.parent = node
        sibling = Node(level=node.level)
        for entry in group_b:
            sibling.add(entry)
        parent = node.parent
        if parent is None:
            new_root = Node(level=node.level + 1)
            new_root.add(Entry(rect=node.mbr(), child=node))
            new_root.add(Entry(rect=sibling.mbr(), child=sibling))
            self._root = new_root
            return
        self._refresh_parent_entry(parent, node)
        parent.add(Entry(rect=sibling.mbr(), child=sibling))

    def _forced_reinsert(self, node: Node) -> None:
        """Remove the farthest entries from the node and re-insert them."""
        count = max(1, int(len(node.entries) * self._reinsert_fraction))
        center = node.mbr().center
        # Sort by distance of entry center from node center, descending.
        node.entries.sort(
            key=lambda e: _center_distance(e.rect.center, center),
        )
        victims = node.entries[-count:]
        node.entries = node.entries[:-count]
        self._adjust_upward(node)
        level = node.level
        for entry in victims:
            target = self._choose_leaf(self._root, entry.rect, target_level=level)
            if entry.child is not None:
                target.add(entry)
            else:
                target.entries.append(entry)
            self._handle_overflow(target)


def _center_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))
