"""Sort-Tile-Recursive (STR) bulk loading for the R-tree.

The paper (section 4.3.1) notes that when many sequences exist at
initial index-construction time, bulk-loading methods give large build
speedups.  STR (Leutenegger et al., ICDE 1997) is the classic choice:

1. Sort all entries by the center of dimension 0 and cut them into
   vertical "slabs" of roughly equal size.
2. Recurse on the remaining dimensions inside each slab.
3. Pack consecutive runs of ``max_entries`` entries into leaves, then
   repeat the packing one level up until a single root remains.

The resulting tree is fully packed (every node ~100% full), so it is
both smaller and faster to query than a tuple-at-a-time build — the
property the bulk-loading ablation (bench A3) measures.
"""

from __future__ import annotations

import math
from typing import Sequence as TypingSequence

from ...exceptions import ValidationError
from .geometry import Rect
from .node import Entry, Node
from .rtree import RTree

__all__ = ["str_pack", "STRBulkLoader"]


def _tile(entries: list[Entry], dim: int, node_capacity: int, ndim: int) -> list[Entry]:
    """Recursively order entries by STR tiling starting at dimension *dim*."""
    if dim >= ndim - 1 or len(entries) <= node_capacity:
        entries.sort(key=lambda e: e.rect.center[min(dim, ndim - 1)])
        return entries
    entries.sort(key=lambda e: e.rect.center[dim])
    n = len(entries)
    leaf_pages = math.ceil(n / node_capacity)
    # Number of slabs along this dimension: the (ndim - dim)-th root of
    # the page count, so the tiling is balanced across dimensions.
    slabs = max(1, math.ceil(leaf_pages ** (1.0 / (ndim - dim))))
    slab_size = math.ceil(n / slabs)
    ordered: list[Entry] = []
    for start in range(0, n, slab_size):
        slab = entries[start : start + slab_size]
        ordered.extend(_tile(slab, dim + 1, node_capacity, ndim))
    return ordered


def str_pack(
    points: TypingSequence[TypingSequence[float] | Rect],
    records: TypingSequence[int],
    *,
    ndim: int,
    page_size: int | None = 1024,
    min_entries: int | None = None,
    max_entries: int | None = None,
) -> RTree:
    """Build a fully packed R-tree from ``(point-or-rect, record)`` pairs.

    Convenience wrapper over :class:`STRBulkLoader`.
    """
    loader = STRBulkLoader(
        ndim,
        page_size=page_size,
        min_entries=min_entries,
        max_entries=max_entries,
    )
    for point, record in zip(points, records, strict=True):
        loader.add(point, record)
    return loader.build()


class STRBulkLoader:
    """Accumulates entries and packs them into an R-tree in one pass.

    Usage::

        loader = STRBulkLoader(ndim=4, page_size=1024)
        for feature, seq_id in ...:
            loader.add(feature, seq_id)
        tree = loader.build()
    """

    def __init__(
        self,
        ndim: int,
        *,
        page_size: int | None = 1024,
        min_entries: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        # Delegate fan-out validation to the RTree constructor.
        self._template = RTree(
            ndim,
            page_size=page_size,
            min_entries=min_entries,
            max_entries=max_entries,
        )
        self._ndim = ndim
        self._entries: list[Entry] = []

    def add(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Queue one entry for the build."""
        if not isinstance(rect, Rect):
            rect = Rect.from_point(rect)
        if rect.ndim != self._ndim:
            raise ValidationError(
                f"rectangle has {rect.ndim} dims, loader has {self._ndim}"
            )
        self._entries.append(Entry(rect=rect, record=record))

    def __len__(self) -> int:
        return len(self._entries)

    def build(self) -> RTree:
        """Pack all queued entries and return the finished tree."""
        tree = self._template
        if not self._entries:
            return tree
        capacity = tree.max_entries
        ordered = _tile(list(self._entries), 0, capacity, self._ndim)

        # Pack leaves.
        level_nodes: list[Node] = []
        for start in range(0, len(ordered), capacity):
            node = Node(level=0)
            for entry in ordered[start : start + capacity]:
                node.add(entry)
            level_nodes.append(node)
        _avoid_trailing_underflow(level_nodes, tree.min_entries)

        # Pack upper levels until one node remains.
        level = 0
        while len(level_nodes) > 1:
            level += 1
            parents: list[Node] = []
            for start in range(0, len(level_nodes), capacity):
                parent = Node(level=level)
                for child in level_nodes[start : start + capacity]:
                    parent.add(Entry(rect=child.mbr(), child=child))
                parents.append(parent)
            _avoid_trailing_underflow(parents, tree.min_entries)
            level_nodes = parents

        tree._adopt(level_nodes[0], len(self._entries))
        return tree


def _avoid_trailing_underflow(nodes: list[Node], min_entries: int) -> None:
    """Rebalance the last two nodes of a packed level if the last underflows.

    Full packing can leave a final node with fewer than ``min_entries``
    entries; move entries from its (full) predecessor to restore the
    invariant without violating the predecessor's own minimum.
    """
    if len(nodes) < 2:
        return
    last = nodes[-1]
    if len(last.entries) >= min_entries:
        return
    prev = nodes[-2]
    needed = min_entries - len(last.entries)
    moved = prev.entries[-needed:]
    prev.entries = prev.entries[:-needed]
    for entry in reversed(moved):
        if entry.child is not None:
            entry.child.parent = last
        last.entries.insert(0, entry)
