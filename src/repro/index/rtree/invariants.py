"""Reusable structural invariant checks for the R-tree family.

An independent re-implementation of the invariants — deliberately not
reusing :meth:`~repro.index.rtree.rtree.RTree.validate`, so a bug in the
tree's own bookkeeping cannot mask itself.  Intended for tests: run
:func:`assert_tree_invariants` after any randomized insert / delete /
bulk-load workload.

Checked, for every :class:`~repro.index.rtree.rtree.RTree` subclass
(R-tree, R*-tree, X-tree):

* **MBR containment** — every internal entry's rectangle equals the
  minimum bounding rectangle of its child's entries (the R-tree stores
  *minimum* bounding rectangles, so equality, not mere containment).
* **Fan-out bounds** — every node holds at most ``max_entries``
  (times ``capacity_pages`` for X-tree supernodes) and every non-root
  node at least ``min_entries``; a non-leaf root holds at least 2.
* **Leaf depth uniformity** — all leaves sit at the same depth, and
  every node's ``level`` decreases by exactly one per tree level.
* **Parent pointers** — each child's ``parent`` references the node
  holding its entry.
* **Record count** — the number of leaf records equals ``len(tree)``.

:class:`~repro.index.rtree.rplus.RPlusTree` uses a different node
layout (disjoint regions instead of overlapping MBRs); for it the
helper delegates to the tree's own ``validate()``.
"""

from __future__ import annotations

from .geometry import Rect
from .node import Node
from .rplus import RPlusTree
from .rtree import RTree

__all__ = ["assert_tree_invariants"]


def assert_tree_invariants(tree: RTree | RPlusTree) -> None:
    """Assert every structural invariant of *tree*; raise on violation.

    Raises ``AssertionError`` with a description of the first violated
    invariant.  Safe on empty trees.
    """
    if isinstance(tree, RPlusTree):
        # Disjoint-region layout: the tree's own validator covers region
        # containment/disjointness, which have no MBR analogue here.
        tree.validate()
        return
    assert isinstance(tree, RTree), f"unsupported tree type {type(tree)!r}"
    root = tree._root
    leaf_depths: set[int] = set()
    records = _check_node(tree, root, depth=0, is_root=True, leaf_depths=leaf_depths)
    assert len(leaf_depths) <= 1, f"leaves at multiple depths: {sorted(leaf_depths)}"
    assert records == len(tree), (
        f"leaf record count {records} != tracked size {len(tree)}"
    )


def _check_node(
    tree: RTree,
    node: Node,
    *,
    depth: int,
    is_root: bool,
    leaf_depths: set[int],
) -> int:
    capacity = tree.max_entries * node.capacity_pages
    assert len(node.entries) <= capacity, (
        f"node at depth {depth} overflows: {len(node.entries)} > {capacity}"
    )
    if is_root:
        if not node.is_leaf:
            assert len(node.entries) >= 2, (
                f"non-leaf root holds {len(node.entries)} entries (< 2)"
            )
    else:
        assert len(node.entries) >= tree.min_entries, (
            f"node at depth {depth} underflows: "
            f"{len(node.entries)} < {tree.min_entries}"
        )
    if node.is_leaf:
        leaf_depths.add(depth)
        for entry in node.entries:
            assert entry.is_leaf_entry, "leaf node holds a child entry"
            assert entry.rect.ndim == tree.ndim, (
                f"leaf rect dimensionality {entry.rect.ndim} != tree {tree.ndim}"
            )
        return len(node.entries)
    total = 0
    for entry in node.entries:
        child = entry.child
        assert child is not None, "internal entry without a child node"
        assert not entry.is_leaf_entry, "internal entry carries a record id"
        assert child.parent is node, (
            f"child at depth {depth + 1} has a stale parent pointer"
        )
        assert child.level == node.level - 1, (
            f"child level {child.level} != parent level {node.level} - 1"
        )
        assert child.entries, "internal entry references an empty child"
        mbr = Rect.union_of(e.rect for e in child.entries)
        assert entry.rect == mbr, (
            f"stale MBR at depth {depth}: stored {entry.rect}, actual {mbr}"
        )
        total += _check_node(
            tree, child, depth=depth + 1, is_root=False, leaf_depths=leaf_depths
        )
    return total
