"""The R-tree proper: insertion, deletion, queries, invariants.

A faithful in-memory Guttman R-tree with page-size-derived fan-out and
access accounting.  TW-Sim-Search uses it as a 4-d point index over
feature vectors, but the implementation is fully general: entries may be
proper rectangles, dimensions are arbitrary, and all three classic split
heuristics are available.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Iterable, Iterator, Sequence as TypingSequence

from ...exceptions import (
    EntryNotFoundError,
    IndexCorruptionError,
    ValidationError,
)
from .geometry import Rect
from .node import Entry, Node, fanout_for_page_size
from .split import SplitFunction, linear_split, quadratic_split, rstar_split
from .stats import AccessStats

__all__ = ["RTree", "SplitStrategy"]


class SplitStrategy(enum.Enum):
    """Which node split heuristic the tree uses on overflow."""

    LINEAR = "linear"
    QUADRATIC = "quadratic"
    RSTAR = "rstar"

    @property
    def function(self) -> SplitFunction:
        """The split callable for this strategy."""
        return _SPLIT_FUNCTIONS[self]


_SPLIT_FUNCTIONS: dict[SplitStrategy, SplitFunction] = {
    SplitStrategy.LINEAR: linear_split,
    SplitStrategy.QUADRATIC: quadratic_split,
    SplitStrategy.RSTAR: rstar_split,
}


class RTree:
    """An n-dimensional R-tree.

    Parameters
    ----------
    ndim:
        Dimensionality of all rectangles stored (4 for the paper's
        feature index).
    page_size:
        Simulated disk page size in bytes; determines the fan-out
        (paper: 1 KB).  Mutually exclusive with explicit fan-out.
    min_entries, max_entries:
        Explicit fan-out overriding *page_size*.
    split:
        Node split heuristic (default quadratic, as in Guttman's paper).
    """

    def __init__(
        self,
        ndim: int,
        *,
        page_size: int | None = 1024,
        min_entries: int | None = None,
        max_entries: int | None = None,
        split: SplitStrategy = SplitStrategy.QUADRATIC,
    ) -> None:
        if ndim <= 0:
            raise ValidationError(f"ndim must be positive, got {ndim}")
        if (min_entries is None) != (max_entries is None):
            raise ValidationError(
                "min_entries and max_entries must be given together"
            )
        if min_entries is not None and max_entries is not None:
            if min_entries < 1 or 2 * min_entries > max_entries + 1:
                raise ValidationError(
                    f"invalid fan-out: min={min_entries}, max={max_entries}"
                )
            self._min_entries, self._max_entries = min_entries, max_entries
            self._page_size = page_size
        else:
            if page_size is None:
                raise ValidationError("either page_size or explicit fan-out required")
            self._min_entries, self._max_entries = fanout_for_page_size(
                page_size, ndim
            )
            self._page_size = page_size
        self._ndim = ndim
        self._split = split
        self._root = Node(level=0)
        self._count = 0
        self.stats = AccessStats()

    # -- properties -----------------------------------------------------

    @property
    def ndim(self) -> int:
        """Dimensionality of stored rectangles."""
        return self._ndim

    @property
    def min_entries(self) -> int:
        """Minimum entries per non-root node."""
        return self._min_entries

    @property
    def max_entries(self) -> int:
        """Maximum entries per node (the fan-out)."""
        return self._max_entries

    @property
    def page_size(self) -> int | None:
        """Simulated page size the fan-out was derived from, if any."""
        return self._page_size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        return self._root.level + 1

    def __len__(self) -> int:
        return self._count

    def node_count(self) -> int:
        """Total number of nodes (each models one disk page)."""
        return sum(1 for _ in self._iter_nodes())

    def size_in_bytes(self) -> int:
        """Approximate on-disk size: one page per node."""
        page = self._page_size if self._page_size else 1024
        return self.node_count() * page

    # -- insertion -------------------------------------------------------

    def insert(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Insert *record* with bounding rectangle (or point) *rect*."""
        rect = self._coerce_rect(rect)
        entry = Entry(rect=rect, record=record)
        leaf = self._choose_leaf(self._root, rect, target_level=0)
        leaf.entries.append(entry)
        self._handle_overflow(leaf)
        self._count += 1

    def insert_point(self, point: TypingSequence[float], record: int) -> None:
        """Insert *record* at a degenerate point rectangle."""
        self.insert(Rect.from_point(point), record)

    def _coerce_rect(self, rect: Rect | TypingSequence[float]) -> Rect:
        if not isinstance(rect, Rect):
            rect = Rect.from_point(rect)
        if rect.ndim != self._ndim:
            raise ValidationError(
                f"rectangle has {rect.ndim} dims, tree has {self._ndim}"
            )
        return rect

    def _choose_leaf(self, node: Node, rect: Rect, target_level: int) -> Node:
        """Guttman's ChooseLeaf, descending to *target_level*."""
        while node.level > target_level:
            best_entry: Entry | None = None
            best_enlargement = float("inf")
            best_volume = float("inf")
            for entry in node.entries:
                enlargement = entry.rect.enlargement(rect)
                volume = entry.rect.volume()
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and volume < best_volume
                ):
                    best_entry = entry
                    best_enlargement = enlargement
                    best_volume = volume
            if best_entry is None or best_entry.child is None:
                raise IndexCorruptionError("internal node with no children")
            node = best_entry.child
        return node

    def _node_capacity(self, node: Node) -> int:
        """Entry capacity of *node* (constant here; X-tree supernodes vary)."""
        return self._max_entries

    def _record_node_visit(self, node: Node) -> None:
        """Account one traversal visit (X-tree charges supernode pages)."""
        self.stats.record_node(is_leaf=node.is_leaf, entries=len(node.entries))

    def _handle_overflow(self, node: Node) -> None:
        """Split overflowing nodes upward; adjust MBRs to the root."""
        while True:
            if len(node.entries) <= self._node_capacity(node):
                self._adjust_upward(node)
                return
            group_a, group_b = self._split.function(
                list(node.entries), self._min_entries, self._max_entries
            )
            node.entries = group_a
            for entry in group_a:
                if entry.child is not None:
                    entry.child.parent = node
            sibling = Node(level=node.level)
            for entry in group_b:
                sibling.add(entry)

            parent = node.parent
            if parent is None:
                # Grow the tree: new root over node and sibling.
                new_root = Node(level=node.level + 1)
                new_root.add(Entry(rect=node.mbr(), child=node))
                new_root.add(Entry(rect=sibling.mbr(), child=sibling))
                self._root = new_root
                return
            self._refresh_parent_entry(parent, node)
            parent.add(Entry(rect=sibling.mbr(), child=sibling))
            node = parent

    def _refresh_parent_entry(self, parent: Node, child: Node) -> None:
        for entry in parent.entries:
            if entry.child is child:
                entry.rect = child.mbr()
                return
        raise IndexCorruptionError("child not referenced by its parent")

    def _adjust_upward(self, node: Node) -> None:
        while node.parent is not None:
            self._refresh_parent_entry(node.parent, node)
            node = node.parent

    # -- deletion ----------------------------------------------------------

    def delete(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Remove the entry with exactly this rectangle and record id.

        Raises :class:`EntryNotFoundError` when absent.  Underflowing
        nodes are dissolved and their entries reinserted (Guttman's
        CondenseTree).
        """
        rect = self._coerce_rect(rect)
        leaf = self._find_leaf(self._root, rect, record)
        if leaf is None:
            raise EntryNotFoundError(f"record {record} with {rect} not in tree")
        leaf.entries = [
            e for e in leaf.entries if not (e.record == record and e.rect == rect)
        ]
        self._count -= 1
        self._condense(leaf)

    def _find_leaf(self, node: Node, rect: Rect, record: int) -> Node | None:
        if node.is_leaf:
            for entry in node.entries:
                if entry.record == record and entry.rect == rect:
                    return node
            return None
        for entry in node.entries:
            if entry.rect.contains_rect(rect) and entry.child is not None:
                found = self._find_leaf(entry.child, rect, record)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> None:
        orphans: list[tuple[int, Entry]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min_entries:
                parent.entries = [e for e in parent.entries if e.child is not node]
                for entry in node.entries:
                    orphans.append((node.level, entry))
            else:
                self._refresh_parent_entry(parent, node)
            node = parent
        # Shrink the root if it has a single child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            only = self._root.entries[0].child
            if only is None:
                raise IndexCorruptionError("internal root entry without child")
            only.parent = None
            self._root = only
        if not self._root.is_leaf and not self._root.entries:
            self._root = Node(level=0)
        # Reinsert orphaned entries at their original level.
        for level, entry in orphans:
            if entry.is_leaf_entry:
                target = self._choose_leaf(self._root, entry.rect, target_level=0)
                target.entries.append(entry)
                self._handle_overflow(target)
            else:
                self._reinsert_subtree(entry, level)

    def _reinsert_subtree(self, entry: Entry, level: int) -> None:
        """Re-add a subtree entry into a node at *level* (its old home level)."""
        if self._root.level < level:
            # The tree shrank below the subtree's level; re-add its leaves.
            assert entry.child is not None
            for leaf_entry, _level in _collect_leaf_entries(entry.child):
                target = self._choose_leaf(self._root, leaf_entry.rect, 0)
                target.entries.append(leaf_entry)
                self._handle_overflow(target)
            return
        target = self._choose_leaf(self._root, entry.rect, target_level=level)
        target.add(entry)
        self._handle_overflow(target)

    # -- queries -------------------------------------------------------------

    def range_search(self, rect: Rect | TypingSequence[tuple[float, float]]) -> list[int]:
        """All record ids whose rectangles intersect the query rectangle.

        This is Algorithm 1's Step 2 when *rect* is the 4-d square
        ``Feature(Q) ± eps``: the returned ids form the candidate set.
        Node visits are recorded in :attr:`stats`.
        """
        if not isinstance(rect, Rect):
            rect = Rect.from_intervals(rect)
        if rect.ndim != self._ndim:
            raise ValidationError(
                f"query rectangle has {rect.ndim} dims, tree has {self._ndim}"
            )
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._record_node_visit(node)
            for entry in node.entries:
                if not rect.intersects(entry.rect):
                    continue
                if entry.is_leaf_entry:
                    results.append(entry.record)  # type: ignore[arg-type]
                else:
                    assert entry.child is not None
                    stack.append(entry.child)
        return results

    def point_search(self, point: TypingSequence[float]) -> list[int]:
        """All record ids whose rectangles contain *point*."""
        return self.range_search(Rect.from_point(point))

    def knn(
        self,
        point: TypingSequence[float],
        k: int,
        *,
        p: float = float("inf"),
    ) -> list[tuple[float, int]]:
        """The *k* records nearest to *point* under the ``L_p`` metric.

        Consumes :meth:`knn_iter` — the traversal stops as soon as the
        *k*-th result is produced, exactly as the bounded best-first
        loop would.  Returns ``(distance, record)`` pairs in
        non-decreasing distance order.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        return list(itertools.islice(self.knn_iter(point, p=p), k))

    def knn_iter(
        self,
        point: TypingSequence[float],
        *,
        p: float = float("inf"),
    ) -> Iterator[tuple[float, int]]:
        """Lazily yield ``(distance, record)`` in non-decreasing order.

        Best-first (Hjaltason–Samet) traversal using rectangle-to-point
        minimum distances as priorities; exact for any ``p >= 1``.
        With ``p = inf`` the distances yielded are ``D_tw-lb`` values
        when the tree stores feature points.  The traversal is
        incremental: node visits are paid only as results are consumed,
        so a caller that stops after *n* neighbours never touches the
        subtrees a ``knn(point, n)`` call would also have skipped.
        """
        if len(point) != self._ndim:
            raise ValidationError(
                f"point has {len(point)} dims, tree has {self._ndim}"
            )
        return self._knn_iter(point, p)

    def _knn_iter(
        self, point: TypingSequence[float], p: float
    ) -> Iterator[tuple[float, int]]:
        counter = itertools.count()
        heap: list[tuple[float, int, Entry | Node]] = [(0.0, next(counter), self._root)]
        while heap:
            dist, _tie, item = heapq.heappop(heap)
            if isinstance(item, Node):
                self._record_node_visit(item)
                for entry in item.entries:
                    d = entry.rect.min_distance_to_point(point, p=p)
                    heapq.heappush(heap, (d, next(counter), entry))
            else:
                if item.is_leaf_entry:
                    yield dist, item.record  # type: ignore[misc]
                else:
                    assert item.child is not None
                    heapq.heappush(heap, (dist, next(counter), item.child))

    # -- introspection --------------------------------------------------------

    def items(self) -> Iterator[tuple[Rect, int]]:
        """Iterate over all ``(rect, record)`` leaf entries."""
        for node in self._iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.rect, entry.record  # type: ignore[misc]

    def _iter_nodes(self) -> Iterator[Node]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                for entry in node.entries:
                    if entry.child is not None:
                        stack.append(entry.child)

    def validate(self) -> None:
        """Check all structural invariants; raise on violation.

        Verified: fan-out bounds (root exempt from the minimum), MBR
        containment, uniform leaf depth, parent pointers, and that the
        entry count matches ``len(self)``.
        """
        leaf_levels: set[int] = set()
        count = self._validate_node(self._root, is_root=True, leaf_levels=leaf_levels)
        if len(leaf_levels) > 1:
            raise IndexCorruptionError(f"leaves at multiple levels: {leaf_levels}")
        if count != self._count:
            raise IndexCorruptionError(
                f"entry count mismatch: found {count}, tracked {self._count}"
            )

    def _validate_node(
        self, node: Node, *, is_root: bool, leaf_levels: set[int]
    ) -> int:
        if len(node.entries) > self._node_capacity(node):
            raise IndexCorruptionError(
                f"node overflow: {len(node.entries)} > {self._node_capacity(node)}"
            )
        if not is_root and len(node.entries) < self._min_entries:
            raise IndexCorruptionError(
                f"node underflow: {len(node.entries)} < {self._min_entries}"
            )
        if node.is_leaf:
            leaf_levels.add(node.level)
            for entry in node.entries:
                if not entry.is_leaf_entry:
                    raise IndexCorruptionError("leaf holds a child entry")
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child = entry.child
            if child is None:
                raise IndexCorruptionError("internal entry without child")
            if child.parent is not node:
                raise IndexCorruptionError("broken parent pointer")
            if child.level != node.level - 1:
                raise IndexCorruptionError(
                    f"child level {child.level} under node level {node.level}"
                )
            if entry.rect != child.mbr():
                if not entry.rect.contains_rect(child.mbr()):
                    raise IndexCorruptionError("entry MBR does not cover child")
                raise IndexCorruptionError("entry MBR is not minimal")
            total += self._validate_node(child, is_root=False, leaf_levels=leaf_levels)
        return total

    # -- bulk state swap (used by the STR loader) ------------------------------

    def _adopt(self, root: Node, count: int) -> None:
        """Replace the tree contents wholesale (internal, for bulk loading)."""
        self._root = root
        self._count = count

    def __repr__(self) -> str:
        return (
            f"RTree(ndim={self._ndim}, entries={self._count}, "
            f"height={self.height}, fanout=[{self._min_entries},"
            f"{self._max_entries}], split={self._split.value})"
        )


def _collect_leaf_entries(node: Node) -> Iterable[tuple[Entry, int]]:
    """All leaf entries under *node* with their level (always 0)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            for entry in current.entries:
                yield entry, 0
        else:
            for entry in current.entries:
                if entry.child is not None:
                    stack.append(entry.child)
