"""N-dimensional axis-aligned rectangles (MBRs) for the R-tree.

A :class:`Rect` is an immutable pair of coordinate tuples ``lows`` and
``highs`` with ``lows[d] <= highs[d]`` in every dimension.  Degenerate
(zero-extent) rectangles represent points — TW-Sim-Search stores each
feature vector as a point rectangle.

All geometry used by insertion heuristics and queries lives here:
volume, margin, intersection, containment, union, enlargement and
overlap, each ``O(d)`` with plain-float arithmetic (for the 4-d feature
space this is faster than numpy round-trips).
"""

from __future__ import annotations

from typing import Iterable, Sequence as TypingSequence

from ...exceptions import ValidationError

__all__ = ["Rect"]


class Rect:
    """An immutable n-dimensional axis-aligned rectangle."""

    __slots__ = ("lows", "highs")

    def __init__(
        self,
        lows: TypingSequence[float],
        highs: TypingSequence[float],
    ) -> None:
        lows_t = tuple(float(v) for v in lows)
        highs_t = tuple(float(v) for v in highs)
        if len(lows_t) != len(highs_t):
            raise ValidationError(
                f"lows and highs differ in length: {len(lows_t)} vs {len(highs_t)}"
            )
        if not lows_t:
            raise ValidationError("rectangle must have at least one dimension")
        for lo, hi in zip(lows_t, highs_t):
            if lo != lo or hi != hi:  # NaN check
                raise ValidationError("rectangle bounds must not be NaN")
            if lo > hi:
                raise ValidationError(f"invalid bounds: low {lo} > high {hi}")
        object.__setattr__(self, "lows", lows_t)
        object.__setattr__(self, "highs", highs_t)

    def __setattr__(self, name: str, value: object) -> None:
        # the __setattr__ protocol requires AttributeError here
        raise AttributeError("Rect is immutable")  # repro-lint: disable=RL004

    def __reduce__(self) -> tuple[type["Rect"], tuple[tuple[float, ...], ...]]:
        # Default __slots__ pickling restores state through
        # __setattr__, which immutability blocks; rebuild through the
        # constructor instead (needed to ship indexes to shard workers).
        return (Rect, (self.lows, self.highs))

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_point(cls, point: TypingSequence[float]) -> "Rect":
        """A degenerate rectangle covering exactly *point*."""
        return cls(point, point)

    @classmethod
    def from_intervals(
        cls, intervals: Iterable[tuple[float, float]]
    ) -> "Rect":
        """Build from per-dimension ``(low, high)`` pairs."""
        pairs = list(intervals)
        return cls([p[0] for p in pairs], [p[1] for p in pairs])

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of several rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValidationError("union_of requires at least one rectangle")
        lows = list(first.lows)
        highs = list(first.highs)
        for rect in it:
            for d in range(len(lows)):
                if rect.lows[d] < lows[d]:
                    lows[d] = rect.lows[d]
                if rect.highs[d] > highs[d]:
                    highs[d] = rect.highs[d]
        return cls(lows, highs)

    # -- basic properties ------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    @property
    def center(self) -> tuple[float, ...]:
        """The midpoint in every dimension."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    def volume(self) -> float:
        """Product of extents (``area`` in Guttman's 2-d terminology)."""
        v = 1.0
        for lo, hi in zip(self.lows, self.highs):
            v *= hi - lo
        return v

    def margin(self) -> float:
        """Sum of extents (the R*-tree split heuristic's perimeter proxy)."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def is_point(self) -> bool:
        """True when the rectangle has zero extent in every dimension."""
        return all(lo == hi for lo, hi in zip(self.lows, self.highs))

    # -- predicates -------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share at least a boundary point."""
        self._check_dim(other)
        for d in range(self.ndim):
            if self.lows[d] > other.highs[d] or other.lows[d] > self.highs[d]:
                return False
        return True

    def contains_point(self, point: TypingSequence[float]) -> bool:
        """True when *point* lies inside (boundary inclusive)."""
        if len(point) != self.ndim:
            raise ValidationError(
                f"point has {len(point)} dims, rectangle has {self.ndim}"
            )
        for d, value in enumerate(point):
            if value < self.lows[d] or value > self.highs[d]:
                return False
        return True

    def contains_rect(self, other: "Rect") -> bool:
        """True when *other* lies fully inside (boundary inclusive)."""
        self._check_dim(other)
        for d in range(self.ndim):
            if other.lows[d] < self.lows[d] or other.highs[d] > self.highs[d]:
                return False
        return True

    # -- combination ------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of this and *other*."""
        self._check_dim(other)
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Volume increase needed for this rectangle to cover *other*.

        Guttman's ChooseLeaf criterion: descend into the child whose MBR
        needs the least enlargement.
        """
        return self.union(other).volume() - self.volume()

    def overlap(self, other: "Rect") -> float:
        """Volume of the intersection (0 when disjoint)."""
        self._check_dim(other)
        v = 1.0
        for d in range(self.ndim):
            lo = max(self.lows[d], other.lows[d])
            hi = min(self.highs[d], other.highs[d])
            if lo > hi:
                return 0.0
            v *= hi - lo
        return v

    def min_distance_to_point(
        self, point: TypingSequence[float], *, p: float = 2.0
    ) -> float:
        """Minimum ``L_p`` distance from *point* to this rectangle.

        Used by best-first kNN as the priority of a node.  ``p`` may be
        ``float('inf')`` for the ``L_inf`` metric of ``D_tw-lb``.
        """
        if len(point) != self.ndim:
            raise ValidationError(
                f"point has {len(point)} dims, rectangle has {self.ndim}"
            )
        gaps = []
        for d, value in enumerate(point):
            if value < self.lows[d]:
                gaps.append(self.lows[d] - value)
            elif value > self.highs[d]:
                gaps.append(value - self.highs[d])
            else:
                gaps.append(0.0)
        if p == float("inf"):
            return max(gaps)
        if p == 1.0:
            return sum(gaps)
        return sum(g**p for g in gaps) ** (1.0 / p)

    # -- plumbing ----------------------------------------------------------

    def _check_dim(self, other: "Rect") -> None:
        if self.ndim != other.ndim:
            raise ValidationError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lows == other.lows and self.highs == other.highs

    def __hash__(self) -> int:
        return hash((self.lows, self.highs))

    def __repr__(self) -> str:
        spans = ", ".join(
            f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Rect({spans})"
