"""Node split algorithms for the R-tree.

Implements Guttman's two classical heuristics and the R*-tree's
margin-driven split:

* **Linear split** — ``O(n)``: pick the pair of entries with the
  greatest normalized separation along any axis as seeds, then assign
  the rest greedily.
* **Quadratic split** — ``O(n^2)``: pick as seeds the pair wasting the
  most volume if grouped together, then repeatedly assign the entry
  with the strongest preference.  This is the library default, as in
  most production R-trees.
* **R\\* split** — choose the split axis by minimum total margin, then
  the distribution along that axis by minimum overlap (ties: minimum
  volume).  Offered because the paper names the R*-tree among the
  applicable indexes.

Every algorithm returns two entry groups, each holding at least
``min_entries`` and at most ``max_entries`` entries.
"""

from __future__ import annotations

from typing import Callable

from ...exceptions import IndexCorruptionError, ValidationError
from .geometry import Rect
from .node import Entry

__all__ = ["linear_split", "quadratic_split", "rstar_split", "SplitFunction"]

SplitFunction = Callable[[list[Entry], int, int], tuple[list[Entry], list[Entry]]]


def _check_split_args(entries: list[Entry], min_entries: int, max_entries: int) -> None:
    if len(entries) != max_entries + 1:
        raise ValidationError(
            f"split expects max_entries + 1 = {max_entries + 1} entries, "
            f"got {len(entries)}"
        )
    if min_entries < 1 or 2 * min_entries > max_entries + 1:
        raise ValidationError(
            f"invalid fill bounds: min={min_entries}, max={max_entries}"
        )


def linear_split(
    entries: list[Entry], min_entries: int, max_entries: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's LinearPickSeeds split."""
    _check_split_args(entries, min_entries, max_entries)
    ndim = entries[0].rect.ndim

    # Pick seeds: entries with greatest normalized separation on any axis.
    best_norm_sep = -1.0
    seed_a, seed_b = 0, 1
    for d in range(ndim):
        lows = [e.rect.lows[d] for e in entries]
        highs = [e.rect.highs[d] for e in entries]
        # Entry with the highest low and entry with the lowest high.
        high_low_i = max(range(len(entries)), key=lambda i: lows[i])
        low_high_i = min(range(len(entries)), key=lambda i: highs[i])
        if high_low_i == low_high_i:
            continue
        width = max(highs) - min(lows)
        sep = lows[high_low_i] - highs[low_high_i]
        norm_sep = sep / width if width > 0 else 0.0
        if norm_sep > best_norm_sep:
            best_norm_sep = norm_sep
            seed_a, seed_b = high_low_i, low_high_i

    return _distribute_greedy(entries, seed_a, seed_b, min_entries)


def quadratic_split(
    entries: list[Entry], min_entries: int, max_entries: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's QuadraticPickSeeds split (the default)."""
    _check_split_args(entries, min_entries, max_entries)
    n = len(entries)

    # PickSeeds: the pair that wastes the most volume when combined.
    worst_waste = -float("inf")
    seed_a, seed_b = 0, 1
    for i in range(n):
        rect_i = entries[i].rect
        for j in range(i + 1, n):
            rect_j = entries[j].rect
            waste = rect_i.union(rect_j).volume() - rect_i.volume() - rect_j.volume()
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].rect
    mbr_b = entries[seed_b].rect
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    while remaining:
        # Underflow guard: if one group must absorb everything left, do so.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        # PickNext: entry with the greatest preference difference.
        best_idx = 0
        best_diff = -1.0
        best_d1 = best_d2 = 0.0
        for idx, entry in enumerate(remaining):
            d1 = mbr_a.enlargement(entry.rect)
            d2 = mbr_b.enlargement(entry.rect)
            diff = abs(d1 - d2)
            if diff > best_diff:
                best_diff = diff
                best_idx = idx
                best_d1, best_d2 = d1, d2
        entry = remaining.pop(best_idx)
        if best_d1 < best_d2 or (
            best_d1 == best_d2 and len(group_a) <= len(group_b)
        ):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.rect)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.rect)

    _check_result(group_a, group_b, len(entries), min_entries)
    return group_a, group_b


def rstar_split(
    entries: list[Entry], min_entries: int, max_entries: int
) -> tuple[list[Entry], list[Entry]]:
    """The R*-tree split: margin-minimizing axis, overlap-minimizing cut."""
    _check_split_args(entries, min_entries, max_entries)
    ndim = entries[0].rect.ndim
    n = len(entries)
    k_range = range(min_entries, n - min_entries + 1)

    best_axis = 0
    best_axis_margin = float("inf")
    for d in range(ndim):
        margin_sum = 0.0
        for key in (
            lambda e, d=d: (e.rect.lows[d], e.rect.highs[d]),
            lambda e, d=d: (e.rect.highs[d], e.rect.lows[d]),
        ):
            ordered = sorted(entries, key=key)
            for k in k_range:
                left = Rect.union_of(e.rect for e in ordered[:k])
                right = Rect.union_of(e.rect for e in ordered[k:])
                margin_sum += left.margin() + right.margin()
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = d

    best_split: tuple[list[Entry], list[Entry]] | None = None
    best_overlap = float("inf")
    best_volume = float("inf")
    for key in (
        lambda e: (e.rect.lows[best_axis], e.rect.highs[best_axis]),
        lambda e: (e.rect.highs[best_axis], e.rect.lows[best_axis]),
    ):
        ordered = sorted(entries, key=key)
        for k in k_range:
            left_rect = Rect.union_of(e.rect for e in ordered[:k])
            right_rect = Rect.union_of(e.rect for e in ordered[k:])
            overlap = left_rect.overlap(right_rect)
            volume = left_rect.volume() + right_rect.volume()
            if overlap < best_overlap or (
                overlap == best_overlap and volume < best_volume
            ):
                best_overlap = overlap
                best_volume = volume
                best_split = (list(ordered[:k]), list(ordered[k:]))

    if best_split is None:  # pragma: no cover - k_range is never empty
        raise IndexCorruptionError("R* split found no distribution")
    _check_result(best_split[0], best_split[1], n, min_entries)
    return best_split


def _distribute_greedy(
    entries: list[Entry], seed_a: int, seed_b: int, min_entries: int
) -> tuple[list[Entry], list[Entry]]:
    """Assign non-seed entries to the group needing less enlargement."""
    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].rect
    mbr_b = entries[seed_b].rect
    rest = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]
    for idx, entry in enumerate(rest):
        left_over = len(rest) - idx
        if len(group_a) + left_over == min_entries:
            group_a.extend(rest[idx:])
            break
        if len(group_b) + left_over == min_entries:
            group_b.extend(rest[idx:])
            break
        d1 = mbr_a.enlargement(entry.rect)
        d2 = mbr_b.enlargement(entry.rect)
        if d1 < d2 or (d1 == d2 and len(group_a) <= len(group_b)):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.rect)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.rect)
    _check_result(group_a, group_b, len(entries), min_entries)
    return group_a, group_b


def _check_result(
    group_a: list[Entry],
    group_b: list[Entry],
    total: int,
    min_entries: int,
) -> None:
    if len(group_a) + len(group_b) != total:
        raise IndexCorruptionError(
            f"split lost entries: {len(group_a)} + {len(group_b)} != {total}"
        )
    if len(group_a) < min_entries or len(group_b) < min_entries:
        raise IndexCorruptionError(
            f"split underflow: groups of {len(group_a)} and {len(group_b)} "
            f"with min_entries={min_entries}"
        )
