"""The X-tree (Berchtold, Keim & Kriegel, VLDB 1996).

The last of the four indexes the paper names.  The X-tree's insight:
in higher dimensions, R-tree splits increasingly produce sibling MBRs
with massive overlap, and overlapping siblings destroy query
performance because every query descends into both.  Instead of
accepting a bad split, the X-tree creates a **supernode** — a node
spanning several disk pages that is scanned linearly — whenever no
split with acceptably low overlap exists.

This implementation:

* tries the margin-driven R* split on overflow;
* accepts it only when the two groups' MBRs overlap less than
  ``max_overlap`` of their combined volume (the X-tree paper's
  ``MAX_OVERLAP``, default 20%);
* otherwise extends the node by one page (``Node.capacity_pages``),
  deferring the split;
* charges ``capacity_pages`` page reads when a traversal visits a
  supernode, so the cost model stays honest.

For the paper's 4-d feature points overlap is rarely pathological, so
supernodes are rare there — exactly the regime the X-tree authors
report (it degrades gracefully to an R*-tree in low dimensions).  The
tests exercise high-dimensional data where supernodes actually form.
"""

from __future__ import annotations

from ...exceptions import ValidationError
from .geometry import Rect
from .node import Entry, Node
from .rtree import RTree, SplitStrategy
from .split import rstar_split

__all__ = ["XTree"]


class XTree(RTree):
    """An R-tree with X-tree supernodes.

    Parameters
    ----------
    ndim, page_size, min_entries, max_entries:
        As for :class:`RTree`.
    max_overlap:
        Maximum tolerated overlap fraction between split halves before
        a supernode is created instead (X-tree paper: 0.2).
    max_supernode_pages:
        Safety cap on supernode growth; beyond it the node splits
        regardless (keeps worst cases bounded).
    """

    def __init__(
        self,
        ndim: int,
        *,
        page_size: int | None = 1024,
        min_entries: int | None = None,
        max_entries: int | None = None,
        max_overlap: float = 0.2,
        max_supernode_pages: int = 8,
    ) -> None:
        super().__init__(
            ndim,
            page_size=page_size,
            min_entries=min_entries,
            max_entries=max_entries,
            split=SplitStrategy.RSTAR,
        )
        if not 0.0 <= max_overlap < 1.0:
            raise ValidationError(
                f"max_overlap must be in [0, 1), got {max_overlap}"
            )
        if max_supernode_pages < 1:
            raise ValidationError(
                f"max_supernode_pages must be >= 1, got {max_supernode_pages}"
            )
        self._max_overlap = max_overlap
        self._max_supernode_pages = max_supernode_pages

    # -- capacity / accounting hooks ---------------------------------------

    def _node_capacity(self, node: Node) -> int:
        return self._max_entries * node.capacity_pages

    def _record_node_visit(self, node: Node) -> None:
        # A supernode is read linearly: one page access per page.
        for _ in range(node.capacity_pages):
            self.stats.record_node(
                is_leaf=node.is_leaf, entries=len(node.entries)
            )

    def node_count(self) -> int:
        """Total *pages* (supernodes count as several)."""
        return sum(node.capacity_pages for node in self._iter_nodes())

    def supernode_count(self) -> int:
        """Number of nodes spanning more than one page."""
        return sum(1 for n in self._iter_nodes() if n.capacity_pages > 1)

    # -- overflow treatment ---------------------------------------------------

    def _handle_overflow(self, node: Node) -> None:
        # Unlike the plain R-tree, a split of a multi-page supernode can
        # leave *either half* still larger than one page, so both halves
        # are re-checked (recursively for the sibling, by looping for
        # the node) before propagating to the parent.
        while len(node.entries) > self._node_capacity(node):
            split = self._try_split(node)
            if split is None:
                # Overlap too high: grow the supernode and re-check.
                node.capacity_pages += 1
                continue
            group_a, group_b = split
            node.entries = group_a
            node.capacity_pages = 1
            for entry in group_a:
                if entry.child is not None:
                    entry.child.parent = node
            sibling = Node(level=node.level)
            for entry in group_b:
                sibling.add(entry)
            parent = node.parent
            if parent is None:
                new_root = Node(level=node.level + 1)
                new_root.add(Entry(rect=node.mbr(), child=node))
                new_root.add(Entry(rect=sibling.mbr(), child=sibling))
                self._root = new_root
            else:
                self._refresh_parent_entry(parent, node)
                parent.add(Entry(rect=sibling.mbr(), child=sibling))
            if len(sibling.entries) > self._node_capacity(sibling):
                self._handle_overflow(sibling)
        self._adjust_upward(node)
        parent = node.parent
        if parent is not None and len(parent.entries) > self._node_capacity(
            parent
        ):
            self._handle_overflow(parent)

    def _try_split(
        self, node: Node
    ) -> tuple[list[Entry], list[Entry]] | None:
        """R* split if its overlap is acceptable, else None (supernode).

        A node at the supernode-growth cap is always split.
        """
        entries = list(node.entries)
        group_a, group_b = rstar_split(
            entries, self._min_entries, len(entries) - 1
        )
        if node.capacity_pages >= self._max_supernode_pages:
            return group_a, group_b
        mbr_a = Rect.union_of(e.rect for e in group_a)
        mbr_b = Rect.union_of(e.rect for e in group_b)
        if not mbr_a.intersects(mbr_b):
            return group_a, group_b
        # Data overlap, as in the X-tree paper: the fraction of entries
        # falling inside both halves' MBRs.  (Geometric volume overlap
        # is useless here — it vanishes in high dimensions even when the
        # boxes overlap badly per axis.)
        in_both = sum(
            1
            for entry in entries
            if mbr_a.intersects(entry.rect) and mbr_b.intersects(entry.rect)
        )
        if in_both / len(entries) > self._max_overlap:
            return None
        return group_a, group_b

    # -- persistence guard -------------------------------------------------------

    def size_in_bytes(self) -> int:
        """On-disk size with supernodes counted at their full width."""
        page = self._page_size if self._page_size else 1024
        return self.node_count() * page


def high_dimensional_overlap_demo(
    ndim: int, n_rects: int, seed: int = 0
) -> tuple[int, int]:
    """Build an X-tree on overlapping high-d *rectangles*;
    return ``(pages, supernodes)``.

    Point sets split cleanly along an axis (the halves' MBRs barely
    intersect), so supernodes form mostly on extended objects — random
    boxes spanning a large fraction of the space per axis, the setting
    the X-tree paper targets.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    tree = XTree(ndim, min_entries=2, max_entries=6)
    for i in range(n_rects):
        lows = rng.uniform(0.0, 0.6, size=ndim)
        highs = lows + rng.uniform(0.2, 0.4, size=ndim)
        tree.insert(Rect(tuple(lows), tuple(highs)), i)
    return tree.node_count(), tree.supernode_count()
