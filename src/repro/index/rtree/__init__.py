"""A from-scratch n-dimensional R-tree (Guttman, SIGMOD 1984).

The paper indexes each sequence's 4-tuple feature vector in a
multi-dimensional index ("any of R-tree, R+-tree, R*-tree, X-tree can be
used"; the evaluation uses an R-tree with 1 KB pages).  This package
provides:

* :mod:`repro.index.rtree.geometry` — n-d axis-aligned rectangles.
* :mod:`repro.index.rtree.node` — node / entry layout with a page-size
  derived fan-out, so node accesses map onto simulated disk pages.
* :mod:`repro.index.rtree.split` — Guttman's linear and quadratic node
  split algorithms plus the R*-style margin-driven split.
* :mod:`repro.index.rtree.rtree` — the tree: insert, delete, range and
  point queries, best-first kNN, invariant checking, access statistics.
* :mod:`repro.index.rtree.bulk` — Sort-Tile-Recursive bulk loading
  (the paper's section 4.3.1 notes bulk loading for initial builds).
"""

from .bulk import STRBulkLoader, str_pack
from .geometry import Rect
from .node import Entry, Node, fanout_for_page_size
from .persist import load_rtree, save_rtree
from .rplus import RPlusTree
from .rstar import RStarTree
from .xtree import XTree
from .rtree import RTree, SplitStrategy
from .stats import AccessStats

__all__ = [
    "AccessStats",
    "Entry",
    "Node",
    "Rect",
    "RPlusTree",
    "RStarTree",
    "RTree",
    "SplitStrategy",
    "STRBulkLoader",
    "fanout_for_page_size",
    "load_rtree",
    "save_rtree",
    "str_pack",
    "XTree",
]
