"""The R+-tree (Sellis, Roussopoulos & Faloutsos, VLDB 1987) for points.

The second of the four indexes the paper names.  Where the R-tree lets
sibling regions overlap (and pays for it on searches that must descend
into several children), the R+-tree keeps sibling regions **disjoint**:
a point query follows exactly one root-to-leaf path, and a range query
visits only nodes whose region truly intersects the range.

General R+-trees must *clip* extended objects across several leaves;
for the paper's workload — 4-d feature *points* — no clipping is ever
needed, so this implementation specializes to point data (inserting a
non-degenerate rectangle raises).  Splits cut the overflowing node's
region with an axis-orthogonal hyperplane at the median coordinate,
recursively partitioning downward, which preserves disjointness by
construction.

The interface mirrors :class:`RTree` where meaningful (insert / range
search / point search / kNN / validate / stats), so the TW-Sim-Search
method can run on either.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Sequence as TypingSequence

from ...exceptions import (
    EntryNotFoundError,
    IndexCorruptionError,
    ValidationError,
)
from .geometry import Rect
from .node import fanout_for_page_size
from .stats import AccessStats

__all__ = ["RPlusTree"]


class _RPlusNode:
    """A node: leaves hold ``(point, record)``; internals hold children.

    Every node owns a *region*; sibling regions are disjoint and tile
    the parent's region.
    """

    __slots__ = ("region", "points", "records", "children", "axis")

    def __init__(self, region: Rect) -> None:
        self.region = region
        self.points: list[tuple[float, ...]] = []
        self.records: list[int] = []
        self.children: list["_RPlusNode"] = []
        self.axis: int | None = None  # split axis (internal nodes)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RPlusTree:
    """A disjoint-region point index with R-tree-compatible queries.

    Parameters
    ----------
    ndim:
        Dimensionality of the indexed points.
    page_size:
        Simulated page size deriving the leaf capacity (paper: 1 KB).
    max_entries:
        Explicit capacity overriding *page_size*.
    """

    def __init__(
        self,
        ndim: int,
        *,
        page_size: int | None = 1024,
        max_entries: int | None = None,
    ) -> None:
        if ndim <= 0:
            raise ValidationError(f"ndim must be positive, got {ndim}")
        if max_entries is not None:
            if max_entries < 2:
                raise ValidationError(
                    f"max_entries must be >= 2, got {max_entries}"
                )
            self._max_entries = max_entries
            self._page_size = page_size
        else:
            if page_size is None:
                raise ValidationError("either page_size or max_entries required")
            _, self._max_entries = fanout_for_page_size(page_size, ndim)
            self._page_size = page_size
        self._ndim = ndim
        infinite = Rect([-float("inf")] * ndim, [float("inf")] * ndim)
        self._root = _RPlusNode(infinite)
        self._count = 0
        self.stats = AccessStats()

    # -- properties ---------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Dimensionality of stored points."""
        return self._ndim

    @property
    def max_entries(self) -> int:
        """Leaf capacity."""
        return self._max_entries

    @property
    def page_size(self) -> int | None:
        """Simulated page size, if capacity was derived from one."""
        return self._page_size

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""

        def depth(node: _RPlusNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(child) for child in node.children)

        return depth(self._root)

    def node_count(self) -> int:
        """Total nodes (one page each)."""
        return sum(1 for _ in self._iter_nodes())

    def size_in_bytes(self) -> int:
        """Approximate on-disk size: one page per node."""
        page = self._page_size if self._page_size else 1024
        return self.node_count() * page

    # -- insertion ---------------------------------------------------------------

    def insert_point(self, point: TypingSequence[float], record: int) -> None:
        """Insert *record* at *point* (points only — R+ clips rectangles)."""
        point_t = tuple(float(v) for v in point)
        if len(point_t) != self._ndim:
            raise ValidationError(
                f"point has {len(point_t)} dims, tree has {self._ndim}"
            )
        node = self._root
        while not node.is_leaf:
            node = self._child_containing(node, point_t)
        node.points.append(point_t)
        node.records.append(record)
        self._count += 1
        if len(node.points) > self._max_entries:
            self._split_leaf(node)

    def insert(self, rect: Rect | TypingSequence[float], record: int) -> None:
        """Insert a point (given directly or as a degenerate rectangle)."""
        if isinstance(rect, Rect):
            if not rect.is_point():
                raise ValidationError(
                    "this R+-tree stores points; rectangles would need clipping"
                )
            self.insert_point(rect.lows, record)
        else:
            self.insert_point(rect, record)

    def _child_containing(
        self, node: _RPlusNode, point: tuple[float, ...]
    ) -> _RPlusNode:
        for child in node.children:
            if child.region.contains_point(point):
                return child
        raise IndexCorruptionError("children do not tile the parent region")

    def _split_leaf(self, leaf: _RPlusNode) -> None:
        """Cut the leaf's region at the median of its widest-spread axis."""
        axis, threshold = self._choose_cut(leaf.points)
        if threshold is None:
            # All points identical: R+ cannot separate them; allow the
            # oversized leaf (the degenerate-duplicates case).
            return
        lows = list(leaf.region.lows)
        highs = list(leaf.region.highs)
        left_highs = list(highs)
        left_highs[axis] = threshold
        right_lows = list(lows)
        right_lows[axis] = threshold
        left = _RPlusNode(Rect(lows, left_highs))
        right = _RPlusNode(Rect(right_lows, highs))
        for point, record in zip(leaf.points, leaf.records):
            # Boundary points go LEFT: descent picks the first child
            # whose region contains the point, and the left region is
            # listed first — assignment and lookup must agree exactly.
            target = left if point[axis] <= threshold else right
            target.points.append(point)
            target.records.append(record)
        leaf.points = []
        leaf.records = []
        leaf.children = [left, right]
        leaf.axis = axis
        for half in (left, right):
            if len(half.points) > self._max_entries:
                self._split_leaf(half)

    @staticmethod
    def _choose_cut(
        points: list[tuple[float, ...]]
    ) -> tuple[int, float | None]:
        """Widest-spread axis and a median-ish threshold, or None if
        every point coincides."""
        ndim = len(points[0])
        best_axis = 0
        best_spread = -1.0
        for axis in range(ndim):
            values = [p[axis] for p in points]
            spread = max(values) - min(values)
            if spread > best_spread:
                best_spread = spread
                best_axis = axis
        if best_spread <= 0.0:
            return best_axis, None
        values = sorted(p[best_axis] for p in points)
        threshold = values[len(values) // 2]
        if threshold == values[-1]:
            # Points at the threshold go left, so a threshold equal to
            # the maximum would empty the right half; cut just below.
            lower = [v for v in values if v < threshold]
            threshold = lower[-1]
        return best_axis, threshold

    # -- deletion --------------------------------------------------------------------

    def delete(
        self, rect: Rect | TypingSequence[float], record: int
    ) -> None:
        """Remove the entry with exactly this point and record id.

        Raises :class:`EntryNotFoundError` when absent.  Disjoint
        regions make the search a single root-to-leaf descent.  The
        leaf may underflow — the R+ invariants (disjointness,
        containment) do not depend on a minimum occupancy, so no
        condensation is needed.
        """
        if isinstance(rect, Rect):
            if not rect.is_point():
                raise ValidationError(
                    "this R+-tree stores points; rectangles would need clipping"
                )
            point: TypingSequence[float] = rect.lows
        else:
            point = rect
        point_t = tuple(float(v) for v in point)
        if len(point_t) != self._ndim:
            raise ValidationError(
                f"point has {len(point_t)} dims, tree has {self._ndim}"
            )
        node = self._root
        while not node.is_leaf:
            node = self._child_containing(node, point_t)
        for i, (stored, rec) in enumerate(zip(node.points, node.records)):
            if rec == record and stored == point_t:
                del node.points[i]
                del node.records[i]
                self._count -= 1
                return
        raise EntryNotFoundError(
            f"record {record} at {point_t} not in tree"
        )

    # -- queries ---------------------------------------------------------------------

    def range_search(
        self, rect: Rect | TypingSequence[tuple[float, float]]
    ) -> list[int]:
        """All records whose points fall inside the query rectangle."""
        if not isinstance(rect, Rect):
            rect = Rect.from_intervals(rect)
        if rect.ndim != self._ndim:
            raise ValidationError(
                f"query rectangle has {rect.ndim} dims, tree has {self._ndim}"
            )
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.record_node(
                is_leaf=node.is_leaf,
                entries=len(node.children) or len(node.points),
            )
            if node.is_leaf:
                for point, record in zip(node.points, node.records):
                    if rect.contains_point(point):
                        results.append(record)
            else:
                for child in node.children:
                    if rect.intersects(child.region):
                        stack.append(child)
        return results

    def point_search(self, point: TypingSequence[float]) -> list[int]:
        """All records stored exactly at *point* (single-path descent)."""
        point_t = tuple(float(v) for v in point)
        if len(point_t) != self._ndim:
            raise ValidationError(
                f"point has {len(point_t)} dims, tree has {self._ndim}"
            )
        node = self._root
        while not node.is_leaf:
            self.stats.record_node(is_leaf=False, entries=len(node.children))
            node = self._child_containing(node, point_t)
        self.stats.record_node(is_leaf=True, entries=len(node.points))
        return [
            record
            for stored, record in zip(node.points, node.records)
            if stored == point_t
        ]

    def knn(
        self,
        point: TypingSequence[float],
        k: int,
        *,
        p: float = float("inf"),
    ) -> list[tuple[float, int]]:
        """Best-first exact k-nearest-neighbours under ``L_p``."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        return list(itertools.islice(self.knn_iter(point, p=p), k))

    def knn_iter(
        self,
        point: TypingSequence[float],
        *,
        p: float = float("inf"),
    ) -> Iterator[tuple[float, int]]:
        """Lazily yield ``(distance, record)`` in non-decreasing order.

        The incremental form of :meth:`knn`: node visits are paid only
        as results are consumed.
        """
        point_t = tuple(float(v) for v in point)
        if len(point_t) != self._ndim:
            raise ValidationError(
                f"point has {len(point_t)} dims, tree has {self._ndim}"
            )
        return self._knn_iter(point_t, p)

    def _knn_iter(
        self, point_t: tuple[float, ...], p: float
    ) -> Iterator[tuple[float, int]]:
        counter = itertools.count()
        heap: list = [(0.0, next(counter), self._root, None)]
        while heap:
            dist, _tie, node, record = heapq.heappop(heap)
            if record is not None:
                yield dist, record
                continue
            self.stats.record_node(
                is_leaf=node.is_leaf,
                entries=len(node.children) or len(node.points),
            )
            if node.is_leaf:
                for stored, rec in zip(node.points, node.records):
                    d = Rect.from_point(stored).min_distance_to_point(
                        point_t, p=p
                    )
                    heapq.heappush(heap, (d, next(counter), node, rec))
            else:
                for child in node.children:
                    d = child.region.min_distance_to_point(point_t, p=p)
                    heapq.heappush(heap, (d, next(counter), child, None))

    # -- introspection -----------------------------------------------------------------

    def items(self) -> Iterator[tuple[Rect, int]]:
        """All ``(point rectangle, record)`` pairs."""
        for node in self._iter_nodes():
            if node.is_leaf:
                for point, record in zip(node.points, node.records):
                    yield Rect.from_point(point), record

    def _iter_nodes(self) -> Iterator[_RPlusNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def validate(self) -> None:
        """Check disjointness, containment, and the record count."""
        total = self._validate_node(self._root)
        if total != self._count:
            raise IndexCorruptionError(
                f"record count mismatch: found {total}, tracked {self._count}"
            )

    def _validate_node(self, node: _RPlusNode) -> int:
        if node.is_leaf:
            for point in node.points:
                if not node.region.contains_point(point):
                    raise IndexCorruptionError("point outside its leaf region")
            return len(node.points)
        for a in range(len(node.children)):
            child = node.children[a]
            if not node.region.contains_rect(child.region):
                raise IndexCorruptionError("child region escapes its parent")
            for b in range(a + 1, len(node.children)):
                other = node.children[b]
                if child.region.overlap(other.region) > 0.0:
                    raise IndexCorruptionError(
                        "sibling regions overlap — R+ invariant broken"
                    )
        return sum(self._validate_node(child) for child in node.children)

    def __repr__(self) -> str:
        return (
            f"RPlusTree(ndim={self._ndim}, entries={self._count}, "
            f"nodes={self.node_count()}, max_entries={self._max_entries})"
        )
