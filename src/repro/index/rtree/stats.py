"""Access statistics for index structures.

The paper's evaluation hinges on *how much of the index / database each
method touches* ("TW-Sim-Search accesses just a small portion of the
R-tree whose size is less than 4% of the database size").  Every
traversal of the R-tree and the suffix tree increments these counters so
experiments can report node accesses and convert them into simulated
disk time via :mod:`repro.storage.diskmodel`.

Since the observability refactor each :class:`AccessStats` also charges
the ambient :class:`~repro.obs.metrics.MetricsRegistry` (when one is
active) under its *scope* prefix — e.g. a backend constructed with
``scope="index.rtree"`` charges ``index.rtree.node_reads`` /
``.leaf_reads`` / ``.entries_examined``.  The dataclass itself stays the
cheap always-on view the tree code reads synchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs.metrics import active_registry

__all__ = ["AccessStats"]


@dataclass
class AccessStats:
    """Mutable counters of index work done since the last reset.

    Attributes
    ----------
    node_reads:
        Total nodes visited (each visit models one page read).
    leaf_reads:
        Subset of ``node_reads`` that were leaves.
    entries_examined:
        Entries (child pointers or data records) inspected.
    scope:
        Metric-name prefix for ambient-registry charging (defaults to
        ``"index"``; backends use ``"index.<backend-name>"``).
    """

    node_reads: int = 0
    leaf_reads: int = 0
    entries_examined: int = 0
    scope: str = "index"
    _marks: dict[str, tuple[int, int, int]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        # Precomputed so record_node never formats names on the hot path.
        self._metric_node = self.scope + ".node_reads"
        self._metric_leaf = self.scope + ".leaf_reads"
        self._metric_entries = self.scope + ".entries_examined"

    def record_node(self, *, is_leaf: bool, entries: int) -> None:
        """Record one node visit inspecting *entries* entries."""
        self.node_reads += 1
        if is_leaf:
            self.leaf_reads += 1
        self.entries_examined += entries
        registry = active_registry()
        if registry is not None:
            registry.count(self._metric_node)
            if is_leaf:
                registry.count(self._metric_leaf)
            registry.count(self._metric_entries, entries)

    def reset(self) -> None:
        """Zero all counters (marks are kept)."""
        self.node_reads = 0
        self.leaf_reads = 0
        self.entries_examined = 0

    def snapshot(self) -> tuple[int, int, int]:
        """Current ``(node_reads, leaf_reads, entries_examined)``."""
        return (self.node_reads, self.leaf_reads, self.entries_examined)

    def mark(self, name: str) -> None:
        """Remember the current counters under *name* for later delta."""
        self._marks[name] = self.snapshot()

    def delta(self, name: str) -> tuple[int, int, int]:
        """Counter increase since :meth:`mark` was called with *name*."""
        base = self._marks.get(name, (0, 0, 0))
        now = self.snapshot()
        return tuple(n - b for n, b in zip(now, base))  # type: ignore[return-value]

    def __add__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            node_reads=self.node_reads + other.node_reads,
            leaf_reads=self.leaf_reads + other.leaf_reads,
            entries_examined=self.entries_examined + other.entries_examined,
            scope=self.scope,
        )
