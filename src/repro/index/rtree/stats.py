"""Access statistics for index structures.

The paper's evaluation hinges on *how much of the index / database each
method touches* ("TW-Sim-Search accesses just a small portion of the
R-tree whose size is less than 4% of the database size").  Every
traversal of the R-tree and the suffix tree increments these counters so
experiments can report node accesses and convert them into simulated
disk time via :mod:`repro.storage.diskmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AccessStats"]


@dataclass
class AccessStats:
    """Mutable counters of index work done since the last reset.

    Attributes
    ----------
    node_reads:
        Total nodes visited (each visit models one page read).
    leaf_reads:
        Subset of ``node_reads`` that were leaves.
    entries_examined:
        Entries (child pointers or data records) inspected.
    """

    node_reads: int = 0
    leaf_reads: int = 0
    entries_examined: int = 0
    _marks: dict[str, tuple[int, int, int]] = field(
        default_factory=dict, repr=False
    )

    def record_node(self, *, is_leaf: bool, entries: int) -> None:
        """Record one node visit inspecting *entries* entries."""
        self.node_reads += 1
        if is_leaf:
            self.leaf_reads += 1
        self.entries_examined += entries

    def reset(self) -> None:
        """Zero all counters (marks are kept)."""
        self.node_reads = 0
        self.leaf_reads = 0
        self.entries_examined = 0

    def snapshot(self) -> tuple[int, int, int]:
        """Current ``(node_reads, leaf_reads, entries_examined)``."""
        return (self.node_reads, self.leaf_reads, self.entries_examined)

    def mark(self, name: str) -> None:
        """Remember the current counters under *name* for later delta."""
        self._marks[name] = self.snapshot()

    def delta(self, name: str) -> tuple[int, int, int]:
        """Counter increase since :meth:`mark` was called with *name*."""
        base = self._marks.get(name, (0, 0, 0))
        now = self.snapshot()
        return tuple(n - b for n, b in zip(now, base))  # type: ignore[return-value]

    def __add__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            node_reads=self.node_reads + other.node_reads,
            leaf_reads=self.leaf_reads + other.leaf_reads,
            entries_examined=self.entries_examined + other.entries_examined,
        )
