"""Index substrates: the R-tree and the suffix tree.

Built from scratch per the reproduction mandate:

* :mod:`repro.index.rtree` — a Guttman R-tree (with STR bulk loading)
  over n-dimensional rectangles; TW-Sim-Search stores each sequence's
  4-tuple feature vector as a 4-d point entry.
* :mod:`repro.index.suffixtree` — a generalized suffix tree (Ukkonen)
  over categorized symbol sequences; the substrate of the ST-Filter
  baseline.
"""

from .backend import (
    BACKEND_NAMES,
    BACKENDS,
    IndexBackend,
    IndexNodeStats,
    make_backend,
)
from .rtree import RTree, Rect, STRBulkLoader
from .suffixtree import Categorizer, GeneralizedSuffixTree

__all__ = [
    "RTree",
    "Rect",
    "STRBulkLoader",
    "Categorizer",
    "GeneralizedSuffixTree",
    "IndexBackend",
    "IndexNodeStats",
    "BACKENDS",
    "BACKEND_NAMES",
    "make_backend",
]
