"""Suffix-tree substrate for the ST-Filter baseline (Park et al.).

ST-Filter converts numeric sequences into symbol sequences via
*categorization*, builds a (generalized) suffix tree over the symbol
sequences, and answers time-warping queries by a pruned dynamic-
programming traversal of the tree.  Because the suffix tree assumes no
distance function, the method incurs no false dismissal.

* :mod:`repro.index.suffixtree.categorize` — equal-length-interval
  categorization (the paper's experiments use 100 categories).
* :mod:`repro.index.suffixtree.ukkonen` — Ukkonen's linear-time
  generalized suffix-tree construction over integer alphabets.
* :mod:`repro.index.suffixtree.search` — the time-warping DP traversal
  producing candidate sequence ids.
"""

from .categorize import Categorizer
from .search import WarpingTraversal
from .ukkonen import GeneralizedSuffixTree

__all__ = ["Categorizer", "GeneralizedSuffixTree", "WarpingTraversal"]
