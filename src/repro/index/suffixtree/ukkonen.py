"""Ukkonen's linear-time generalized suffix tree over integer alphabets.

The tree is built over the concatenation of all (categorized) sequences,
each followed by a unique negative *terminator* symbol.  Because every
terminator occurs exactly once in the concatenated text, any substring
containing one is unique and therefore lies on a leaf edge — so paths
from the root spell symbols of a single sequence until the first
terminator, which marks that sequence's end.  This is the standard way
to obtain a generalized suffix tree from the single-string algorithm.

Construction is Ukkonen's online algorithm with suffix links and the
usual active-point bookkeeping: ``O(total length)`` amortized for a
fixed alphabet (our dict-based children give expected O(1) per step).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

import numpy as np

from ...exceptions import IndexCorruptionError, ValidationError

__all__ = ["GeneralizedSuffixTree", "SuffixTreeNode"]


class SuffixTreeNode:
    """A node of the suffix tree.

    ``start``/``end`` delimit the incoming edge label in the
    concatenated text (``end`` is ``None`` for leaves, meaning
    "text end").  ``suffix_start`` is set on leaves after construction:
    the global position where the represented suffix begins.
    """

    __slots__ = ("children", "link", "start", "end", "suffix_start")

    def __init__(self, start: int, end: Optional[int]) -> None:
        self.children: dict[int, "SuffixTreeNode"] = {}
        self.link: Optional["SuffixTreeNode"] = None
        self.start = start
        self.end = end
        self.suffix_start: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children


class GeneralizedSuffixTree:
    """Generalized suffix tree over a list of integer sequences.

    Parameters
    ----------
    sequences:
        Iterable of 1-d integer arrays (categorized sequences).  Symbols
        must be non-negative; negative values are reserved for the
        internal terminators.
    """

    def __init__(self, sequences: Iterable[np.ndarray]) -> None:
        text: list[int] = []
        starts: list[int] = []  # global start offset of each sequence
        lengths: list[int] = []
        for idx, seq in enumerate(sequences):
            arr = np.asarray(seq)
            if arr.ndim != 1:
                raise ValidationError(
                    f"sequence {idx} must be 1-d, got shape {arr.shape}"
                )
            symbols = [int(v) for v in arr]
            if any(s < 0 for s in symbols):
                raise ValidationError(
                    f"sequence {idx} contains negative symbols; "
                    "categorize before indexing"
                )
            starts.append(len(text))
            lengths.append(len(symbols))
            text.extend(symbols)
            text.append(_terminator(idx))
        if not starts:
            raise ValidationError("suffix tree requires at least one sequence")
        self._text = text
        self._seq_starts = starts
        self._seq_lengths = lengths
        self._root = SuffixTreeNode(-1, -1)
        self._node_count = 1
        self._build()
        self._assign_suffix_starts()

    # -- public surface ----------------------------------------------------

    @property
    def root(self) -> SuffixTreeNode:
        """The root node (its edge fields are sentinels)."""
        return self._root

    @property
    def text(self) -> list[int]:
        """The concatenated symbol text, terminators included."""
        return self._text

    @property
    def n_sequences(self) -> int:
        """Number of sequences indexed."""
        return len(self._seq_starts)

    def sequence_length(self, seq_index: int) -> int:
        """Length (in symbols, excluding terminator) of a stored sequence."""
        return self._seq_lengths[seq_index]

    def node_count(self) -> int:
        """Total nodes — the tree-size metric the paper's analysis uses."""
        return self._node_count

    def edge_label(self, node: SuffixTreeNode) -> list[int]:
        """The symbols on the edge leading into *node*."""
        end = node.end if node.end is not None else len(self._text)
        return self._text[node.start : end]

    def edge_length(self, node: SuffixTreeNode) -> int:
        """Length of the edge label leading into *node*."""
        end = node.end if node.end is not None else len(self._text)
        return end - node.start

    def locate(self, global_pos: int) -> tuple[int, int]:
        """Map a global text position to ``(seq_index, local_offset)``."""
        if not 0 <= global_pos < len(self._text):
            raise ValidationError(f"position {global_pos} outside text")
        idx = bisect.bisect_right(self._seq_starts, global_pos) - 1
        return idx, global_pos - self._seq_starts[idx]

    def find(self, pattern: Iterable[int]) -> list[tuple[int, int]]:
        """Exact occurrences of *pattern*: ``(seq_index, offset)`` pairs.

        Used by tests to validate construction; returns all positions
        where the symbol pattern occurs in any stored sequence.
        """
        symbols = [int(v) for v in pattern]
        node = self._root
        depth = 0  # symbols of the pattern matched so far
        edge_pos = 0  # position within the current edge
        current: Optional[SuffixTreeNode] = None
        for symbol in symbols:
            if current is None or edge_pos == self.edge_length(current):
                if current is not None:
                    node = current
                current = node.children.get(symbol)
                if current is None:
                    return []
                edge_pos = 0
            if self._text[current.start + edge_pos] != symbol:
                return []
            edge_pos += 1
            depth += 1
        assert current is not None
        return sorted(
            self.locate(leaf.suffix_start)
            for leaf in self._iter_leaves(current)
            if leaf.suffix_start is not None
        )

    def _iter_leaves(self, node: SuffixTreeNode) -> Iterator[SuffixTreeNode]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                yield current
            else:
                stack.extend(current.children.values())

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        text = self._text
        root = self._root
        active_node = root
        active_edge = 0  # index into text of the active edge's first symbol
        active_length = 0
        remainder = 0

        for i, symbol in enumerate(text):
            last_new_node: Optional[SuffixTreeNode] = None
            remainder += 1
            while remainder > 0:
                if active_length == 0:
                    active_edge = i
                edge_symbol = text[active_edge]
                child = active_node.children.get(edge_symbol)
                if child is None:
                    leaf = SuffixTreeNode(i, None)
                    self._node_count += 1
                    active_node.children[edge_symbol] = leaf
                    if last_new_node is not None:
                        last_new_node.link = active_node
                        last_new_node = None
                else:
                    edge_len = self._current_edge_length(child, i)
                    if active_length >= edge_len:
                        active_edge += edge_len
                        active_length -= edge_len
                        active_node = child
                        continue
                    if text[child.start + active_length] == symbol:
                        active_length += 1
                        if last_new_node is not None:
                            last_new_node.link = active_node
                            last_new_node = None
                        break
                    # Split the edge.
                    split = SuffixTreeNode(child.start, child.start + active_length)
                    self._node_count += 1
                    active_node.children[edge_symbol] = split
                    leaf = SuffixTreeNode(i, None)
                    self._node_count += 1
                    split.children[symbol] = leaf
                    child.start += active_length
                    split.children[text[child.start]] = child
                    if last_new_node is not None:
                        last_new_node.link = split
                    last_new_node = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = i - remainder + 1
                elif active_node is not root:
                    active_node = active_node.link if active_node.link else root

    def _current_edge_length(self, node: SuffixTreeNode, position: int) -> int:
        end = node.end if node.end is not None else position + 1
        return end - node.start

    def _assign_suffix_starts(self) -> None:
        """Label each leaf with the global start of its suffix."""
        total = len(self._text)
        stack: list[tuple[SuffixTreeNode, int]] = [(self._root, 0)]
        leaves = 0
        while stack:
            node, depth = stack.pop()
            if node is not self._root:
                depth += self.edge_length(node)
            if node.is_leaf:
                node.suffix_start = total - depth
                leaves += 1
            else:
                for child in node.children.values():
                    stack.append((child, depth))
        if leaves != total:
            raise IndexCorruptionError(
                f"suffix tree has {leaves} leaves for text of length {total}"
            )


def _terminator(seq_index: int) -> int:
    """The unique terminator symbol of sequence *seq_index* (negative)."""
    return -(seq_index + 1)


def terminator_sequence(symbol: int) -> int:
    """Inverse of the terminator encoding: which sequence ended here."""
    if symbol >= 0:
        raise ValidationError(f"{symbol} is not a terminator symbol")
    return -symbol - 1
