"""Value categorization for the suffix-tree filter (Park et al.).

Numeric elements map to a small integer alphabet before suffix-tree
construction.  Two strategies are provided:

* **equal-width** (the paper's "equal-length-interval method", used
  with 100 categories in its experiments): the observed value range is
  divided into ``n_categories`` intervals of equal width.
* **equal-frequency** (extension): interval boundaries are the value
  quantiles, so each category holds roughly the same number of database
  elements — finer resolution where the data is dense.

The categorizer also provides the *minimum possible distance* between a
category interval and a raw query value — the quantity the suffix-tree
traversal accumulates.  Because it never overestimates the true element
distance, filtering with it cannot cause false dismissal.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ...exceptions import CategorizationError, ValidationError
from ...types import SequenceLike, as_array

__all__ = ["Categorizer"]

_STRATEGIES = ("equal-width", "equal-frequency")


class Categorizer:
    """Maps numeric values to category indexes.

    Fit on the database once (:meth:`fit`), then :meth:`transform`
    sequences to integer symbol arrays.  Values outside the fitted range
    (possible for query sequences) are clamped to the boundary
    categories; the min-distance functions remain sound because a
    clamped category's interval still underestimates distances only on
    the database side, which is the side being categorized.

    Parameters
    ----------
    n_categories:
        Alphabet size (paper's experiments: 100).
    strategy:
        ``"equal-width"`` (paper default) or ``"equal-frequency"``.
    """

    def __init__(
        self, n_categories: int = 100, *, strategy: str = "equal-width"
    ) -> None:
        if n_categories < 1:
            raise ValidationError(
                f"n_categories must be >= 1, got {n_categories}"
            )
        if strategy not in _STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self._n = n_categories
        self._strategy = strategy
        self._lo: float | None = None
        self._hi: float | None = None
        self._width: float | None = None
        self._edges: np.ndarray | None = None  # equal-frequency boundaries

    # -- fitting ----------------------------------------------------------

    def fit(self, sequences: Iterable[SequenceLike]) -> "Categorizer":
        """Learn category boundaries from the database sequences."""
        if self._strategy == "equal-frequency":
            return self._fit_equal_frequency(sequences)
        lo = np.inf
        hi = -np.inf
        seen = False
        for seq in sequences:
            arr = as_array(seq)
            if arr.size == 0:
                continue
            seen = True
            lo = min(lo, float(arr.min()))
            hi = max(hi, float(arr.max()))
        if not seen:
            raise CategorizationError("cannot fit on an empty database")
        if hi == lo or (hi - lo) / self._n <= 0.0:
            # Degenerate (or denormal-underflowing) range: use a
            # unit-wide bucket space so widths stay positive.
            hi = lo + 1.0
        self._lo, self._hi = lo, hi
        self._width = (hi - lo) / self._n
        return self

    def _fit_equal_frequency(
        self, sequences: Iterable[SequenceLike]
    ) -> "Categorizer":
        chunks = [as_array(seq) for seq in sequences]
        chunks = [c for c in chunks if c.size]
        if not chunks:
            raise CategorizationError("cannot fit on an empty database")
        values = np.concatenate(chunks)
        lo, hi = float(values.min()), float(values.max())
        if hi == lo:
            hi = lo + 1.0
        quantiles = np.quantile(values, np.linspace(0, 1, self._n + 1))
        # Boundaries must be strictly increasing to define n intervals;
        # collapse duplicates by nudging along the global range.
        edges = np.asarray(quantiles, dtype=np.float64)
        edges[0], edges[-1] = lo, hi
        for i in range(1, edges.size):
            if edges[i] <= edges[i - 1]:
                edges[i] = np.nextafter(edges[i - 1], np.inf)
        edges[-1] = max(edges[-1], hi)
        self._lo, self._hi = lo, float(edges[-1])
        self._edges = edges
        self._width = (self._hi - lo) / self._n  # nominal, for sizing only
        return self

    @property
    def strategy(self) -> str:
        """The fitted boundary strategy."""
        return self._strategy

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._width is not None

    @property
    def n_categories(self) -> int:
        """Number of equal-width intervals."""
        return self._n

    @property
    def value_range(self) -> tuple[float, float]:
        """The fitted ``(low, high)`` global range."""
        self._require_fitted()
        assert self._lo is not None and self._hi is not None
        return self._lo, self._hi

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise CategorizationError("categorizer must be fitted first")

    # -- mapping ------------------------------------------------------------

    def transform(self, sequence: SequenceLike) -> np.ndarray:
        """Categorize a sequence into an int64 symbol array.

        Guaranteed consistent with :meth:`interval`: every in-range
        value lies inside the interval of its assigned category, even
        on floating-point bucket boundaries (the assignment is repaired
        by one bucket where division rounding would violate it) —
        without this, an exact-tolerance search could falsely dismiss a
        boundary value.
        """
        self._require_fitted()
        arr = as_array(sequence)
        if self._edges is not None:
            cats = np.searchsorted(self._edges, arr, side="right") - 1
            return np.clip(cats, 0, self._n - 1)
        assert self._lo is not None and self._width is not None
        cats = np.floor((arr - self._lo) / self._width).astype(np.int64)
        cats = np.clip(cats, 0, self._n - 1)
        # Repair rounding at bucket boundaries.
        lo_bound = self._lo + cats * self._width
        cats = np.where(arr < lo_bound, cats - 1, cats)
        hi_bound = self._lo + (cats + 1) * self._width
        cats = np.where(arr > hi_bound, cats + 1, cats)
        return np.clip(cats, 0, self._n - 1)

    def interval(self, category: int) -> tuple[float, float]:
        """The ``[low, high]`` value interval of *category*.

        The first interval's low and the last interval's high are the
        exact fitted bounds (no accumulated rounding), so the union of
        all intervals covers the fitted range precisely.
        """
        self._require_fitted()
        if not 0 <= category < self._n:
            raise ValidationError(
                f"category must be in [0, {self._n}), got {category}"
            )
        if self._edges is not None:
            return float(self._edges[category]), float(self._edges[category + 1])
        assert self._lo is not None and self._width is not None
        assert self._hi is not None
        lo = self._lo + category * self._width
        hi = self._hi if category == self._n - 1 else lo + self._width
        return lo, hi

    # -- lower-bound distances -----------------------------------------------

    def min_distance_to_value(self, category: int, value: float) -> float:
        """Smallest ``|x - value|`` over ``x`` in the category interval.

        Zero when *value* falls inside the interval.  This is the sound
        per-element cost for traversing the suffix tree against a raw
        (uncategorized) query.
        """
        lo, hi = self.interval(category)
        if value < lo:
            return lo - value
        if value > hi:
            return value - hi
        return 0.0

    def min_distance_between(self, category_a: int, category_b: int) -> float:
        """Smallest distance between two category intervals.

        Used when the query is itself categorized: ``(gap - 1)`` whole
        interval widths separate non-adjacent categories.
        """
        lo_a, hi_a = self.interval(category_a)
        lo_b, hi_b = self.interval(category_b)
        if hi_a < lo_b:
            return lo_b - hi_a
        if hi_b < lo_a:
            return lo_a - hi_b
        return 0.0
