"""Time-warping traversal of the suffix tree (the ST-Filter algorithm).

Walks the generalized suffix tree depth-first, maintaining for the
current root-to-position path ``P`` (a string of categories) a boolean
dynamic-programming column ``col[j]`` = "some warping of ``P`` against
``Q[:j]`` keeps every element cost within the tolerance", where the
per-element cost is the *minimum possible distance* between the
category's value interval and the raw query element.  Since that cost
never exceeds the true element distance, the column never under-reports
feasibility for any data (sub)sequence spelled by the path — pruning a
branch whose column is all-false is free of false dismissal, and
surviving sequence ends are exactly ST-Filter's candidates.

The column update is the same vectorized run-propagation sweep the DTW
reachability test uses (one numpy pass per tree symbol), which is what
makes the traversal affordable in pure Python.

Whole matching requires the path to spell a *complete* sequence: the
traversal only emits a candidate when it reaches a terminator at depth
equal to that sequence's length.  Subsequence matching emits a
candidate ``(seq_id, offset, length)`` for every path position whose
final column entry is feasible (every root-to-position path in a
suffix tree is some subsequence of some stored sequence).
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ValidationError
from ...types import SequenceLike, as_array
from ..rtree.stats import AccessStats
from .categorize import Categorizer
from .ukkonen import GeneralizedSuffixTree, SuffixTreeNode, terminator_sequence

__all__ = ["WarpingTraversal"]


class WarpingTraversal:
    """Pruned DTW search over a categorized suffix tree.

    Parameters
    ----------
    tree:
        The generalized suffix tree over categorized sequences.
    categorizer:
        The fitted categorizer that produced the tree's symbols;
        supplies category-interval-to-value minimum distances.
    stats:
        Optional access-statistics sink; every node visit is recorded
        (one visit models one page read of the suffix tree).
    """

    def __init__(
        self,
        tree: GeneralizedSuffixTree,
        categorizer: Categorizer,
        *,
        stats: AccessStats | None = None,
    ) -> None:
        self._tree = tree
        self._categorizer = categorizer
        self.stats = stats if stats is not None else AccessStats()

    # -- public queries ------------------------------------------------------

    def whole_match_candidates(
        self, query: SequenceLike, epsilon: float
    ) -> list[int]:
        """Sequence ids that may satisfy ``D_tw(S, Q) <= epsilon``.

        Guaranteed superset of the true whole-matching answers.
        """
        q = self._check_query(query, epsilon)
        candidates: set[int] = set()

        def on_sequence_end(seq_index: int, depth: int, feasible: bool) -> None:
            if feasible and depth == self._tree.sequence_length(seq_index):
                candidates.add(seq_index)

        self._traverse(q, epsilon, on_sequence_end, None)
        return sorted(candidates)

    def subsequence_candidates(
        self, query: SequenceLike, epsilon: float
    ) -> list[tuple[int, int, int]]:
        """``(seq_id, offset, length)`` triples that may match the query.

        Each triple names a categorized subsequence whose minimum
        possible time-warping distance to the query is within
        tolerance; the caller verifies with the true distance.
        """
        q = self._check_query(query, epsilon)
        matches: set[tuple[int, int, int]] = set()

        def on_within(node: SuffixTreeNode, depth: int) -> None:
            for leaf in self._tree._iter_leaves(node):
                if leaf.suffix_start is None:
                    continue
                seq_index, offset = self._tree.locate(leaf.suffix_start)
                if offset + depth <= self._tree.sequence_length(seq_index):
                    matches.add((seq_index, offset, depth))

        self._traverse(q, epsilon, None, on_within)
        return sorted(matches)

    # -- internals --------------------------------------------------------------

    def _check_query(self, query: SequenceLike, epsilon: float) -> np.ndarray:
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        return as_array(query)

    def _feasible_row(
        self, category: int, q: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Boolean mask: query elements within *epsilon* of the interval."""
        lo, hi = self._categorizer.interval(category)
        return (q >= lo - epsilon) & (q <= hi + epsilon)

    def _traverse(
        self,
        q: np.ndarray,
        epsilon: float,
        on_sequence_end,
        on_within,
    ) -> None:
        m = q.size
        tree = self._tree
        text = tree.text
        feasible_cache: dict[int, np.ndarray] = {}
        idx = np.arange(m)
        initial = np.zeros(m + 1, dtype=bool)
        initial[0] = True  # empty path matches the empty query prefix
        # Stack of (node, column at the node's start, path depth so far).
        stack: list[tuple[SuffixTreeNode, np.ndarray, int]] = []
        root = tree.root
        self.stats.record_node(is_leaf=False, entries=len(root.children))
        for child in root.children.values():
            stack.append((child, initial, 0))

        while stack:
            node, col, depth = stack.pop()
            self.stats.record_node(is_leaf=node.is_leaf, entries=len(node.children))
            end = node.end if node.end is not None else len(text)
            pruned = False
            reached_end = False
            for pos in range(node.start, end):
                symbol = text[pos]
                if symbol < 0:
                    if on_sequence_end is not None:
                        on_sequence_end(
                            terminator_sequence(symbol), depth, bool(col[m])
                        )
                    reached_end = True
                    break
                ok_row = feasible_cache.get(symbol)
                if ok_row is None:
                    ok_row = self._feasible_row(symbol, q, epsilon)
                    feasible_cache[symbol] = ok_row
                col = _advance_column(col, ok_row, idx)
                depth += 1
                if not col.any():
                    pruned = True
                    break
                if on_within is not None and col[m]:
                    # Report at the current in-edge position; leaves below
                    # this node all share the path spelled so far.
                    on_within(node, depth)
            if pruned or reached_end:
                continue
            for child in node.children.values():
                stack.append((child, col, depth))


def _advance_column(
    col: np.ndarray, ok_row: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """One vectorized step of the feasibility DP along the tree path.

    ``new[j] = ok[j-1] and (col[j] or col[j-1] or new[j-1])`` with
    ``new[0] = False`` (a non-empty path cannot match an empty query).
    The within-row dependency through ``new[j-1]`` is resolved with the
    run-propagation sweep: a cell is feasible iff a seeded cell precedes
    it in its maximal run of admissible cells.
    """
    m = ok_row.size
    seed = ok_row & (col[1:] | col[:-1])
    new = np.zeros(m + 1, dtype=bool)
    if not seed.any():
        return new
    last_block = np.maximum.accumulate(np.where(~ok_row, idx, -1))
    last_seed = np.maximum.accumulate(np.where(seed, idx, -1))
    new[1:] = ok_row & (last_seed > last_block)
    return new
