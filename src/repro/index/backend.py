"""Pluggable index backends — one protocol, eight candidate generators.

The paper's method is the *combination* of a metric lower bound with a
spatial index, and explicitly leaves the index choice open ("any
multi-dimensional indexes such as the R-tree, R+-tree, R*-tree, and
X-tree can be used").  This module makes that choice a first-class
runtime parameter: every index subsystem the repo ships — the R-tree
family, STR bulk loading, the suffix tree, FastMap — is wrapped behind
one :class:`IndexBackend` contract the query engine composes with the
filter cascade, so ``TimeWarpingDatabase(backend="rstar")`` is all it
takes to swap the access method.

The contract is *sequence-level*, not rectangle-level: a backend is
fed ``(seq_id, values)`` pairs and asked for candidate ids given a raw
query and a tolerance.  Geometric backends derive the 4-tuple feature
point internally; the suffix-tree backend categorizes and traverses;
FastMap projects.  For every backend with ``exact = True`` the
candidate set is a superset of the true answers (no false dismissal),
so downstream verification yields identical answers regardless of the
backend chosen.  FastMap is the deliberate exception (``exact =
False``): its embedding of the non-metric ``D_tw`` is not contractive,
and the paper excludes it for exactly that deficiency — it is kept
behind the same protocol so the deficiency stays measurable.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Iterator

import numpy as np

from ..core.features import extract_feature
from ..core.lower_bound import feature_rect, filter_margin
from ..distance.dtw import dtw_max
from ..exceptions import EntryNotFoundError, ValidationError
from ..fastmap.fastmap import FastMap
from ..types import SequenceLike
from .rtree.bulk import STRBulkLoader
from .rtree.geometry import Rect
from .rtree.persist import load_rtree, save_rtree
from .rtree.rplus import RPlusTree
from .rtree.rstar import RStarTree
from .rtree.rtree import RTree, SplitStrategy
from .rtree.stats import AccessStats
from .rtree.xtree import XTree
from .suffixtree.categorize import Categorizer
from .suffixtree.search import WarpingTraversal
from .suffixtree.ukkonen import GeneralizedSuffixTree

__all__ = [
    "IndexNodeStats",
    "IndexBackend",
    "RTreeBackend",
    "RStarBackend",
    "RPlusBackend",
    "XTreeBackend",
    "STRBulkBackend",
    "SuffixTreeBackend",
    "FastMapBackend",
    "LinearBackend",
    "BACKENDS",
    "BACKEND_NAMES",
    "EXACT_BACKEND_NAMES",
    "make_backend",
]

#: Approximate serialized bytes per suffix-tree node (edge bounds,
#: child table slot, suffix link) — matches the ST-Filter cost model.
_SUFFIX_NODE_BYTES = 48

#: Serialized bytes per linear-scan entry: 4 float64 components + id.
_LINEAR_ENTRY_BYTES = 40


def _feature_point(values: SequenceLike) -> tuple[float, ...]:
    """The 4-tuple feature point of a raw value sequence."""
    return extract_feature(np.asarray(values, dtype=float)).as_tuple()


@dataclass(frozen=True)
class IndexNodeStats:
    """Structural statistics of a backend's index.

    Attributes
    ----------
    nodes:
        Total node count (each node models one or more disk pages).
    height:
        Tree height in levels; 0 when the structure does not track one.
    size_in_bytes:
        Approximate on-disk size of the index.
    """

    nodes: int
    height: int
    size_in_bytes: int


class IndexBackend(abc.ABC):
    """A pluggable candidate-generating index over stored sequences.

    Contract
    --------
    * :meth:`insert` / :meth:`delete` keep the index synchronized with
      the storage layer; ids are arbitrary non-negative integers.
    * :meth:`range_search` returns candidate ids for a raw query and a
      tolerance.  When :attr:`exact` is True the candidates are a
      superset of ``{S : D_tw(S, Q) <= eps}`` — no false dismissal.
    * :meth:`knn_iter` lazily yields ``(lower_bound, seq_id)`` pairs in
      non-decreasing lower-bound order, where ``lower_bound <=
      D_tw(S, Q)``; the classical filter-and-refine kNN loop consumes
      it incrementally.
    * :meth:`save` / :meth:`load` optionally persist the structure;
      backends without a page-exact format return ``False`` / ``None``
      and are rebuilt from the data file.
    * :attr:`access` accumulates node-visit counters for per-query I/O
      charging; it survives internal rebuilds of the wrapped structure.
    """

    #: Registry name of the backend.
    name: ClassVar[str] = "abstract"
    #: Whether the candidate set provably contains every true answer.
    exact: ClassVar[bool] = True

    def __init__(self, *, page_size: int = 1024) -> None:
        if page_size <= 0:
            raise ValidationError(f"page_size must be positive, got {page_size}")
        self._page_size = page_size
        self._access = AccessStats(scope=f"index.{type(self).name}")

    @property
    def access(self) -> AccessStats:
        """Node-visit counters of every traversal run so far."""
        return self._access

    @property
    def page_size(self) -> int:
        """Simulated page size the index is charged against."""
        return self._page_size

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed sequences."""

    @abc.abstractmethod
    def insert(self, seq_id: int, values: SequenceLike) -> None:
        """Index one sequence."""

    @abc.abstractmethod
    def delete(self, seq_id: int, values: SequenceLike) -> None:
        """Remove one sequence; raises ``EntryNotFoundError`` if absent."""

    def bulk_load(self, items: Iterable[tuple[int, SequenceLike]]) -> None:
        """Index many sequences at once (default: repeated insertion)."""
        for seq_id, values in items:
            self.insert(seq_id, values)

    @abc.abstractmethod
    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        """Candidate ids for query *values* at tolerance *epsilon*."""

    @abc.abstractmethod
    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        """Lazily yield ``(lower_bound, seq_id)`` by ascending bound."""

    @abc.abstractmethod
    def node_stats(self) -> IndexNodeStats:
        """Structural statistics of the index."""

    def save(self, path: str | Path) -> bool:
        """Persist the index to *path*; False when unsupported."""
        return False

    @classmethod
    def load(
        cls, path: str | Path, *, page_size: int = 1024
    ) -> "IndexBackend | None":
        """Reload an index written by :meth:`save`; None when unsupported."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self)} sequences)"


def _knn_from_features(
    pairs: Iterable[tuple[int, tuple[float, ...]]], values: SequenceLike
) -> Iterator[tuple[float, int]]:
    """Fallback kNN ordering: sort ``D_tw-lb`` over stored features.

    Used by backends whose native structure orders candidates by
    something other than the metric lower bound (suffix tree, FastMap).
    Exact — the yielded bounds are true ``D_tw-lb`` values — but eager:
    the whole feature list is scored up front.
    """
    q = _feature_point(values)
    scored = sorted(
        (max(abs(f - c) for f, c in zip(point, q)), seq_id)
        for seq_id, point in pairs
    )
    yield from scored


class FeaturePointBackend(IndexBackend):
    """Shared adapter for trees indexing the 4-d feature point."""

    def __init__(self, *, page_size: int = 1024) -> None:
        super().__init__(page_size=page_size)
        self._tree: RTree | RPlusTree = self._make_tree()
        self._tree.stats = self._access

    @abc.abstractmethod
    def _make_tree(self) -> RTree | RPlusTree:
        """Construct the empty underlying tree."""

    @property
    def tree(self) -> RTree | RPlusTree:
        """The underlying feature-point tree."""
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, seq_id: int, values: SequenceLike) -> None:
        self._tree.insert_point(_feature_point(values), seq_id)

    def delete(self, seq_id: int, values: SequenceLike) -> None:
        self._tree.delete(_feature_point(values), seq_id)

    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        query_feature = extract_feature(np.asarray(values, dtype=float))
        return self._tree.range_search(feature_rect(query_feature, epsilon))

    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        return self._tree.knn_iter(_feature_point(values))

    def node_stats(self) -> IndexNodeStats:
        return IndexNodeStats(
            nodes=self._tree.node_count(),
            height=self._tree.height,
            size_in_bytes=self._tree.size_in_bytes(),
        )


class RTreeBackend(FeaturePointBackend):
    """Guttman R-tree (the facade's default, exactly the seed behavior).

    Incremental inserts use the configured split heuristic; bulk loads
    STR-repack the whole tree (paper section 4.3.1).
    """

    name = "rtree"

    def __init__(
        self,
        *,
        page_size: int = 1024,
        split: SplitStrategy = SplitStrategy.QUADRATIC,
    ) -> None:
        self._split = split
        super().__init__(page_size=page_size)

    def _make_tree(self) -> RTree:
        return RTree(4, page_size=self._page_size, split=self._split)

    def bulk_load(self, items: Iterable[tuple[int, SequenceLike]]) -> None:
        loader = STRBulkLoader(4, page_size=self._page_size)
        for rect, record in self._tree.items():
            loader.add(rect, record)
        for seq_id, values in items:
            loader.add(_feature_point(values), seq_id)
        self._tree = loader.build()
        self._tree.stats = self._access

    def save(self, path: str | Path) -> bool:
        assert isinstance(self._tree, RTree)
        save_rtree(self._tree, path)
        return True

    @classmethod
    def load(
        cls, path: str | Path, *, page_size: int = 1024
    ) -> "RTreeBackend":
        backend = cls(page_size=page_size)
        backend._tree = load_rtree(path)
        backend._tree.stats = backend._access
        return backend


class RStarBackend(FeaturePointBackend):
    """R*-tree: overlap-minimizing splits + forced reinsertion."""

    name = "rstar"

    def _make_tree(self) -> RStarTree:
        return RStarTree(4, page_size=self._page_size)

    def save(self, path: str | Path) -> bool:
        assert isinstance(self._tree, RTree)
        save_rtree(self._tree, path)
        return True

    @classmethod
    def load(
        cls, path: str | Path, *, page_size: int = 1024
    ) -> "RStarBackend":
        loaded = load_rtree(path)
        tree = RStarTree(
            4,
            page_size=None,
            min_entries=loaded.min_entries,
            max_entries=loaded.max_entries,
        )
        tree._page_size = loaded.page_size
        tree._adopt(loaded._root, len(loaded))
        backend = cls(page_size=page_size)
        backend._tree = tree
        backend._tree.stats = backend._access
        return backend


class RPlusBackend(FeaturePointBackend):
    """R+-tree: disjoint sibling regions, single-path point descent."""

    name = "rplus"

    def _make_tree(self) -> RPlusTree:
        return RPlusTree(4, page_size=self._page_size)


class XTreeBackend(FeaturePointBackend):
    """X-tree: supernodes instead of high-overlap splits.

    Not persistable: supernodes span several pages and do not fit the
    page-exact R-tree file format, so :meth:`save` declines and the
    engine rebuilds from the data file on load.
    """

    name = "xtree"

    def _make_tree(self) -> XTree:
        return XTree(4, page_size=self._page_size)


class STRBulkBackend(IndexBackend):
    """A *fully packed* R-tree, lazily STR-rebuilt after mutations.

    Where :class:`RTreeBackend` packs only on explicit bulk loads and
    lets incremental inserts degrade occupancy, this backend keeps the
    entire entry set and re-runs the STR pack on the first query after
    any mutation.  Every query therefore runs against a tree at maximal
    page occupancy — fewer nodes, fewer node reads per range query —
    at the cost of O(n log n) repacking per mutation batch.
    """

    name = "strbulk"

    def __init__(self, *, page_size: int = 1024) -> None:
        super().__init__(page_size=page_size)
        self._features: dict[int, tuple[float, ...]] = {}
        self._built: RTree | None = None

    def __len__(self) -> int:
        return len(self._features)

    @property
    def tree(self) -> RTree:
        """The packed R-tree over the current entries."""
        return self._packed()

    def _packed(self) -> RTree:
        if self._built is None:
            loader = STRBulkLoader(4, page_size=self._page_size)
            for seq_id, point in self._features.items():
                loader.add(point, seq_id)
            self._built = loader.build()
            self._built.stats = self._access
        return self._built

    def insert(self, seq_id: int, values: SequenceLike) -> None:
        self._features[seq_id] = _feature_point(values)
        self._built = None

    def delete(self, seq_id: int, values: SequenceLike) -> None:
        if seq_id not in self._features:
            raise EntryNotFoundError(f"record {seq_id} not in index")
        del self._features[seq_id]
        self._built = None

    def bulk_load(self, items: Iterable[tuple[int, SequenceLike]]) -> None:
        for seq_id, values in items:
            self._features[seq_id] = _feature_point(values)
        self._built = None

    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        query_feature = extract_feature(np.asarray(values, dtype=float))
        return self._packed().range_search(feature_rect(query_feature, epsilon))

    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        return self._packed().knn_iter(_feature_point(values))

    def node_stats(self) -> IndexNodeStats:
        tree = self._packed()
        return IndexNodeStats(
            nodes=tree.node_count(),
            height=tree.height,
            size_in_bytes=tree.size_in_bytes(),
        )

    def save(self, path: str | Path) -> bool:
        save_rtree(self._packed(), path)
        return True

    @classmethod
    def load(
        cls, path: str | Path, *, page_size: int = 1024
    ) -> "STRBulkBackend":
        backend = cls(page_size=page_size)
        tree = load_rtree(path)
        backend._features = {
            record: rect.lows for rect, record in tree.items()
        }
        backend._built = tree
        backend._built.stats = backend._access
        return backend


class SuffixTreeBackend(IndexBackend):
    """Categorizer + generalized suffix tree (the ST-Filter substrate).

    Candidates come from the pruned time-warping DP over the
    categorized tree — still a superset of the true answers (the
    categorized bound underestimates ``D_tw``), so the backend is
    exact.  The categorizer and tree are rebuilt lazily after
    mutations, since category boundaries depend on the global value
    range.
    """

    name = "suffixtree"

    def __init__(
        self,
        *,
        page_size: int = 1024,
        n_categories: int = 100,
        strategy: str = "equal-width",
    ) -> None:
        super().__init__(page_size=page_size)
        self._n_categories = n_categories
        self._strategy = strategy
        self._values: dict[int, np.ndarray] = {}
        self._categorizer: Categorizer | None = None
        self._built: GeneralizedSuffixTree | None = None
        self._position_ids: list[int] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def n_categories(self) -> int:
        """Number of categorization intervals."""
        return self._n_categories

    @property
    def tree(self) -> GeneralizedSuffixTree:
        """The built suffix tree over the current contents."""
        self._ensure_built()
        if self._built is None:
            raise ValidationError("suffix tree backend holds no sequences")
        return self._built

    @property
    def categorizer(self) -> Categorizer:
        """The fitted categorizer over the current contents."""
        self._ensure_built()
        if self._categorizer is None:
            raise ValidationError("suffix tree backend holds no sequences")
        return self._categorizer

    @property
    def position_ids(self) -> list[int]:
        """Sequence ids by suffix-tree position index."""
        self._ensure_built()
        return list(self._position_ids)

    def _ensure_built(self) -> None:
        if self._built is not None or not self._values:
            return
        categorizer = Categorizer(
            self._n_categories, strategy=self._strategy
        ).fit(self._values.values())
        self._position_ids = list(self._values.keys())
        categorized = [
            categorizer.transform(values) for values in self._values.values()
        ]
        self._built = GeneralizedSuffixTree(categorized)
        self._categorizer = categorizer

    def insert(self, seq_id: int, values: SequenceLike) -> None:
        self._values[seq_id] = np.asarray(values, dtype=float)
        self._built = None

    def delete(self, seq_id: int, values: SequenceLike) -> None:
        if seq_id not in self._values:
            raise EntryNotFoundError(f"record {seq_id} not in index")
        del self._values[seq_id]
        self._built = None

    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        if not self._values:
            return []
        self._ensure_built()
        assert self._built is not None and self._categorizer is not None
        traversal = WarpingTraversal(
            self._built, self._categorizer, stats=self._access
        )
        query = np.asarray(values, dtype=float)
        positions = traversal.whole_match_candidates(query, epsilon)
        return [self._position_ids[position] for position in positions]

    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        pairs = [
            (seq_id, _feature_point(stored))
            for seq_id, stored in self._values.items()
        ]
        return _knn_from_features(pairs, values)

    def node_stats(self) -> IndexNodeStats:
        if not self._values:
            return IndexNodeStats(nodes=0, height=0, size_in_bytes=0)
        self._ensure_built()
        assert self._built is not None
        nodes = self._built.node_count()
        return IndexNodeStats(
            nodes=nodes,
            height=0,
            size_in_bytes=nodes * _SUFFIX_NODE_BYTES,
        )


class FastMapBackend(IndexBackend):
    """FastMap embedding + STR-packed image R-tree (``exact = False``).

    ``D_tw`` is not a metric, so the embedding is not contractive and a
    qualifying sequence's image can land outside the query ball: range
    searches may **falsely dismiss**.  Kept behind the protocol so the
    deficiency is measurable; :meth:`knn_iter` deliberately falls back
    to true feature lower bounds so kNN remains exact even here.
    """

    name = "fastmap"
    exact = False

    def __init__(
        self, *, page_size: int = 1024, k: int = 4, seed: int = 0
    ) -> None:
        super().__init__(page_size=page_size)
        self._k = k
        self._seed = seed
        self._values: dict[int, np.ndarray] = {}
        self._fastmap: FastMap | None = None
        self._built: RTree | None = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def k(self) -> int:
        """Embedding dimensionality."""
        return self._k

    @property
    def tree(self) -> RTree:
        """The image-space R-tree over the current contents."""
        self._ensure_built()
        if self._built is None:
            raise ValidationError("FastMap backend holds no sequences")
        return self._built

    def _ensure_built(self) -> None:
        # FastMap needs >= 2 objects to choose pivots; below that the
        # backend stays unbuilt and range_search degenerates to "all".
        if self._built is not None or len(self._values) < 2:
            return
        arrays = list(self._values.values())
        fastmap = FastMap(
            lambda a, b: dtw_max(a, b), self._k, seed=self._seed
        )
        coords = fastmap.fit(arrays)
        loader = STRBulkLoader(self._k, page_size=self._page_size)
        for point, seq_id in zip(coords, self._values.keys()):
            loader.add(tuple(float(v) for v in point), seq_id)
        self._built = loader.build()
        self._built.stats = self._access
        self._fastmap = fastmap

    def insert(self, seq_id: int, values: SequenceLike) -> None:
        self._values[seq_id] = np.asarray(values, dtype=float)
        self._built = None

    def delete(self, seq_id: int, values: SequenceLike) -> None:
        if seq_id not in self._values:
            raise EntryNotFoundError(f"record {seq_id} not in index")
        del self._values[seq_id]
        self._built = None

    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        if not self._values:
            return []
        self._ensure_built()
        if self._built is None or self._fastmap is None:
            return sorted(self._values)
        point = self._fastmap.project(np.asarray(values, dtype=float))
        rect = Rect.from_intervals(
            (float(c) - epsilon, float(c) + epsilon) for c in point
        )
        return self._built.range_search(rect)

    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        pairs = [
            (seq_id, _feature_point(stored))
            for seq_id, stored in self._values.items()
        ]
        return _knn_from_features(pairs, values)

    def node_stats(self) -> IndexNodeStats:
        self._ensure_built()
        if self._built is None:
            return IndexNodeStats(nodes=0, height=0, size_in_bytes=0)
        return IndexNodeStats(
            nodes=self._built.node_count(),
            height=self._built.height,
            size_in_bytes=self._built.size_in_bytes(),
        )


class LinearBackend(IndexBackend):
    """No index at all: a brute-force sweep over stored feature points.

    The fallback (and the baseline any real index must beat): a range
    search compares every stored feature against the query feature with
    the same inclusive ``D_tw-lb`` cutoff the R-tree rectangle encodes,
    so the candidate set is identical to the R-tree family's.  I/O is
    charged as a sequential sweep of packed feature entries.
    """

    name = "linear"

    def __init__(self, *, page_size: int = 1024) -> None:
        super().__init__(page_size=page_size)
        self._features: dict[int, tuple[float, ...]] = {}

    def __len__(self) -> int:
        return len(self._features)

    def _charge_sweep(self) -> None:
        per_page = max(1, self._page_size // _LINEAR_ENTRY_BYTES)
        pages = -(-len(self._features) // per_page)
        for _ in range(pages):
            self._access.record_node(is_leaf=True, entries=per_page)

    def insert(self, seq_id: int, values: SequenceLike) -> None:
        self._features[seq_id] = _feature_point(values)

    def delete(self, seq_id: int, values: SequenceLike) -> None:
        if seq_id not in self._features:
            raise EntryNotFoundError(f"record {seq_id} not in index")
        del self._features[seq_id]

    def range_search(self, values: SequenceLike, epsilon: float) -> list[int]:
        self._charge_sweep()
        if not self._features:
            return []
        ids = list(self._features.keys())
        feats = np.array([self._features[i] for i in ids], dtype=float)
        q = np.asarray(_feature_point(values), dtype=float)
        cutoff = epsilon + filter_margin(q, epsilon)
        mask = np.all(np.abs(feats - q) <= cutoff, axis=1)
        return [seq_id for seq_id, keep in zip(ids, mask) if keep]

    def knn_iter(self, values: SequenceLike) -> Iterator[tuple[float, int]]:
        self._charge_sweep()
        return _knn_from_features(self._features.items(), values)

    def node_stats(self) -> IndexNodeStats:
        size = len(self._features) * _LINEAR_ENTRY_BYTES
        per_page = max(1, self._page_size // _LINEAR_ENTRY_BYTES)
        pages = -(-len(self._features) // per_page)
        return IndexNodeStats(nodes=pages, height=1, size_in_bytes=size)

    def save(self, path: str | Path) -> bool:
        payload = {
            str(seq_id): list(point)
            for seq_id, point in self._features.items()
        }
        Path(path).write_text(json.dumps(payload))
        return True

    @classmethod
    def load(
        cls, path: str | Path, *, page_size: int = 1024
    ) -> "LinearBackend":
        backend = cls(page_size=page_size)
        raw = json.loads(Path(path).read_text())
        backend._features = {
            int(seq_id): tuple(float(v) for v in point)
            for seq_id, point in raw.items()
        }
        return backend


#: Registry of every available backend, keyed by name.
BACKENDS: dict[str, type[IndexBackend]] = {
    RTreeBackend.name: RTreeBackend,
    RStarBackend.name: RStarBackend,
    RPlusBackend.name: RPlusBackend,
    XTreeBackend.name: XTreeBackend,
    STRBulkBackend.name: STRBulkBackend,
    SuffixTreeBackend.name: SuffixTreeBackend,
    FastMapBackend.name: FastMapBackend,
    LinearBackend.name: LinearBackend,
}

#: Every registered backend name, registration order.
BACKEND_NAMES: tuple[str, ...] = tuple(BACKENDS)

#: Backends whose candidate sets provably contain every true answer.
EXACT_BACKEND_NAMES: tuple[str, ...] = tuple(
    name for name, backend in BACKENDS.items() if backend.exact
)


def make_backend(
    name: str, *, page_size: int = 1024, **options: object
) -> IndexBackend:
    """Construct a registered backend by name.

    Extra keyword *options* are forwarded to the backend constructor
    (e.g. ``split=`` for ``rtree``, ``n_categories=`` for
    ``suffixtree``, ``k=``/``seed=`` for ``fastmap``).
    """
    if name not in BACKENDS:
        raise ValidationError(
            f"unknown index backend {name!r}; available: {BACKEND_NAMES}"
        )
    return BACKENDS[name](page_size=page_size, **options)  # type: ignore[arg-type]
