"""SVG rendering of experiment results — dependency-free figures.

The ASCII charts in :mod:`repro.eval.reporting` are for terminals; this
module writes each :class:`~repro.eval.experiments.ExperimentResult` as
a standalone SVG line chart (log axes supported), so a reproduction run
can produce actual figure files comparable to the paper's, without any
plotting dependency.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence as TypingSequence

from ..exceptions import ValidationError
from .experiments import ExperimentResult

__all__ = ["result_to_svg", "save_figure"]

#: Category palette (colorblind-safe Okabe–Ito subset).
_COLORS = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#000000",
    "#F0E442",
)

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 40, 55


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValidationError("log axes require positive values")
        return math.log10(value)
    return value


def _ticks(lo: float, hi: float, log: bool) -> list[float]:
    """A handful of tick positions in *transformed* coordinates."""
    if log:
        first = math.floor(lo)
        last = math.ceil(hi)
        return [float(t) for t in range(first, last + 1)]
    if hi == lo:
        return [lo]
    step = 10 ** math.floor(math.log10(hi - lo))
    if (hi - lo) / step > 6:
        step *= 2
    if (hi - lo) / step < 3:
        step /= 2
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12:
        ticks.append(t)
        t += step
    return ticks


def _tick_label(t: float, log: bool) -> str:
    value = 10**t if log else t
    return f"{value:g}"


def result_to_svg(result: ExperimentResult) -> str:
    """Render *result* as an SVG document string."""
    if not result.series:
        raise ValidationError("result has no series to plot")
    if len(result.series) > len(_COLORS):
        raise ValidationError(
            f"at most {len(_COLORS)} series supported, got {len(result.series)}"
        )
    series = {name: list(values) for name, values in result.series.items()}
    log_y = result.log_y
    if log_y:
        # Log y-axes tolerate zeros (e.g. an empty answer set at a tiny
        # tolerance) by clamping to a floor one decade below the
        # smallest positive value, as the ASCII renderer does.
        positive = [v for vs in series.values() for v in vs if v > 0]
        if not positive:
            log_y = False
        else:
            floor = min(positive) / 10.0
            series = {
                name: [v if v > 0 else floor for v in vs]
                for name, vs in series.items()
            }
    xs = [_transform(float(x), result.log_x) for x in result.x_values]
    ys_all = [
        _transform(float(v), log_y)
        for values in series.values()
        for v in values
    ]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # Breathing room on the y axis.
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.1f}" y="20" text-anchor="middle" '
        f'font-size="14">{_escape(result.title)}</text>',
    ]

    # Axes frame.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    # Ticks and grid.
    for t in _ticks(x_lo, x_hi, result.log_x):
        if not x_lo <= t <= x_hi:
            continue
        x = px(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{_tick_label(t, result.log_x)}</text>'
        )
    for t in _ticks(y_lo, y_hi, log_y):
        if not y_lo <= t <= y_hi:
            continue
        y = py(t)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
            f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_tick_label(t, log_y)}</text>'
        )
    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{_HEIGHT - 14}" '
        f'text-anchor="middle">{_escape(result.x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{_MARGIN_T + plot_h / 2:.1f}" '
        f'text-anchor="middle" transform="rotate(-90 16 '
        f'{_MARGIN_T + plot_h / 2:.1f})">{_escape(result.y_label)}</text>'
    )

    # Series.
    for color, (name, values) in zip(_COLORS, series.items()):
        if len(values) != len(result.x_values):
            raise ValidationError(f"series {name!r} length mismatch")
        points = [
            (px(x), py(_transform(float(v), log_y)))
            for x, v in zip(xs, values)
        ]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in points:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'
            )

    # Legend.
    legend_y = _MARGIN_T + 8
    for color, name in zip(_COLORS, series.keys()):
        parts.append(
            f'<rect x="{_MARGIN_L + 10}" y="{legend_y - 8}" width="14" '
            f'height="4" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L + 30}" y="{legend_y - 2}">'
            f"{_escape(name)}</text>"
        )
        legend_y += 16

    parts.append("</svg>")
    return "\n".join(parts)


def save_figure(result: ExperimentResult, path: str | Path) -> Path:
    """Write *result* as an SVG file; returns the path written."""
    path = Path(path)
    path.write_text(result_to_svg(result))
    return path


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
