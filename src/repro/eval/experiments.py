"""One function per paper artifact (Figures 2–5) plus ablations.

Scale policy (DESIGN.md section 5): the paper's largest grids (100,000
sequences of length 1,000; lengths to 5,000) are impractical for a
routine benchmark run, so each experiment has a *scaled default grid*
that preserves the figures' shapes, and honours the environment
variable ``REPRO_FULL_SCALE=1`` to run the paper's exact grid.  Every
result records which grid was used.

Every experiment returns an :class:`ExperimentResult` that renders as a
table plus an ASCII chart shaped like the paper's figure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence as TypingSequence

import numpy as np

from ..core.features import extract_feature, feature_array
from ..data.queries import QueryWorkload
from ..data.stocks import StockDataset, synthetic_sp500
from ..data.synthetic import random_walk_dataset
from ..distance.base import L1, LINF
from ..distance.dtw import dtw_additive, dtw_max, dtw_max_early_abandon
from ..distance.lb_keogh import lb_keogh
from ..distance.lb_yi import lb_yi
from ..core.lower_bound import dtw_lb
from ..exceptions import ValidationError
from ..index.rtree.bulk import STRBulkLoader
from ..index.rtree.rtree import RTree
from ..methods.cascade_scan import CascadeScan
from ..methods.lb_scan import LBScan
from ..methods.naive_scan import NaiveScan
from ..methods.st_filter import STFilter
from ..methods.tw_sim import TWSimSearch
from ..storage.database import SequenceDatabase
from ..types import Sequence
from .harness import WorkloadRunner, WorkloadSummary
from .reporting import ascii_chart, format_table

__all__ = [
    "ExperimentResult",
    "full_scale",
    "make_stock_database",
    "make_synthetic_database",
    "stock_tolerance_sweep",
    "experiment1_candidate_ratio",
    "experiment2_elapsed_stock",
    "experiment3_scale_count",
    "experiment4_scale_length",
    "ablation_base_distance",
    "ablation_features",
    "ablation_bulk_load",
    "ablation_lower_bounds",
    "experiment_cascade_stages",
]

#: Default tolerance grid for the stock experiments; calibrated so the
#: answer-set sizes span the paper's reported range (≈0.2%–1.7% of the
#: database, "1.1 to 9.3 sequences depending on a tolerance").
STOCK_EPSILONS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0)

#: The four compared methods, in the paper's order.
PAPER_METHOD_FACTORIES = (
    lambda db: NaiveScan(db),
    lambda db: LBScan(db),
    lambda db: STFilter(db),
    lambda db: TWSimSearch(db),
)


def full_scale() -> bool:
    """True when ``REPRO_FULL_SCALE=1`` requests the paper's exact grids."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() == "1"


@dataclass
class ExperimentResult:
    """A reproduced table/figure: x sweep, one series per method."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    x_values: list
    series: dict[str, list[float]] = field(default_factory=dict)
    log_x: bool = False
    log_y: bool = False
    notes: list[str] = field(default_factory=list)

    def to_table(self) -> str:
        """The figure's data as an aligned text table."""
        headers = [self.x_label] + list(self.series.keys())
        rows = [
            [x] + [self.series[name][i] for name in self.series]
            for i, x in enumerate(self.x_values)
        ]
        return format_table(headers, rows, title=f"{self.experiment_id}: {self.title}")

    def to_chart(self) -> str:
        """The figure as an ASCII chart."""
        return ascii_chart(
            [float(x) for x in self.x_values],
            self.series,
            log_x=self.log_x,
            log_y=self.log_y,
            x_label=self.x_label,
            y_label=self.y_label,
            title=f"{self.experiment_id}: {self.title}",
        )

    def render(self) -> str:
        """Table, chart and notes in one printable block."""
        parts = [self.to_table(), "", self.to_chart()]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Database construction helpers
# ----------------------------------------------------------------------


def make_stock_database(
    dataset: StockDataset | None = None, *, page_size: int = 1024
) -> tuple[SequenceDatabase, StockDataset]:
    """Load the stock dataset into a fresh paged database."""
    if dataset is None:
        dataset = synthetic_sp500()
    db = SequenceDatabase(page_size=page_size)
    db.insert_many(dataset.sequences)
    return db, dataset


def make_synthetic_database(
    n_sequences: int,
    length: int,
    *,
    seed: int = 0,
    page_size: int = 1024,
    length_jitter: float = 0.0,
) -> tuple[SequenceDatabase, list[Sequence]]:
    """Generate the paper's random-walk data into a fresh database."""
    sequences = random_walk_dataset(
        n_sequences, length, seed=seed, length_jitter=length_jitter
    )
    db = SequenceDatabase(page_size=page_size)
    db.insert_many(sequences)
    return db, sequences


# ----------------------------------------------------------------------
# Experiments 1 & 2 — the stock-data tolerance sweep (Figures 2 and 3)
# ----------------------------------------------------------------------


def stock_tolerance_sweep(
    epsilons: TypingSequence[float] = STOCK_EPSILONS,
    *,
    n_queries: int | None = None,
    seed: int = 7,
    dataset: StockDataset | None = None,
    include_st_filter: bool = True,
) -> list[tuple[float, WorkloadSummary]]:
    """Run the stock workload at each tolerance through all methods.

    Shared by Experiments 1 and 2 (the paper runs them on "the same
    sets of data and query sequences").  ``n_queries`` defaults to the
    paper's 100, or 10 at scaled-default settings.
    """
    if n_queries is None:
        n_queries = 100 if full_scale() else 10
    db, data = make_stock_database(dataset)
    factories: list[Callable[[SequenceDatabase], object]] = [
        lambda d: NaiveScan(d),
        lambda d: LBScan(d),
    ]
    if include_st_filter:
        factories.append(lambda d: STFilter(d))
    factories.append(lambda d: TWSimSearch(d))
    runner = WorkloadRunner(db, factories)  # type: ignore[arg-type]
    workload = QueryWorkload(data.sequences, n_queries=n_queries, seed=seed)
    queries = workload.queries()
    results = []
    for eps in epsilons:
        results.append((eps, runner.run(queries, eps)))
    return results


def experiment1_candidate_ratio(
    epsilons: TypingSequence[float] = STOCK_EPSILONS,
    *,
    sweep: list[tuple[float, WorkloadSummary]] | None = None,
    **sweep_kwargs,
) -> ExperimentResult:
    """**Figure 2** — candidate ratio vs tolerance on stock data.

    Expected shape: TW-Sim-Search slightly better than ST-Filter, both
    much better than LB-Scan; Naive-Scan's curve is the answer ratio.
    """
    if sweep is None:
        sweep = stock_tolerance_sweep(epsilons, **sweep_kwargs)
    result = ExperimentResult(
        experiment_id="E1/Figure2",
        title="Candidate ratio vs tolerance (stock data)",
        x_label="tolerance",
        y_label="candidate ratio",
        x_values=[eps for eps, _ in sweep],
        log_y=True,
    )
    for _, summary in sweep:
        for name in summary.methods():
            result.series.setdefault(name, []).append(
                summary[name].candidate_ratio
            )
    answers = [
        summary["Naive-Scan"].mean_answers for _, summary in sweep
    ]
    result.notes.append(
        "mean answers per query: "
        + ", ".join(f"eps={eps}: {a:.1f}" for (eps, _), a in zip(sweep, answers))
    )
    return result


def experiment2_elapsed_stock(
    epsilons: TypingSequence[float] = STOCK_EPSILONS,
    *,
    sweep: list[tuple[float, WorkloadSummary]] | None = None,
    **sweep_kwargs,
) -> ExperimentResult:
    """**Figure 3** — elapsed time vs tolerance on stock data.

    Expected shape: ST-Filter worse than Naive-Scan (whole matching
    bloats the suffix tree); LB-Scan better than Naive-Scan; TW-Sim-
    Search fastest, with a growing margin as the tolerance shrinks.
    """
    if sweep is None:
        sweep = stock_tolerance_sweep(epsilons, **sweep_kwargs)
    result = ExperimentResult(
        experiment_id="E2/Figure3",
        title="Elapsed time vs tolerance (stock data)",
        x_label="tolerance",
        y_label="elapsed seconds per query",
        x_values=[eps for eps, _ in sweep],
        log_y=True,
    )
    for _, summary in sweep:
        for name in summary.methods():
            result.series.setdefault(name, []).append(summary[name].mean_elapsed)
    if "TW-Sim-Search" in result.series and "LB-Scan" in result.series:
        speedups = [
            summary.speedup("TW-Sim-Search", "LB-Scan") for _, summary in sweep
        ]
        result.notes.append(
            "speedup of TW-Sim-Search over LB-Scan: "
            + ", ".join(
                f"eps={eps}: {s:.1f}x" for (eps, _), s in zip(sweep, speedups)
            )
        )
    return result


# ----------------------------------------------------------------------
# Experiments 3 & 4 — synthetic scalability (Figures 4 and 5)
# ----------------------------------------------------------------------


def experiment3_scale_count(
    counts: TypingSequence[int] | None = None,
    *,
    length: int | None = None,
    epsilon: float = 0.1,
    n_queries: int | None = None,
    seed: int = 11,
    include_st_filter: bool | None = None,
) -> ExperimentResult:
    """**Figure 4** — elapsed time vs number of sequences (log-log).

    Paper grid: N in {1,000 .. 100,000}, length 1,000, eps 0.1.
    Scaled default: N in {250, 1,000, 4,000}, length 100 — the log-log
    slopes (scans linear in N, TW-Sim-Search near-flat) are preserved.
    """
    if counts is None:
        counts = (1_000, 10_000, 100_000) if full_scale() else (250, 1_000, 4_000)
    if length is None:
        length = 1_000 if full_scale() else 100
    if n_queries is None:
        n_queries = 100 if full_scale() else 5
    if include_st_filter is None:
        # The suffix tree over >1M total symbols exhausts memory; the
        # paper's own point is that the tree becomes abnormally large.
        include_st_filter = max(counts) * length <= 1_500_000
    result = ExperimentResult(
        experiment_id="E3/Figure4",
        title=f"Elapsed time vs #sequences (len={length}, eps={epsilon})",
        x_label="sequences",
        y_label="elapsed seconds per query",
        x_values=list(counts),
        log_x=True,
        log_y=True,
    )
    if not include_st_filter:
        result.notes.append(
            "ST-Filter omitted above 1.5M total elements (suffix tree memory)"
        )
    for n in counts:
        db, sequences = make_synthetic_database(n, length, seed=seed)
        factories: list[Callable[[SequenceDatabase], object]] = [
            lambda d: NaiveScan(d),
            lambda d: LBScan(d),
        ]
        if include_st_filter:
            factories.append(lambda d: STFilter(d))
        factories.append(lambda d: TWSimSearch(d))
        runner = WorkloadRunner(db, factories)  # type: ignore[arg-type]
        workload = QueryWorkload(sequences, n_queries=n_queries, seed=seed)
        summary = runner.run(workload.queries(), epsilon)
        for name in summary.methods():
            result.series.setdefault(name, []).append(summary[name].mean_elapsed)
    if "TW-Sim-Search" in result.series and "LB-Scan" in result.series:
        gains = [
            lb / tw if tw > 0 else float("inf")
            for lb, tw in zip(
                result.series["LB-Scan"], result.series["TW-Sim-Search"]
            )
        ]
        result.notes.append(
            "speedup over LB-Scan: "
            + ", ".join(f"N={n}: {g:.1f}x" for n, g in zip(counts, gains))
        )
    return result


def experiment4_scale_length(
    lengths: TypingSequence[int] | None = None,
    *,
    n_sequences: int | None = None,
    epsilon: float = 0.1,
    n_queries: int | None = None,
    seed: int = 13,
    include_st_filter: bool | None = None,
) -> ExperimentResult:
    """**Figure 5** — elapsed time vs sequence length.

    Paper grid: length in {100 .. 5,000}, N = 10,000, eps 0.1.  Scaled
    default: length in {50, 100, 200, 400}, N = 1,000.
    """
    if lengths is None:
        lengths = (100, 500, 1_000, 2_000, 5_000) if full_scale() else (
            50,
            100,
            200,
            400,
        )
    if n_sequences is None:
        n_sequences = 10_000 if full_scale() else 1_000
    if n_queries is None:
        n_queries = 100 if full_scale() else 5
    if include_st_filter is None:
        include_st_filter = n_sequences * max(lengths) <= 1_500_000
    result = ExperimentResult(
        experiment_id="E4/Figure5",
        title=f"Elapsed time vs sequence length (N={n_sequences}, eps={epsilon})",
        x_label="length",
        y_label="elapsed seconds per query",
        x_values=list(lengths),
        log_y=True,
    )
    if not include_st_filter:
        result.notes.append(
            "ST-Filter omitted above 1.5M total elements (suffix tree memory)"
        )
    for length in lengths:
        db, sequences = make_synthetic_database(n_sequences, length, seed=seed)
        factories: list[Callable[[SequenceDatabase], object]] = [
            lambda d: NaiveScan(d),
            lambda d: LBScan(d),
        ]
        if include_st_filter:
            factories.append(lambda d: STFilter(d))
        factories.append(lambda d: TWSimSearch(d))
        runner = WorkloadRunner(db, factories)  # type: ignore[arg-type]
        workload = QueryWorkload(sequences, n_queries=n_queries, seed=seed)
        summary = runner.run(workload.queries(), epsilon)
        for name in summary.methods():
            result.series.setdefault(name, []).append(summary[name].mean_elapsed)
    if "TW-Sim-Search" in result.series and "LB-Scan" in result.series:
        gains = [
            lb / tw if tw > 0 else float("inf")
            for lb, tw in zip(
                result.series["LB-Scan"], result.series["TW-Sim-Search"]
            )
        ]
        result.notes.append(
            "speedup over LB-Scan: "
            + ", ".join(f"len={n}: {g:.1f}x" for n, g in zip(lengths, gains))
        )
    return result


# ----------------------------------------------------------------------
# Ablations (DESIGN.md A1–A5)
# ----------------------------------------------------------------------


def ablation_base_distance(
    *,
    n_pairs: int | None = None,
    seed: int = 17,
    dataset: StockDataset | None = None,
) -> ExperimentResult:
    """**A1 / footnote 3** — verification CPU: ``L1`` vs ``L_inf`` base.

    Times the early-abandoning verification of query/sequence pairs
    under both accumulation rules at matched tolerances; the paper
    reports that the ``L_inf`` model abandons earlier and is cheaper.
    """
    if n_pairs is None:
        n_pairs = 200 if full_scale() else 60
    if dataset is None:
        dataset = synthetic_sp500()
    rng = np.random.default_rng(seed)
    sequences = dataset.sequences
    workload = QueryWorkload(sequences, n_queries=n_pairs, seed=seed)
    pairs = [
        (sequences[int(rng.integers(len(sequences)))], q)
        for q in workload.queries()
    ]
    epsilons = [1.0, 4.0]
    result = ExperimentResult(
        experiment_id="A1/footnote3",
        title="Verification CPU per pair: L1 vs Linf base distance",
        x_label="tolerance",
        y_label="cpu seconds per pair",
        x_values=epsilons,
    )
    for base_name, runner in (
        ("Linf (Def. 2)", lambda s, q, e: dtw_max_early_abandon(s.values, q.values, e)),
        # L1 distances accumulate, so an equivalent L1 tolerance scales
        # with the warped length; use eps * mean-length as the budget.
        (
            "L1 (Def. 1)",
            lambda s, q, e: dtw_additive(
                s.values, q.values, base=L1, threshold=e * max(len(s), len(q))
            ),
        ),
    ):
        for eps in epsilons:
            start = time.process_time()
            for s, q in pairs:
                runner(s, q, eps)
            elapsed = (time.process_time() - start) / len(pairs)
            result.series.setdefault(base_name, []).append(elapsed)
    return result


def ablation_features(
    epsilons: TypingSequence[float] = STOCK_EPSILONS,
    *,
    dataset: StockDataset | None = None,
    n_queries: int | None = None,
    seed: int = 19,
) -> ExperimentResult:
    """**A2 / section 4.2** — filtering power of feature-vector subsets.

    Candidate ratio when pruning with only some components of
    ``D_tw-lb``: First; First+Last (Equation 4.1); Greatest+Smallest
    (Equation 4.2, also LB_Yi's information); all four (the paper's
    bound).  Shows each component contributes.
    """
    if dataset is None:
        dataset = synthetic_sp500()
    if n_queries is None:
        n_queries = 50 if full_scale() else 10
    features = feature_array(seq.values for seq in dataset.sequences)
    workload = QueryWorkload(dataset.sequences, n_queries=n_queries, seed=seed)
    queries = workload.queries()
    subsets = {
        "First only": [0],
        "First+Last": [0, 1],
        "Greatest+Smallest": [2, 3],
        "All four (D_tw-lb)": [0, 1, 2, 3],
    }
    result = ExperimentResult(
        experiment_id="A2/features",
        title="Candidate ratio by feature subset (stock data)",
        x_label="tolerance",
        y_label="candidate ratio",
        x_values=list(epsilons),
        log_y=True,
    )
    n = len(dataset.sequences)
    for name, dims in subsets.items():
        for eps in epsilons:
            total = 0
            for q in queries:
                qf = extract_feature(q.values).as_array()
                dist = np.abs(features[:, dims] - qf[dims]).max(axis=1)
                total += int((dist <= eps).sum())
            result.series.setdefault(name, []).append(total / (n * len(queries)))
    return result


def ablation_bulk_load(
    counts: TypingSequence[int] | None = None,
    *,
    seed: int = 23,
) -> ExperimentResult:
    """**A3 / section 4.3.1** — STR bulk load vs tuple-at-a-time build.

    Compares build CPU time; notes also report node counts (packed
    trees are smaller) for the largest grid point.
    """
    if counts is None:
        counts = (2_000, 10_000, 50_000) if full_scale() else (500, 2_000, 8_000)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="A3/bulk-load",
        title="R-tree build time: STR bulk load vs repeated insert",
        x_label="points",
        y_label="build seconds",
        x_values=list(counts),
        log_x=True,
        log_y=True,
    )
    last_nodes: dict[str, int] = {}
    for n in counts:
        points = rng.uniform(0.0, 100.0, size=(n, 4))
        start = time.process_time()
        loader = STRBulkLoader(4, page_size=1024)
        for i in range(n):
            loader.add(tuple(points[i]), i)
        tree = loader.build()
        result.series.setdefault("STR bulk load", []).append(
            time.process_time() - start
        )
        last_nodes["STR bulk load"] = tree.node_count()

        start = time.process_time()
        tree2 = RTree(4, page_size=1024)
        for i in range(n):
            tree2.insert_point(tuple(points[i]), i)
        result.series.setdefault("repeated insert", []).append(
            time.process_time() - start
        )
        last_nodes["repeated insert"] = tree2.node_count()
    result.notes.append(
        f"node count at N={counts[-1]}: "
        + ", ".join(f"{k}: {v}" for k, v in last_nodes.items())
    )
    return result


def experiment_cascade_stages(
    epsilons: TypingSequence[float] = STOCK_EPSILONS,
    *,
    dataset: StockDataset | None = None,
    n_queries: int | None = None,
    seed: int = 31,
) -> ExperimentResult:
    """**C1 / cascade** — per-stage candidate ratios of the filter cascade.

    The Figure-2 metric, resolved by cascade stage: for each tolerance,
    the fraction of the database surviving each tier of Cascade-Scan's
    ``lb_yi -> lb_kim -> dtw`` pipeline, alongside LB-Scan's single-tier
    candidate ratio and Naive-Scan's answer ratio for context.  Shows
    where the pruning happens: the Yi tier removes the bulk, the Kim
    tier tightens the survivors to exactly TW-Sim-Search's candidate
    set, and verification keeps the answers.
    """
    if dataset is None:
        dataset = synthetic_sp500()
    if n_queries is None:
        n_queries = 50 if full_scale() else 10
    db, data = make_stock_database(dataset)
    runner = WorkloadRunner(
        db,
        [
            lambda d: NaiveScan(d),
            lambda d: LBScan(d),
            lambda d: CascadeScan(d),
        ],
    )
    workload = QueryWorkload(data.sequences, n_queries=n_queries, seed=seed)
    queries = workload.queries()
    result = ExperimentResult(
        experiment_id="C1/cascade",
        title="Per-stage candidate ratio of the filter cascade (stock data)",
        x_label="tolerance",
        y_label="survivors / database size",
        x_values=list(epsilons),
        log_y=True,
    )
    for eps in epsilons:
        summary = runner.run(queries, eps)
        cascade_agg = summary["Cascade-Scan"]
        for stage, ratio in cascade_agg.stage_candidate_ratios().items():
            result.series.setdefault(f"after {stage}", []).append(ratio)
        result.series.setdefault("LB-Scan candidates", []).append(
            summary["LB-Scan"].candidate_ratio
        )
        result.series.setdefault("answers (Naive-Scan)", []).append(
            summary["Naive-Scan"].candidate_ratio
        )
    result.notes.append(
        "'after lb_kim' equals TW-Sim-Search's candidate ratio: the tier "
        "applies the same D_tw-lb bound the R-tree range query does"
    )
    return result


def ablation_lower_bounds(
    *,
    n_pairs: int | None = None,
    length: int = 128,
    seed: int = 29,
) -> ExperimentResult:
    """**A5 / related work** — lower-bound tightness: LB_Kim vs LB_Yi vs LB_Keogh.

    Mean ``LB / D_tw`` tightness ratio over random-walk pairs of equal
    length (LB_Keogh's requirement), under the Definition-2 distance.
    LB_Keogh is evaluated at two Sakoe–Chiba radii; note that it bounds
    the *band-constrained* DTW, which upper-bounds nothing here — we
    report it against unconstrained ``D_tw`` for tightness context, as
    later surveys do.
    """
    if n_pairs is None:
        n_pairs = 300 if full_scale() else 80
    sequences = random_walk_dataset(2 * n_pairs, length, seed=seed)
    pairs = [
        (sequences[2 * i].values, sequences[2 * i + 1].values)
        for i in range(n_pairs)
    ]
    bounds: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
        "D_tw-lb (LB_Kim)": lambda s, q: dtw_lb(s, q),
        "LB_Yi": lambda s, q: lb_yi(s, q, base=LINF),
        "LB_Keogh r=5": lambda s, q: lb_keogh(s, q, radius=5, base=LINF),
        "LB_Keogh r=20": lambda s, q: lb_keogh(s, q, radius=20, base=LINF),
    }
    result = ExperimentResult(
        experiment_id="A5/lower-bounds",
        title=f"Lower-bound tightness (len={length} random walks)",
        x_label="pair index bucket",
        y_label="mean LB / D_tw",
        x_values=[1],
    )
    ratios: dict[str, list[float]] = {name: [] for name in bounds}
    violations: dict[str, int] = {name: 0 for name in bounds}
    for s, q in pairs:
        true = dtw_max(s, q)
        if true == 0.0:
            continue
        for name, fn in bounds.items():
            value = fn(s, q)
            ratios[name].append(value / true)
            if name != "LB_Keogh r=5" and name != "LB_Keogh r=20":
                if value > true + 1e-9:
                    violations[name] += 1
    for name in bounds:
        result.series[name] = [float(np.mean(ratios[name]))]
    result.notes.append(
        "lower-bound violations (must be 0 for LB_Kim and LB_Yi): "
        + ", ".join(
            f"{name}: {violations[name]}"
            for name in ("D_tw-lb (LB_Kim)", "LB_Yi")
        )
    )
    return result

