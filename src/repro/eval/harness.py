"""Workload runner: one database, several methods, many queries.

Runs every query through every method, accumulates the two quantities
the paper plots — mean candidate count (Figure 2) and mean elapsed time
(Figures 3–5) — and cross-checks that every exact method returns the
same answer sets (the no-false-dismissal guarantee, validated at
runtime on every experiment, not just in unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence as TypingSequence

from ..exceptions import ExperimentError, ValidationError
from ..methods.base import SearchMethod, SearchReport
from ..obs.metrics import MetricsSnapshot
from ..storage.database import SequenceDatabase
from ..types import Sequence

__all__ = ["MethodAggregate", "WorkloadSummary", "WorkloadRunner"]

#: A factory building an (unbuilt) method over a database.
MethodFactory = Callable[[SequenceDatabase], SearchMethod]


@dataclass
class MethodAggregate:
    """Per-method averages over a workload.

    All means are per query.  ``candidate_ratio`` uses the paper's
    definition: candidates over database size.
    """

    method: str
    queries: int = 0
    database_size: int = 0
    total_candidates: int = 0
    total_answers: int = 0
    total_elapsed: float = 0.0
    total_cpu: float = 0.0
    total_io: float = 0.0
    total_index_reads: int = 0
    total_dtw: int = 0
    build_elapsed: float = 0.0
    #: Summed per-stage cascade counters (sequences entering/surviving
    #: each filter stage) across all absorbed queries.
    stage_in: dict[str, int] = field(default_factory=dict)
    stage_out: dict[str, int] = field(default_factory=dict)
    #: Merge of every absorbed report's registry snapshot — the whole
    #: measurement plane (``cascade.*``, ``index.*``, ``dtw.*``,
    #: ``storage.*``, ``method.*``) summed over the workload.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def mean_candidates(self) -> float:
        """Average candidate-set size per query."""
        return self.total_candidates / self.queries if self.queries else 0.0

    @property
    def mean_answers(self) -> float:
        """Average answer-set size per query."""
        return self.total_answers / self.queries if self.queries else 0.0

    @property
    def candidate_ratio(self) -> float:
        """Figure 2's y-axis: mean candidates over database size."""
        if self.database_size == 0:
            return 0.0
        return self.mean_candidates / self.database_size

    @property
    def mean_elapsed(self) -> float:
        """Figures 3–5's y-axis: mean modeled elapsed seconds per query."""
        return self.total_elapsed / self.queries if self.queries else 0.0

    @property
    def mean_cpu(self) -> float:
        """Mean measured CPU seconds per query."""
        return self.total_cpu / self.queries if self.queries else 0.0

    @property
    def mean_io(self) -> float:
        """Mean simulated disk seconds per query."""
        return self.total_io / self.queries if self.queries else 0.0

    def stage_survival(self) -> dict[str, float]:
        """Per-stage mean survival ratio ``sum(n_out) / sum(n_in)``.

        The cascade-resolved companion of :attr:`candidate_ratio`: one
        entry per filter stage, in cascade order, showing where the
        pruning actually happens.
        """
        return {
            name: (self.stage_out[name] / self.stage_in[name])
            if self.stage_in[name]
            else 1.0
            for name in self.stage_in
        }

    def stage_candidate_ratios(self) -> dict[str, float]:
        """Per-stage survivors over database size, averaged over queries.

        Each entry is a Figure-2-style candidate ratio measured *after*
        that stage, so the final lower-bound stage's entry matches
        :attr:`candidate_ratio` for cascade-reporting methods.
        """
        denominator = self.queries * self.database_size
        if denominator == 0:
            return {name: 0.0 for name in self.stage_out}
        return {
            name: self.stage_out[name] / denominator for name in self.stage_out
        }

    def absorb(self, report: SearchReport) -> None:
        """Fold one query's report into the aggregate."""
        self.queries += 1
        self.total_candidates += len(report.candidates)
        self.total_answers += len(report.answers)
        self.total_elapsed += report.stats.elapsed_seconds
        self.total_cpu += report.stats.cpu_seconds
        self.total_io += report.stats.simulated_io_seconds
        self.total_index_reads += report.stats.index_node_reads
        self.total_dtw += report.stats.dtw_computations
        if report.cascade is not None:
            for stage in report.cascade.stages:
                self.stage_in[stage.name] = (
                    self.stage_in.get(stage.name, 0) + stage.n_in
                )
                self.stage_out[stage.name] = (
                    self.stage_out.get(stage.name, 0) + stage.n_out
                )
        self.metrics = self.metrics.merged(report.metrics)


@dataclass
class WorkloadSummary:
    """Everything a workload run produced, per method."""

    database_size: int
    n_queries: int
    aggregates: dict[str, MethodAggregate] = field(default_factory=dict)

    def __getitem__(self, method: str) -> MethodAggregate:
        return self.aggregates[method]

    def methods(self) -> list[str]:
        """Method names in insertion order."""
        return list(self.aggregates.keys())

    def speedup(self, target: str, baseline: str) -> float:
        """Mean-elapsed ratio ``baseline / target``."""
        target_elapsed = self.aggregates[target].mean_elapsed
        base_elapsed = self.aggregates[baseline].mean_elapsed
        if target_elapsed <= 0:
            return float("inf")
        return base_elapsed / target_elapsed


class WorkloadRunner:
    """Builds methods over a database and runs workloads through them.

    Parameters
    ----------
    database:
        The (already populated) sequence database.
    factories:
        Method factories, applied in order.  Each produced method is
        built immediately.
    check_agreement:
        When True (default) the runner raises :class:`ExperimentError`
        if two *exact* methods disagree on any query's answer set.
        Methods named in *approximate_methods* are exempt.
    approximate_methods:
        Names of methods allowed to return subsets (FastMap).
    """

    def __init__(
        self,
        database: SequenceDatabase,
        factories: TypingSequence[MethodFactory],
        *,
        check_agreement: bool = True,
        approximate_methods: Iterable[str] = ("FastMap",),
    ) -> None:
        if not factories:
            raise ValidationError("at least one method factory is required")
        self._db = database
        self._check = check_agreement
        self._approximate = set(approximate_methods)
        self.methods: list[SearchMethod] = []
        for factory in factories:
            method = factory(database)
            method.build()
            self.methods.append(method)
        names = [m.name for m in self.methods]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate method names: {names}")

    def run(
        self,
        queries: Iterable[Sequence],
        epsilon: float,
    ) -> WorkloadSummary:
        """Run every query at tolerance *epsilon* through every method."""
        summary = WorkloadSummary(database_size=len(self._db), n_queries=0)
        for method in self.methods:
            agg = MethodAggregate(
                method=method.name, database_size=len(self._db)
            )
            agg.build_elapsed = method.build_stats.elapsed_seconds
            summary.aggregates[method.name] = agg

        for query in queries:
            summary.n_queries += 1
            reference: SearchReport | None = None
            for method in self.methods:
                report = method.search(query, epsilon)
                summary.aggregates[method.name].absorb(report)
                if method.name in self._approximate:
                    continue
                if reference is None:
                    reference = report
                elif self._check and report.answers != reference.answers:
                    raise ExperimentError(
                        f"answer mismatch at eps={epsilon}: "
                        f"{reference.method} -> {reference.answers} but "
                        f"{report.method} -> {report.answers}"
                    )
        return summary
