"""Plain-text rendering of experiment results.

Two primitives: :func:`format_table` (aligned columns, the paper's
"rows") and :func:`ascii_chart` (a terminal line chart with optional
log axes, matching the shape of the paper's figures).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence as TypingSequence

from ..exceptions import ValidationError

__all__ = ["format_table", "ascii_chart", "format_speedups"]


def format_table(
    headers: TypingSequence[str],
    rows: TypingSequence[TypingSequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValidationError("every row must match the header width")
    rendered = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedups(
    baseline: str,
    elapsed_by_method: Mapping[str, TypingSequence[float]],
    x_values: TypingSequence[object],
    *,
    target: str,
) -> str:
    """A speedup row: ``baseline elapsed / target elapsed`` per x value."""
    base = elapsed_by_method[baseline]
    tgt = elapsed_by_method[target]
    parts = []
    for x, b, t in zip(x_values, base, tgt):
        ratio = b / t if t > 0 else math.inf
        parts.append(f"{x}: {ratio:.1f}x")
    return f"speedup of {target} over {baseline} — " + ", ".join(parts)


def ascii_chart(
    x_values: TypingSequence[float],
    series: Mapping[str, TypingSequence[float]],
    *,
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """A multi-series ASCII line chart (markers only, no interpolation).

    Each series gets a distinct marker; the legend maps markers to
    series names.  Log axes mirror the paper's log-log Figure 4.
    """
    if not x_values:
        raise ValidationError("chart needs at least one x value")
    markers = "*o+x#@%&"
    if len(series) > len(markers):
        raise ValidationError(f"at most {len(markers)} series supported")

    def tx(v: float) -> float:
        if log_x:
            if v <= 0:
                raise ValidationError("log_x requires positive x values")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if log_y:
            if v <= 0:
                v = min(x for xs in series.values() for x in xs if x > 0) / 10
            return math.log10(v)
        return v

    xs = [tx(v) for v in x_values]
    all_y = [ty(v) for ys in series.values() for v in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(markers, series.items()):
        if len(ys) != len(x_values):
            raise ValidationError(f"series {name!r} length mismatch")
        for xv, yv in zip(xs, (ty(v) for v in ys)):
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    lines.append(f"{y_label} (top={y_hi_label}, bottom={y_lo_label})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_lo_label = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    lines.append(f" {x_label}: {x_lo_label} .. {x_hi_label}")
    legend = ", ".join(
        f"{marker}={name}" for marker, name in zip(markers, series.keys())
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
