"""One-shot reproduction report: run every experiment, emit markdown.

``python -m repro.eval.report`` (or ``repro report`` via the CLI) runs
the complete experiment battery — Figures 2–5 and the ablations — and
writes a self-contained markdown report with every table, chart and
speedup note, suitable for diffing against EXPERIMENTS.md.
"""

from __future__ import annotations

import platform
import sys
from pathlib import Path
from typing import Callable

from . import experiments as exp
from .experiments import ExperimentResult

__all__ = ["generate_report", "REPORT_SECTIONS"]

#: Ordered report sections: (title, experiment callable).
REPORT_SECTIONS: list[tuple[str, Callable[[], ExperimentResult]]] = [
    ("Figure 2 — candidate ratio vs tolerance", exp.experiment1_candidate_ratio),
    ("Figure 3 — elapsed time vs tolerance", exp.experiment2_elapsed_stock),
    ("Figure 4 — elapsed time vs #sequences", exp.experiment3_scale_count),
    ("Figure 5 — elapsed time vs sequence length", exp.experiment4_scale_length),
    ("Ablation A1 — L1 vs Linf verification CPU", exp.ablation_base_distance),
    ("Ablation A2 — feature-subset filtering power", exp.ablation_features),
    ("Ablation A3 — STR bulk load vs repeated insert", exp.ablation_bulk_load),
    ("Ablation A5 — lower-bound tightness", exp.ablation_lower_bounds),
]


def _shared_sweep_sections() -> list[tuple[str, ExperimentResult]]:
    """Run Figures 2 and 3 off one sweep, like the paper does."""
    sweep = exp.stock_tolerance_sweep()
    return [
        (
            "Figure 2 — candidate ratio vs tolerance",
            exp.experiment1_candidate_ratio(sweep=sweep),
        ),
        (
            "Figure 3 — elapsed time vs tolerance",
            exp.experiment2_elapsed_stock(sweep=sweep),
        ),
    ]


def generate_report(
    *,
    include_stock: bool = True,
    include_scale: bool = True,
    include_ablations: bool = True,
) -> str:
    """Run the selected experiment groups and return the markdown report."""
    sections: list[tuple[str, ExperimentResult]] = []
    if include_stock:
        sections.extend(_shared_sweep_sections())
    if include_scale:
        sections.append(
            (
                "Figure 4 — elapsed time vs #sequences",
                exp.experiment3_scale_count(),
            )
        )
        sections.append(
            (
                "Figure 5 — elapsed time vs sequence length",
                exp.experiment4_scale_length(),
            )
        )
    if include_ablations:
        sections.append(
            ("Ablation A1 — L1 vs Linf verification CPU", exp.ablation_base_distance())
        )
        sections.append(
            ("Ablation A2 — feature-subset filtering power", exp.ablation_features())
        )
        sections.append(
            ("Ablation A3 — STR bulk load vs repeated insert", exp.ablation_bulk_load())
        )
        sections.append(
            ("Ablation A5 — lower-bound tightness", exp.ablation_lower_bounds())
        )

    lines = [
        "# Reproduction report",
        "",
        f"- python: {platform.python_version()} on {platform.system()}",
        f"- scale: {'paper-full' if exp.full_scale() else 'scaled defaults'}"
        " (REPRO_FULL_SCALE=1 for the paper's grids)",
        "",
    ]
    for title, result in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Write the report to the path given as the first argument (or stdout)."""
    args = list(sys.argv[1:] if argv is None else argv)
    report = generate_report()
    if args:
        Path(args[0]).write_text(report)
        print(f"wrote report to {args[0]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
