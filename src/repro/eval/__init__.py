"""Experiment harness regenerating the paper's evaluation.

* :mod:`repro.eval.harness` — run a query workload through any set of
  methods and aggregate candidate ratios, elapsed times and
  cross-checked correctness.
* :mod:`repro.eval.experiments` — one function per paper artifact
  (Figures 2–5) plus the ablations listed in DESIGN.md.
* :mod:`repro.eval.reporting` — text tables and ASCII charts matching
  the paper's figures.
"""

from .harness import MethodAggregate, WorkloadRunner, WorkloadSummary
from .experiments import (
    ExperimentResult,
    ablation_base_distance,
    ablation_bulk_load,
    ablation_features,
    ablation_lower_bounds,
    experiment1_candidate_ratio,
    experiment2_elapsed_stock,
    experiment3_scale_count,
    experiment4_scale_length,
)
from .figures import result_to_svg, save_figure
from .reporting import ascii_chart, format_table

__all__ = [
    "MethodAggregate",
    "WorkloadRunner",
    "WorkloadSummary",
    "ExperimentResult",
    "ablation_base_distance",
    "ablation_bulk_load",
    "ablation_features",
    "ablation_lower_bounds",
    "experiment1_candidate_ratio",
    "experiment2_elapsed_stock",
    "experiment3_scale_count",
    "experiment4_scale_length",
    "ascii_chart",
    "format_table",
    "result_to_svg",
    "save_figure",
]
