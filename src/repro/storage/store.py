"""The pluggable sequence-store plane: how sequence bytes are kept.

:class:`~repro.storage.database.SequenceDatabase` owns the *cost
accounting* — buffer-pool touches, page counts, simulated disk seconds.
*Where the bytes live* is a separate concern, factored into a
:class:`SequenceStore`:

* ``heap`` — the original byte-level paged heap
  (:class:`~repro.storage.pages.HeapSequenceStore`): records serialized
  into one growing in-memory buffer, persisted as a single file.  Kept
  as the oracle implementation.
* ``mmap`` — the memory-mapped columnar layout
  (:class:`~repro.storage.columnar.MmapColumnarStore`): one contiguous
  float64 data file mapped read-only, an offset/length directory, a
  versioned ``.meta`` sidecar and an append log so insert/delete
  survives restart.  Reads are zero-copy views over the mapped array.

Both are registered here by name; selection order is the explicit
``store=`` argument, then the ``REPRO_STORE`` environment variable,
then the ``heap`` default — the same resolution contract as the
backend/executor/kernel registries.  The contract every store must
honour is *logical-layout parity*: record offsets, lengths, page spans
and therefore every simulated ``storage.*`` charge follow the heap's
byte arithmetic (``12 + 8n`` bytes per record) regardless of the
physical layout, so answers and counters are bit-identical across
stores.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterator, TypeVar

import numpy as np

from ..exceptions import StorageError, ValidationError
from ..types import Sequence

__all__ = [
    "DEFAULT_STORE",
    "ENV_STORE",
    "STORES",
    "MmapSource",
    "SequenceStore",
    "available_stores",
    "make_store",
    "register_store",
    "resolve_store_name",
    "sniff_store_name",
]

#: The store used when neither ``store=`` nor the environment selects one.
DEFAULT_STORE = "heap"

#: Environment variable consulted when no explicit store is passed.
ENV_STORE = "REPRO_STORE"


@dataclass(frozen=True)
class MmapSource:
    """Where a store's mapped value file lives (for zero-copy attach).

    A store that can serve its concatenated element buffer straight
    from a file on disk advertises it here; the process executor ships
    this descriptor to workers instead of copying the values through a
    shared-memory segment.

    Attributes
    ----------
    path:
        The contiguous float64 data file (little-endian, values
        back-to-back in insertion order).
    n_values:
        Total float64 elements in the file.
    epoch:
        The store's save generation — attachments are only valid for
        the generation they were taken from.
    """

    path: str
    n_values: int
    epoch: int


class SequenceStore(ABC):
    """Keeps sequence records; exposes the heap's logical page geometry.

    Implementations serialize each record as the heap's
    ``u64 id, u32 count, f64[count]`` layout *logically* — offsets,
    lengths, and page spans are derived from that arithmetic even when
    the physical bytes live elsewhere — so the disk model charges
    identically for every store.
    """

    #: Registry name of the store (``heap``/``mmap``).
    name: ClassVar[str]

    #: Leading magic bytes of the store's persisted main file.
    magic: ClassVar[bytes]

    # -- geometry -----------------------------------------------------------

    @property
    @abstractmethod
    def page_size(self) -> int:
        """Bytes per page."""

    @property
    @abstractmethod
    def total_bytes(self) -> int:
        """Logical bytes currently stored (tombstoned space included)."""

    @property
    @abstractmethod
    def total_pages(self) -> int:
        """Pages the logical file occupies (ceiling of bytes / page size)."""

    @abstractmethod
    def pages_of(self, seq_id: int) -> range:
        """The page numbers a stored record logically spans."""

    # -- writes -------------------------------------------------------------

    @abstractmethod
    def append(self, seq_id: int, values: np.ndarray) -> range:
        """Serialize and append one sequence; returns its page span."""

    @abstractmethod
    def remove(self, seq_id: int) -> int:
        """Drop a record from the directory; returns the bytes tombstoned."""

    @abstractmethod
    def compact(self) -> int:
        """Reclaim tombstoned logical space; returns bytes freed."""

    # -- reads --------------------------------------------------------------

    @abstractmethod
    def __contains__(self, seq_id: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def ids(self) -> list[int]:
        """Stored ids in physical (insertion) order."""

    @abstractmethod
    def read(self, seq_id: int) -> Sequence:
        """Materialize one sequence by id."""

    @abstractmethod
    def scan(self) -> Iterator[Sequence]:
        """Iterate all sequences in physical order (a sequential scan)."""

    def dense_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """``(ids, lengths, offsets, values_flat)`` when served zero-copy.

        A store whose live element values sit contiguously, in
        insertion order and with no interleaved tombstones can hand the
        cascade its whole value buffer as one array: *offsets* is the
        ``(n + 1,)`` element prefix-sum into *values_flat*.  Stores (or
        states) that cannot return ``None`` and callers fall back to
        the per-sequence :meth:`scan` copy path.
        """
        return None

    def mmap_source(self) -> MmapSource | None:
        """The on-disk value file behind :meth:`dense_arrays`, if any.

        ``None`` for purely in-memory stores or dirty states; when set,
        the file's contents equal the ``values_flat`` of
        :meth:`dense_arrays` and other processes may map it read-only.
        """
        return None

    # -- persistence --------------------------------------------------------

    @abstractmethod
    def save(self, path: str | Path) -> None:
        """Persist the store to *path* (plus any sidecar files)."""

    @classmethod
    @abstractmethod
    def load(cls, path: str | Path) -> "SequenceStore":
        """Re-open a store persisted with :meth:`save`."""


_S = TypeVar("_S", bound=type[SequenceStore])

#: Registered store classes, keyed by :attr:`SequenceStore.name`.
STORES: dict[str, type[SequenceStore]] = {}


def register_store(cls: _S) -> _S:
    """Class decorator adding *cls* to the :data:`STORES` registry."""
    STORES[cls.name] = cls
    return cls


def available_stores() -> tuple[str, ...]:
    """The registered store names, sorted."""
    return tuple(sorted(STORES))


def resolve_store_name(name: str | None = None) -> str:
    """Resolve the store to use and validate it.

    Explicit *name* wins; ``None`` falls back to the ``REPRO_STORE``
    environment variable, then to :data:`DEFAULT_STORE`.
    """
    if name is None:
        name = os.environ.get(ENV_STORE) or DEFAULT_STORE
    if name not in STORES:
        known = ", ".join(available_stores())
        raise ValidationError(f"unknown store {name!r}; registered: {known}")
    return name


def make_store(name: str | None, *, page_size: int = 1024) -> SequenceStore:
    """Construct the store *name* (resolved per :func:`resolve_store_name`)."""
    return STORES[resolve_store_name(name)](page_size=page_size)  # type: ignore[call-arg]


def sniff_store_name(path: str | Path) -> str:
    """Identify which registered store persisted *path* by its magic."""
    path = Path(path)
    try:
        with open(path, "rb") as f:
            head = f.read(8)
    except OSError as error:
        raise StorageError(f"cannot read store file {path}: {error}") from error
    for name, cls in sorted(STORES.items()):
        if head.startswith(cls.magic):
            return name
    raise StorageError(
        f"{path} is not a persisted sequence store (unrecognized magic "
        f"{head[:5]!r}; known stores: {', '.join(available_stores())})"
    )
