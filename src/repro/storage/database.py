""":class:`SequenceDatabase` — the storage façade all methods read through.

Wraps a registered :class:`~repro.storage.store.SequenceStore` (the
``heap`` oracle or the memory-mapped ``mmap`` columnar layout), the
buffer pool and the disk model, and accumulates the I/O statistics the
experiments report: sequential pages (scans), random pages (candidate
fetches by id), buffer hits, and the simulated disk time both kinds of
access translate into.  Because every store honours the heap's logical
byte arithmetic, the charging surface here is store-agnostic — counters
are bit-identical whichever store holds the bytes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from ..exceptions import ValidationError
from ..obs.metrics import active_registry
from ..types import Sequence, SequenceLike, as_sequence
from .buffer import BufferPool
from .diskmodel import DiskModel
from .store import (
    MmapSource,
    STORES,
    make_store,
    resolve_store_name,
    sniff_store_name,
)

__all__ = ["SequenceDatabase", "IOStats"]


@dataclass
class IOStats:
    """Cumulative I/O counters of a :class:`SequenceDatabase`."""

    sequential_pages: int = 0
    random_pages: int = 0
    buffer_hits: int = 0
    simulated_seconds: float = 0.0
    _marks: dict[str, tuple[int, int, int, float]] = field(
        default_factory=dict, repr=False
    )

    def reset(self) -> None:
        """Zero all counters (marks are kept)."""
        self.sequential_pages = 0
        self.random_pages = 0
        self.buffer_hits = 0
        self.simulated_seconds = 0.0

    def snapshot(self) -> tuple[int, int, int, float]:
        """``(sequential_pages, random_pages, buffer_hits, simulated_seconds)``."""
        return (
            self.sequential_pages,
            self.random_pages,
            self.buffer_hits,
            self.simulated_seconds,
        )

    def mark(self, name: str) -> None:
        """Remember the current counters under *name*."""
        self._marks[name] = self.snapshot()

    def delta_seconds(self, name: str) -> float:
        """Simulated seconds accumulated since :meth:`mark`."""
        base = self._marks.get(name, (0, 0, 0, 0.0))
        return self.simulated_seconds - base[3]


class SequenceDatabase:
    """A database of variable-length sequences on simulated paged storage.

    Parameters
    ----------
    page_size:
        Bytes per page for both the data file and derived index sizing
        (paper: 1 KB).
    disk:
        The disk timing model (defaults to the paper's parameters).
    buffer_pages:
        LRU buffer pool capacity; 0 (default) models the paper's
        cold-cache single-user runs.
    store:
        Registered sequence-store name (``heap``/``mmap``); ``None``
        resolves via the ``REPRO_STORE`` environment variable, then the
        ``heap`` default.
    """

    def __init__(
        self,
        *,
        page_size: int = 1024,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
        store: str | None = None,
    ) -> None:
        self._store = make_store(store, page_size=page_size)
        self._disk = disk if disk is not None else DiskModel()
        self._buffer = BufferPool(buffer_pages)
        self._next_id = 0
        # Concurrent shard queries charge I/O through one database; the
        # multi-field IOStats updates must land atomically per charge.
        self._io_lock = threading.Lock()
        self.io = IOStats()

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        # Process executors pickle the database into spawned workers; the
        # lock is per-process state and cannot cross, so each side gets
        # its own.
        state = dict(self.__dict__)
        del state["_io_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._io_lock = threading.Lock()

    # -- metadata -----------------------------------------------------------

    @property
    def store_name(self) -> str:
        """Registry name of the sequence store holding the bytes."""
        return self._store.name

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._store.page_size

    @property
    def disk(self) -> DiskModel:
        """The disk timing model."""
        return self._disk

    @property
    def buffer(self) -> BufferPool:
        """The LRU buffer pool."""
        return self._buffer

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._store

    @property
    def total_pages(self) -> int:
        """Pages the data file occupies."""
        return self._store.total_pages

    @property
    def total_bytes(self) -> int:
        """Bytes of sequence data stored."""
        return self._store.total_bytes

    def ids(self) -> list[int]:
        """All stored sequence ids in insertion order."""
        return self._store.ids()

    @property
    def next_id(self) -> int:
        """The id the next insert will be assigned (monotone, never reused)."""
        return self._next_id

    # -- writes -----------------------------------------------------------------

    def insert(self, sequence: SequenceLike) -> int:
        """Store a sequence; returns its assigned id (``ID(S)``)."""
        seq = as_sequence(sequence)
        if len(seq) == 0:
            raise ValidationError("cannot store an empty sequence")
        seq_id = self._next_id
        self._next_id += 1
        self._store.append(seq_id, seq.values)
        return seq_id

    def insert_many(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store several sequences; returns their ids in order."""
        return [self.insert(seq) for seq in sequences]

    def delete(self, seq_id: int) -> None:
        """Remove a sequence (tombstone; see :meth:`compact`).

        Raises :class:`~repro.exceptions.SequenceNotFoundError` when the
        id is not stored.  Ids are never reused.
        """
        self._store.remove(seq_id)

    def compact(self) -> int:
        """Reclaim tombstoned space; returns bytes freed.

        Also clears the buffer pool, since page numbers shift.
        """
        freed = self._store.compact()
        self._buffer.clear()
        return freed

    # -- reads -------------------------------------------------------------------

    def fetch(self, seq_id: int) -> Sequence:
        """Random access by id — the post-processing read of Algorithm 1.

        Charges random-read disk time for every page of the record that
        misses the buffer pool.
        """
        self.charge_fetch(seq_id)
        return self._store.read(seq_id)

    def charge_fetch(self, seq_id: int) -> None:
        """Charge the I/O of :meth:`fetch` without materializing the record.

        For callers that already hold the sequence in memory (e.g. the
        engine's feature store) but whose cost model must still account
        the random access Algorithm 1 performs: buffer-pool touches,
        random-page counts and simulated disk seconds are identical to
        a real :meth:`fetch`.
        """
        pages = self._store.pages_of(seq_id)
        missed = 0
        hits = 0
        for page_no in pages:
            if self._buffer.access(page_no):
                hits += 1
            else:
                missed += 1
        # The record's pages are contiguous: one seek, then transfer.
        seconds = self._disk.record_read_time(missed, self.page_size)
        with self._io_lock:
            self.io.buffer_hits += hits
            self.io.random_pages += missed
            self.io.simulated_seconds += seconds
        # Buffer hit/miss counters are charged per page by the pool
        # itself (storage.buffer.*); only the fetch-level costs here.
        registry = active_registry()
        if registry is not None:
            registry.count("storage.fetches")
            registry.count("storage.random_pages", missed)
            registry.count("storage.simulated_seconds", seconds)

    def scan(self) -> Iterator[Sequence]:
        """Sequential scan of the whole database (Naive-Scan / LB-Scan).

        Charges one sequential pass over all pages up front, which is
        how a real scan operator reads the file regardless of how many
        sequences the consumer actually keeps.
        """
        pages = self._store.total_pages
        seconds = self._disk.sequential_read_time(pages, self.page_size)
        with self._io_lock:
            self.io.sequential_pages += pages
            self.io.simulated_seconds += seconds
        registry = active_registry()
        if registry is not None:
            registry.count("storage.scans")
            registry.count("storage.sequential_pages", pages)
            registry.count("storage.simulated_seconds", seconds)
        return self._store.scan()

    def contents(self) -> Iterator[Sequence]:
        """Iterate the stored sequences without charging any I/O.

        Replication/publication paths (e.g. shipping a shard's contents
        to a worker process, or exporting the feature store into a
        shared-memory segment) read the in-memory store directly; the
        simulated cost model only charges reads the *query pipeline*
        performs, so charging here would break the bit-exact counter
        parity between executors.
        """
        return self._store.scan()

    def dense_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """The store's zero-copy ``(ids, lengths, offsets, values_flat)``.

        ``None`` unless the store can serve its whole element buffer as
        one contiguous array (see
        :meth:`repro.storage.store.SequenceStore.dense_arrays`).
        Uncharged, like :meth:`contents`.
        """
        return self._store.dense_arrays()

    def mmap_source(self) -> MmapSource | None:
        """The on-disk value file behind :meth:`dense_arrays`, if any."""
        return self._store.mmap_source()

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the data file to *path* (plus any store sidecars)."""
        self._store.save(path)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
        store: str | None = None,
    ) -> "SequenceDatabase":
        """Re-open a database persisted with :meth:`save`.

        The store format is sniffed from the file's magic bytes when
        *store* is ``None``; passing a name forces that implementation
        (and fails with a domain error on a mismatched file).
        """
        if store is not None:
            name = resolve_store_name(store)
        else:
            name = sniff_store_name(path)
        loaded = STORES[name].load(path)
        db = cls(
            page_size=loaded.page_size,
            disk=disk,
            buffer_pages=buffer_pages,
            store=name,
        )
        db._store = loaded
        ids = loaded.ids()
        db._next_id = max(ids) + 1 if ids else 0
        return db

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase({len(self)} sequences, "
            f"{self.total_pages} pages of {self.page_size} B)"
        )
