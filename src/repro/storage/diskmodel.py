"""Disk cost model mirroring the paper's experimental hardware.

The paper's platform: "9 GB hard disk with 9.5 ms seek time" on a
SunSparc Ultra-5.  Disks of that class sustained roughly 10 MB/s.  The
model charges:

* **random read**: one seek (+ half a rotation of latency, folded into
  ``seek_ms``) plus the page transfer, per page;
* **sequential read**: one initial seek for the scan plus pure transfer
  for every page — the reason sequential scans of small databases remain
  competitive (Figure 3) while index probes win on large ones
  (Figures 4–5).

All times are returned in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Analytic disk timing parameters.

    Attributes
    ----------
    seek_ms:
        Average positioning time for a random access (seek + rotational
        latency), in milliseconds.  Paper: 9.5 ms.
    transfer_mb_per_s:
        Sustained sequential transfer rate in MB/s.
    """

    seek_ms: float = 9.5
    transfer_mb_per_s: float = 10.0

    def __post_init__(self) -> None:
        if self.seek_ms < 0:
            raise ValidationError(f"seek_ms must be non-negative, got {self.seek_ms}")
        if self.transfer_mb_per_s <= 0:
            raise ValidationError(
                f"transfer_mb_per_s must be positive, got {self.transfer_mb_per_s}"
            )

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to stream *n_bytes* sequentially (no positioning)."""
        if n_bytes < 0:
            raise ValidationError(f"n_bytes must be non-negative, got {n_bytes}")
        return n_bytes / (self.transfer_mb_per_s * 1024 * 1024)

    def random_read_time(self, pages: int, page_size: int) -> float:
        """Seconds to read *pages* pages scattered over the disk."""
        if pages < 0:
            raise ValidationError(f"pages must be non-negative, got {pages}")
        return pages * (self.seek_ms / 1000.0 + self.transfer_time(page_size))

    def record_read_time(self, pages: int, page_size: int) -> float:
        """Seconds to fetch one record spanning *pages* contiguous pages.

        A record lives on consecutive pages, so a fetch pays one seek
        plus the transfer of all its pages — cheaper than *pages*
        independent random reads.
        """
        if pages < 0:
            raise ValidationError(f"pages must be non-negative, got {pages}")
        if pages == 0:
            return 0.0
        return self.seek_ms / 1000.0 + self.transfer_time(pages * page_size)

    def sequential_read_time(self, pages: int, page_size: int) -> float:
        """Seconds to read *pages* consecutive pages in one scan."""
        if pages < 0:
            raise ValidationError(f"pages must be non-negative, got {pages}")
        if pages == 0:
            return 0.0
        return self.seek_ms / 1000.0 + self.transfer_time(pages * page_size)
