"""LRU buffer pool over page numbers.

The pool does not hold page *contents* (the heap file is the single copy
of the bytes); it tracks which pages are memory-resident so the database
layer can decide whether a page access costs simulated disk time.  This
separation keeps the cost accounting honest without duplicating data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from ..exceptions import ValidationError
from ..obs.metrics import count as _charge

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU set of resident page numbers.

    A capacity of 0 disables caching (every access is a miss) — the
    configuration the paper's single-user, cold-cache measurements
    correspond to.
    """

    def __init__(self, capacity_pages: int = 0) -> None:
        if capacity_pages < 0:
            raise ValidationError(
                f"capacity_pages must be non-negative, got {capacity_pages}"
            )
        self._capacity = capacity_pages
        self._resident: OrderedDict[int, None] = OrderedDict()
        # Shard thread pools touch one pool concurrently; the LRU dict
        # and the counters mutate together, so one lock covers both.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict[str, Any]:
        # Pickled into spawned shard workers as part of the database;
        # the lock is per-process state, so each side gets its own.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum resident pages."""
        return self._capacity

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that hit the pool (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._resident

    def access(self, page_no: int) -> bool:
        """Touch *page_no*; returns True on a hit, False on a miss.

        Misses admit the page, evicting the least recently used page
        when at capacity.
        """
        with self._lock:
            if page_no in self._resident:
                self._resident.move_to_end(page_no)
                self.hits += 1
                _charge("storage.buffer.hits")
                return True
            self.misses += 1
            _charge("storage.buffer.misses")
            if self._capacity == 0:
                return False
            if len(self._resident) >= self._capacity:
                self._resident.popitem(last=False)
            self._resident[page_no] = None
            return False

    def clear(self) -> None:
        """Drop all resident pages; counters stay monotone.

        Eviction (e.g. :meth:`SequenceDatabase.compact` invalidating
        page numbers) is not un-counting: re-pinned pages were already
        tallied once in both the pool and ``IOStats.buffer_hits``, and
        zeroing one tracker but not the other made the two diverge and
        any derived hit ratio over-count.  Use :meth:`reset_counters`
        to start a fresh measurement window explicitly.
        """
        with self._lock:
            self._resident.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (resident pages are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
