"""The ``mmap`` store: a memory-mapped columnar sequence layout.

Physically, the store is four files:

``<path>``
    The directory: magic ``RPCS\\x01``, page size, save epoch, the
    logical end-of-file, and one ``(id, logical offset, logical
    length)`` triple per record — the *same* triple the heap store
    persists, because page geometry derives from it.
``<path>.dat``
    One contiguous little-endian float64 array — every live record's
    elements back-to-back in insertion order, no headers, no holes.
    Re-opened with ``numpy.memmap`` so reads are zero-copy views the
    OS pages in on demand (and N processes mapping the file share one
    physical copy).
``<path>.store.meta``
    A versioned JSON sidecar (``format``/``version``/``epoch``/value
    count); a sidecar whose epoch does not match the directory is
    *stale* and refused.
``<path>.log``
    The append log: every insert/delete/compact after a save is
    recorded here and replayed on load, so mutations survive restart
    without rewriting the data file.  :meth:`save` compacts — the new
    ``.dat`` holds live values only — and truncates the log under a
    fresh epoch.

Logically, the store keeps the heap's byte arithmetic: each record
occupies ``12 + 8n`` bytes at the offset the heap would have placed it,
tombstones persist until :meth:`compact`, and page spans/total pages
derive from those logical offsets.  The simulated ``storage.*``
charges are therefore bit-identical to the heap store's, while the
*physical* reads the ``a7_storage`` bench measures go through the map.

Values appended since the last save live in an in-memory tail buffer
(the log makes them durable); :meth:`dense_arrays` exposes the whole
element buffer zero-copy only in the *clean* state — freshly saved or
loaded with an empty log — which is exactly when the mapped file and
the live contents coincide.

Corrupt, truncated or version-mismatched files raise
:class:`~repro.exceptions.StorageError` naming the offending path;
``struct.error``/``OSError`` never escape.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Any, BinaryIO, ClassVar, Iterator

import numpy as np

from ..exceptions import SequenceNotFoundError, StorageError, ValidationError
from ..types import Sequence, as_array
from .store import MmapSource, SequenceStore, register_store

__all__ = ["MmapColumnarStore"]

_MAGIC = b"RPCS\x01"
_LOG_MAGIC = b"RPCL\x01"
_META_FORMAT = "rpcs"
_META_VERSION = 1

#: Directory header after the magic: page_size, epoch, logical end, count.
_DIR_HEADER = struct.Struct("<IQQI")
_DIR_ENTRY = struct.Struct("<QQQ")
#: Log record headers: append carries (id, count) then the elements;
#: delete carries the id; compact is the opcode alone.
_LOG_APPEND = struct.Struct("<QI")
_LOG_DELETE = struct.Struct("<Q")

#: Logical bytes of a record header (u64 id + u32 count), heap layout.
_RECORD_HEADER_BYTES = 12

_MIN_TAIL_CAPACITY = 1024


def _corrupt(path: Path, what: str) -> StorageError:
    return StorageError(f"columnar store {path}: {what}")


@register_store
class MmapColumnarStore(SequenceStore):
    """Columnar sequence store over a memory-mapped value file."""

    name: ClassVar[str] = "mmap"
    magic: ClassVar[bytes] = _MAGIC

    def __init__(self, page_size: int = 1024) -> None:
        if page_size < _RECORD_HEADER_BYTES + 8:
            raise ValidationError(
                f"page_size {page_size} too small for a record header"
            )
        self._page_size = page_size
        # Logical heap-layout directory: id -> (offset, length in bytes).
        self._offsets: dict[int, tuple[int, int]] = {}
        self._order: list[int] = []
        self._logical_end = 0
        # Physical placement: a record's elements live either in the
        # mapped file (id -> (start, count) into _mapped) or in the
        # in-memory tail (id -> (start, count) into _tail).
        self._mapped: np.ndarray = np.empty(0, dtype=np.float64)
        self._map_spans: dict[int, tuple[int, int]] = {}
        self._tail: np.ndarray = np.empty(0, dtype=np.float64)
        self._tail_len = 0
        self._tail_spans: dict[int, tuple[int, int]] = {}
        self._paths: tuple[Path, Path, Path, Path] | None = None
        self._epoch = 0
        self._dirty = False
        self._log_file: BinaryIO | None = None

    # -- file layout ---------------------------------------------------------

    @staticmethod
    def _sidecars(path: Path) -> tuple[Path, Path, Path, Path]:
        """``(directory, data, meta, log)`` paths for a store at *path*.

        The sidecar is ``.store.meta`` (not bare ``.meta``) so it never
        collides with the ``<path>.meta`` file
        :meth:`~repro.core.engine.TimeWarpingDatabase.save` writes next
        to a single-shard data file.
        """
        return (
            path,
            path.with_name(path.name + ".dat"),
            path.with_name(path.name + ".store.meta"),
            path.with_name(path.name + ".log"),
        )

    # -- geometry -----------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._page_size

    @property
    def total_bytes(self) -> int:
        """Logical bytes stored (heap arithmetic, tombstones included)."""
        return self._logical_end

    @property
    def total_pages(self) -> int:
        """Pages the logical file occupies (ceiling of bytes / page size)."""
        end = self._logical_end
        return -(-end // self._page_size) if end else 0

    def pages_of(self, seq_id: int) -> range:
        """The page numbers a stored record logically spans."""
        offset, length = self._locate(seq_id)
        first = offset // self._page_size
        last = (offset + length - 1) // self._page_size
        return range(first, last + 1)

    def _locate(self, seq_id: int) -> tuple[int, int]:
        try:
            return self._offsets[seq_id]
        except KeyError:
            raise SequenceNotFoundError(f"sequence {seq_id} is not stored") from None

    @property
    def epoch(self) -> int:
        """The save generation (incremented by every :meth:`save`)."""
        return self._epoch

    # -- writes -----------------------------------------------------------------

    def append(self, seq_id: int, values: np.ndarray) -> range:
        """Append one sequence; returns its (logical) page span."""
        if seq_id in self._offsets:
            raise StorageError(f"sequence {seq_id} already stored")
        if seq_id < 0:
            raise ValidationError(f"seq_id must be non-negative, got {seq_id}")
        arr = np.ascontiguousarray(
            as_array(values, allow_empty=False), dtype=np.float64
        )
        self._append_values(seq_id, arr)
        if self._log_file is not None:
            self._log_file.write(
                b"A" + _LOG_APPEND.pack(seq_id, arr.size) + arr.tobytes()
            )
            self._log_file.flush()
        return self.pages_of(seq_id)

    def _append_values(self, seq_id: int, arr: np.ndarray) -> None:
        """The in-memory half of :meth:`append` (shared with log replay)."""
        length = _RECORD_HEADER_BYTES + 8 * arr.size
        self._offsets[seq_id] = (self._logical_end, length)
        self._order.append(seq_id)
        self._logical_end += length
        start = self._tail_len
        self._reserve_tail(arr.size)
        self._tail[start : start + arr.size] = arr
        self._tail_len = start + arr.size
        self._tail_spans[seq_id] = (start, arr.size)
        self._dirty = True

    def _reserve_tail(self, n: int) -> None:
        needed = self._tail_len + n
        if needed <= self._tail.size:
            return
        capacity = max(self._tail.size * 2, needed, _MIN_TAIL_CAPACITY)
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._tail_len] = self._tail[: self._tail_len]
        # Views handed out earlier keep the old buffer alive; stored
        # values are immutable, so they stay valid.
        self._tail = grown

    def remove(self, seq_id: int) -> int:
        """Drop a record from the directory; returns the bytes tombstoned."""
        length = self._remove_entry(seq_id)
        if self._log_file is not None:
            self._log_file.write(b"D" + _LOG_DELETE.pack(seq_id))
            self._log_file.flush()
        return length

    def _remove_entry(self, seq_id: int) -> int:
        _offset, length = self._locate(seq_id)
        del self._offsets[seq_id]
        self._order.remove(seq_id)
        self._map_spans.pop(seq_id, None)
        self._tail_spans.pop(seq_id, None)
        self._dirty = True
        return length

    def compact(self) -> int:
        """Reclaim tombstoned *logical* space; returns bytes freed.

        Only the logical offsets move (page spans derive from them);
        physical values stay where they are — the data file itself is
        rewritten densely by the next :meth:`save`.
        """
        freed = self._compact_entries()
        if self._log_file is not None:
            self._log_file.write(b"C")
            self._log_file.flush()
        return freed

    def _compact_entries(self) -> int:
        end = 0
        for seq_id in self._order:
            _offset, length = self._offsets[seq_id]
            self._offsets[seq_id] = (end, length)
            end += length
        freed = self._logical_end - end
        self._logical_end = end
        return freed

    # -- reads ---------------------------------------------------------------------

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def ids(self) -> list[int]:
        """Stored ids in physical (insertion) order."""
        return list(self._order)

    def read(self, seq_id: int) -> Sequence:
        """One sequence by id — a zero-copy view over the map or tail."""
        self._locate(seq_id)  # SequenceNotFoundError on unknown ids
        return Sequence(self._values_of(seq_id), seq_id=seq_id)

    def _values_of(self, seq_id: int) -> np.ndarray:
        span = self._map_spans.get(seq_id)
        source = self._mapped
        if span is None:
            span = self._tail_spans[seq_id]
            source = self._tail
        start, count = span
        view = source[start : start + count]
        view.flags.writeable = False
        return view

    def scan(self) -> Iterator[Sequence]:
        """Iterate all sequences in physical order (a sequential scan)."""
        for seq_id in self._order:
            yield Sequence(self._values_of(seq_id), seq_id=seq_id)

    def dense_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """``(ids, lengths, offsets, values_flat)`` in the clean state.

        Available exactly when the mapped file and the live contents
        coincide — freshly saved or loaded with an empty log.  Any
        mutation invalidates it until the next :meth:`save`.
        """
        if self._dirty or self._paths is None:
            return None
        n = len(self._order)
        ids = np.asarray(self._order, dtype=np.int64)
        lengths = np.empty(n, dtype=np.int64)
        for row, seq_id in enumerate(self._order):
            lengths[row] = self._map_spans[seq_id][1]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return ids, lengths, offsets, self._mapped

    def mmap_source(self) -> MmapSource | None:
        """The data file behind :meth:`dense_arrays` (clean state only)."""
        if self._dirty or self._paths is None:
            return None
        return MmapSource(
            path=str(self._paths[1]),
            n_values=int(self._mapped.size),
            epoch=self._epoch,
        )

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the store: directory, dense data file, sidecar, fresh log.

        Physically compacting — the new ``.dat`` holds live values
        only, in insertion order — while the directory keeps the
        current *logical* offsets (tombstoned space persists until
        :meth:`compact`, exactly like the heap store).
        """
        main, dat, meta, log = self._sidecars(Path(path))
        epoch = self._epoch + 1
        entry_blob = bytearray()
        spans: dict[int, tuple[int, int]] = {}
        n_values = 0
        for seq_id in self._order:
            offset, length = self._offsets[seq_id]
            entry_blob += _DIR_ENTRY.pack(seq_id, offset, length)
            count = (length - _RECORD_HEADER_BYTES) // 8
            spans[seq_id] = (n_values, count)
            n_values += count
        # Write the new data file aside and rename it into place: when
        # re-saving over the store's own path, truncating ``dat`` in
        # place would rip the pages out from under ``self._mapped``
        # mid-rewrite (SIGBUS on the very reads producing the bytes).
        dat_tmp = dat.with_name(dat.name + ".tmp")
        with open(dat_tmp, "wb") as f:
            for seq_id in self._order:
                f.write(self._values_of(seq_id).tobytes())
        os.replace(dat_tmp, dat)
        with open(main, "wb") as f:
            f.write(_MAGIC)
            f.write(
                _DIR_HEADER.pack(
                    self._page_size, epoch, self._logical_end, len(self._order)
                )
            )
            f.write(bytes(entry_blob))
        meta.write_text(
            json.dumps(
                {
                    "format": _META_FORMAT,
                    "version": _META_VERSION,
                    "epoch": epoch,
                    "page_size": self._page_size,
                    "values": n_values,
                    "sequences": len(self._order),
                }
            )
        )
        if self._log_file is not None:
            self._log_file.close()
        with open(log, "wb") as f:
            f.write(_LOG_MAGIC + struct.pack("<Q", epoch))
        # Re-base on the freshly written files: all values now come
        # from the map, the tail empties, and mutations append to the
        # new log.
        self._mapped = self._open_map(dat, n_values)
        self._map_spans = spans
        self._tail = np.empty(0, dtype=np.float64)
        self._tail_len = 0
        self._tail_spans = {}
        self._paths = (main, dat, meta, log)
        self._epoch = epoch
        self._dirty = False
        self._log_file = open(log, "ab")

    @staticmethod
    def _open_map(dat: Path, n_values: int) -> np.ndarray:
        if n_values == 0:
            return np.empty(0, dtype=np.float64)
        try:
            size = dat.stat().st_size
        except OSError as error:
            raise _corrupt(dat.parent / dat.name, f"cannot stat data file: {error}")
        if size != n_values * 8:
            raise _corrupt(
                dat,
                f"data file is truncated: {size} bytes on disk, "
                f"{n_values * 8} expected",
            )
        try:
            return np.memmap(dat, dtype="<f8", mode="r", shape=(n_values,))
        except (OSError, ValueError) as error:
            raise _corrupt(dat, f"cannot map data file: {error}") from error

    @classmethod
    def load(cls, path: str | Path) -> "MmapColumnarStore":
        """Re-open a store persisted with :meth:`save`, replaying the log."""
        main, dat, meta, log = cls._sidecars(Path(path))
        try:
            data = main.read_bytes()
        except OSError as error:
            raise StorageError(
                f"cannot read columnar store {main}: {error}"
            ) from error
        if data[: len(_MAGIC)] != _MAGIC:
            raise _corrupt(main, "not a columnar store directory (bad magic)")
        try:
            page_size, epoch, logical_end, count = _DIR_HEADER.unpack_from(
                data, len(_MAGIC)
            )
            pos = len(_MAGIC) + _DIR_HEADER.size
            entries = []
            for _ in range(count):
                entries.append(_DIR_ENTRY.unpack_from(data, pos))
                pos += _DIR_ENTRY.size
        except struct.error as error:
            raise _corrupt(
                main, f"directory is truncated or corrupt: {error}"
            ) from error
        cls._check_sidecar(meta, epoch, page_size)
        store = cls(page_size=page_size)
        store._epoch = epoch
        store._logical_end = logical_end
        n_values = 0
        for seq_id, offset, length in entries:
            if (
                length < _RECORD_HEADER_BYTES + 8
                or (length - _RECORD_HEADER_BYTES) % 8
            ):
                raise _corrupt(
                    main, f"record {seq_id} has impossible length {length}"
                )
            values = (length - _RECORD_HEADER_BYTES) // 8
            store._offsets[seq_id] = (offset, length)
            store._order.append(seq_id)
            store._map_spans[seq_id] = (n_values, values)
            n_values += values
        store._mapped = cls._open_map(dat, n_values)
        store._paths = (main, dat, meta, log)
        store._replay_log(log, epoch)
        store._log_file = open(log, "ab")
        return store

    @staticmethod
    def _check_sidecar(meta: Path, epoch: int, page_size: int) -> None:
        if not meta.exists():
            raise _corrupt(meta.parent / meta.name, "missing .meta sidecar")
        try:
            doc = json.loads(meta.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise _corrupt(meta, f"unreadable sidecar: {error}") from error
        if doc.get("format") != _META_FORMAT:
            raise _corrupt(
                meta, f"sidecar format {doc.get('format')!r} is not {_META_FORMAT!r}"
            )
        if doc.get("version") != _META_VERSION:
            raise _corrupt(
                meta,
                f"sidecar version {doc.get('version')!r} is unsupported "
                f"(this build reads version {_META_VERSION})",
            )
        if doc.get("epoch") != epoch:
            raise _corrupt(
                meta,
                f"stale sidecar: epoch {doc.get('epoch')!r} does not match "
                f"directory epoch {epoch} (crashed mid-save?)",
            )
        if doc.get("page_size") != page_size:
            raise _corrupt(
                meta,
                f"stale sidecar: page_size {doc.get('page_size')!r} does not "
                f"match directory page_size {page_size}",
            )

    def _replay_log(self, log: Path, epoch: int) -> None:
        """Apply the append log's records (no re-logging: they are on disk)."""
        if not log.exists():
            raise _corrupt(
                log,
                "missing append log (mutations since the last save are "
                "unrecoverable; re-save the database to recreate it)",
            )
        try:
            data = log.read_bytes()
        except OSError as error:
            raise _corrupt(log, f"unreadable append log: {error}") from error
        if data[: len(_LOG_MAGIC)] != _LOG_MAGIC:
            raise _corrupt(log, "not an append log (bad magic)")
        try:
            (log_epoch,) = struct.unpack_from("<Q", data, len(_LOG_MAGIC))
        except struct.error as error:
            raise _corrupt(log, f"truncated log header: {error}") from error
        if log_epoch != epoch:
            raise _corrupt(
                log,
                f"stale append log: epoch {log_epoch} does not match "
                f"directory epoch {epoch}",
            )
        pos = len(_LOG_MAGIC) + 8
        try:
            while pos < len(data):
                op = data[pos : pos + 1]
                pos += 1
                if op == b"A":
                    seq_id, count = _LOG_APPEND.unpack_from(data, pos)
                    pos += _LOG_APPEND.size
                    end = pos + 8 * count
                    if end > len(data):
                        raise _corrupt(
                            log, f"truncated append record for sequence {seq_id}"
                        )
                    arr = np.frombuffer(data[pos:end], dtype="<f8").astype(
                        np.float64
                    )
                    pos = end
                    self._append_values(seq_id, arr)
                elif op == b"D":
                    (seq_id,) = _LOG_DELETE.unpack_from(data, pos)
                    pos += _LOG_DELETE.size
                    self._remove_entry(seq_id)
                elif op == b"C":
                    self._compact_entries()
                else:
                    raise _corrupt(log, f"unknown log opcode {op!r}")
        except struct.error as error:
            raise _corrupt(log, f"truncated log record: {error}") from error

    # -- pickling (process-executor replicas) --------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the map or the log handle.

        A replica re-opens the data file read-only on arrival — spawn
        cost does not scale with the mapped values — and never holds
        the log open: mirrored mutations mutate the replica's memory
        only, leaving the parent the sole writer of the on-disk log.
        """
        state = self.__dict__.copy()
        state["_log_file"] = None
        state["_mapped"] = None
        # The full save-time map length, not the live-record total:
        # deleted records' values stay in the file (and spans of the
        # survivors keep their original positions) until the next save.
        state["_n_mapped"] = int(self._mapped.size)
        state["_tail"] = np.array(self._tail[: self._tail_len])
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        n_mapped = state.pop("_n_mapped")
        self.__dict__.update(state)
        if self._paths is not None:
            self._mapped = self._open_map(self._paths[1], n_mapped)
        else:
            self._mapped = np.empty(0, dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"MmapColumnarStore({len(self)} sequences, "
            f"{self.total_pages} logical pages, epoch {self._epoch})"
        )
