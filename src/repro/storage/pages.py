"""Byte-level paged heap store for sequences — the ``heap`` oracle.

Sequences are serialized with a fixed binary layout and appended to a
growing page file.  Records are *spanned*: a long sequence occupies a
contiguous byte range that may cross page boundaries, and the page span
of any record is derived from its byte offsets — this is what converts
logical reads into page-access counts for the disk model.  Every other
registered :class:`~repro.storage.store.SequenceStore` replicates this
byte arithmetic logically, which is why the heap store doubles as the
parity oracle.

Record layout (little-endian)::

    u64  sequence id
    u32  element count n
    f64  elements[n]

The file can be persisted to and re-loaded from a real file on disk, so
databases survive process restarts.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import ClassVar, Iterator

import numpy as np

from ..exceptions import SequenceNotFoundError, StorageError, ValidationError
from ..types import Sequence, as_array
from .store import SequenceStore, register_store

__all__ = ["HeapSequenceStore", "SequenceHeapFile"]

_HEADER = struct.Struct("<QI")  # sequence id, element count
_MAGIC = b"RPRS\x01"


@register_store
class HeapSequenceStore(SequenceStore):
    """Append-only heap file of serialized sequences on fixed-size pages."""

    name: ClassVar[str] = "heap"
    magic: ClassVar[bytes] = _MAGIC

    def __init__(self, page_size: int = 1024) -> None:
        if page_size < _HEADER.size + 8:
            raise ValidationError(
                f"page_size {page_size} too small for a record header"
            )
        self._page_size = page_size
        self._buf = bytearray()
        self._offsets: dict[int, tuple[int, int]] = {}  # id -> (offset, length)
        self._order: list[int] = []  # ids in physical order

    # -- geometry -----------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._page_size

    @property
    def total_bytes(self) -> int:
        """Bytes currently stored."""
        return len(self._buf)

    @property
    def total_pages(self) -> int:
        """Pages the file occupies (ceiling of bytes / page size)."""
        return -(-len(self._buf) // self._page_size) if self._buf else 0

    def pages_of(self, seq_id: int) -> range:
        """The page numbers a stored record spans."""
        offset, length = self._locate(seq_id)
        first = offset // self._page_size
        last = (offset + length - 1) // self._page_size
        return range(first, last + 1)

    def _locate(self, seq_id: int) -> tuple[int, int]:
        try:
            return self._offsets[seq_id]
        except KeyError:
            raise SequenceNotFoundError(f"sequence {seq_id} is not stored") from None

    # -- writes -----------------------------------------------------------------

    def append(self, seq_id: int, values: np.ndarray) -> range:
        """Serialize and append one sequence; returns its page span."""
        if seq_id in self._offsets:
            raise StorageError(f"sequence {seq_id} already stored")
        if seq_id < 0:
            raise ValidationError(f"seq_id must be non-negative, got {seq_id}")
        arr = as_array(values, allow_empty=False)
        record = _HEADER.pack(seq_id, arr.size) + arr.astype("<f8").tobytes()
        offset = len(self._buf)
        self._buf.extend(record)
        self._offsets[seq_id] = (offset, len(record))
        self._order.append(seq_id)
        return self.pages_of(seq_id)

    def remove(self, seq_id: int) -> int:
        """Drop a record from the directory; returns the bytes tombstoned.

        The record's bytes stay in the file (append-only heap) until
        :meth:`compact` reclaims them — the standard tombstone scheme.
        """
        _offset, length = self._locate(seq_id)
        del self._offsets[seq_id]
        self._order.remove(seq_id)
        return length

    def compact(self) -> int:
        """Rewrite the file dropping tombstoned space; returns bytes freed.

        Offsets of surviving records change; page spans are recomputed
        implicitly because they derive from the offsets.
        """
        new_buf = bytearray()
        new_offsets: dict[int, tuple[int, int]] = {}
        for seq_id in self._order:
            offset, length = self._offsets[seq_id]
            new_offsets[seq_id] = (len(new_buf), length)
            new_buf += self._buf[offset : offset + length]
        freed = len(self._buf) - len(new_buf)
        self._buf = new_buf
        self._offsets = new_offsets
        return freed

    # -- reads ---------------------------------------------------------------------

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def ids(self) -> list[int]:
        """Stored ids in physical (insertion) order."""
        return list(self._order)

    def read(self, seq_id: int) -> Sequence:
        """Deserialize one sequence by id."""
        offset, length = self._locate(seq_id)
        return self._decode(offset, length, expect_id=seq_id)

    def scan(self) -> Iterator[Sequence]:
        """Iterate all sequences in physical order (a sequential scan)."""
        for seq_id in self._order:
            offset, length = self._offsets[seq_id]
            yield self._decode(offset, length, expect_id=seq_id)

    def _decode(self, offset: int, length: int, *, expect_id: int) -> Sequence:
        header = self._buf[offset : offset + _HEADER.size]
        seq_id, count = _HEADER.unpack(bytes(header))
        if seq_id != expect_id:
            raise StorageError(
                f"corrupt record: expected id {expect_id}, found {seq_id}"
            )
        body_size = count * 8
        if _HEADER.size + body_size != length:
            raise StorageError(
                f"corrupt record {seq_id}: length {length} does not match "
                f"element count {count}"
            )
        start = offset + _HEADER.size
        values = np.frombuffer(
            bytes(self._buf[start : start + body_size]), dtype="<f8"
        )
        return Sequence(values, seq_id=seq_id)

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the heap file (with directory) to a real file."""
        path = Path(path)
        directory = struct.pack("<I", len(self._order))
        for seq_id in self._order:
            offset, length = self._offsets[seq_id]
            directory += struct.pack("<QQQ", seq_id, offset, length)
        with open(path, "wb") as f:
            f.write(_MAGIC)
            f.write(struct.pack("<I", self._page_size))
            f.write(directory)
            f.write(bytes(self._buf))

    @classmethod
    def load(cls, path: str | Path) -> "HeapSequenceStore":
        """Re-open a heap file written by :meth:`save`.

        Corrupt or truncated files raise
        :class:`~repro.exceptions.StorageError` with the path in the
        message; low-level ``struct.error``/``OSError`` never escape.
        """
        path = Path(path)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as error:
            raise StorageError(
                f"cannot read heap store {path}: {error}"
            ) from error
        if data[: len(_MAGIC)] != _MAGIC:
            raise StorageError(f"{path} is not a repro heap file")
        try:
            pos = len(_MAGIC)
            (page_size,) = struct.unpack_from("<I", data, pos)
            pos += 4
            (count,) = struct.unpack_from("<I", data, pos)
            pos += 4
            heap = cls(page_size=page_size)
            entries = []
            for _ in range(count):
                seq_id, offset, length = struct.unpack_from("<QQQ", data, pos)
                pos += 24
                entries.append((seq_id, offset, length))
            heap._buf = bytearray(data[pos:])
            for seq_id, offset, length in entries:
                if offset + length > len(heap._buf):
                    raise StorageError(
                        f"heap store {path} is truncated: record {seq_id} "
                        f"ends at byte {offset + length} of a "
                        f"{len(heap._buf)}-byte data section"
                    )
                heap._offsets[seq_id] = (offset, length)
                heap._order.append(seq_id)
        except struct.error as error:
            raise StorageError(
                f"heap store {path} is truncated or corrupt: {error}"
            ) from error
        return heap


#: Historical name of the heap store (pre store-registry API).
SequenceHeapFile = HeapSequenceStore
