"""Paged storage engine with a simulated disk cost model.

The paper measures elapsed times on a 2001-era workstation whose 9.5 ms
disk seek dominates random I/O.  Re-running on modern hardware (or fully
in memory) would distort the CPU/IO balance that produces the paper's
crossovers, so this package provides:

* :mod:`repro.storage.pages` — a real byte-level heap file of fixed-size
  pages holding serialized sequences.
* :mod:`repro.storage.buffer` — an LRU buffer pool deciding which page
  accesses hit memory.
* :mod:`repro.storage.diskmodel` — converts page-access counts into
  simulated disk time with the paper's disk parameters (sequential scans
  pay transfer cost; random fetches pay seek + transfer).
* :mod:`repro.storage.database` — :class:`SequenceDatabase`, the façade
  all search methods read sequences through, accumulating I/O counters.
"""

from .buffer import BufferPool
from .database import IOStats, SequenceDatabase
from .diskmodel import DiskModel
from .pages import SequenceHeapFile

__all__ = [
    "BufferPool",
    "DiskModel",
    "IOStats",
    "SequenceDatabase",
    "SequenceHeapFile",
]
