"""Paged storage engine with a simulated disk cost model.

The paper measures elapsed times on a 2001-era workstation whose 9.5 ms
disk seek dominates random I/O.  Re-running on modern hardware (or fully
in memory) would distort the CPU/IO balance that produces the paper's
crossovers, so this package provides:

* :mod:`repro.storage.store` — the pluggable :class:`SequenceStore`
  registry (``store=`` / ``REPRO_STORE``): where sequence bytes live.
* :mod:`repro.storage.pages` — the ``heap`` store: a real byte-level
  heap file of fixed-size pages holding serialized sequences (the
  parity oracle).
* :mod:`repro.storage.columnar` — the ``mmap`` store: one contiguous
  memory-mapped float64 data file plus offset directory, versioned
  ``.meta`` sidecar and append log; reads are zero-copy views.
* :mod:`repro.storage.buffer` — an LRU buffer pool deciding which page
  accesses hit memory.
* :mod:`repro.storage.diskmodel` — converts page-access counts into
  simulated disk time with the paper's disk parameters (sequential scans
  pay transfer cost; random fetches pay seek + transfer).
* :mod:`repro.storage.database` — :class:`SequenceDatabase`, the façade
  all search methods read sequences through, accumulating I/O counters.

Every store honours the heap's *logical* byte arithmetic (``12 + 8n``
bytes per record), so page counts and all simulated ``storage.*``
charges are bit-identical across stores.
"""

from .buffer import BufferPool
from .columnar import MmapColumnarStore
from .database import IOStats, SequenceDatabase
from .diskmodel import DiskModel
from .pages import HeapSequenceStore, SequenceHeapFile
from .store import (
    DEFAULT_STORE,
    ENV_STORE,
    STORES,
    MmapSource,
    SequenceStore,
    available_stores,
    make_store,
    register_store,
    resolve_store_name,
    sniff_store_name,
)

__all__ = [
    "BufferPool",
    "DEFAULT_STORE",
    "DiskModel",
    "ENV_STORE",
    "HeapSequenceStore",
    "IOStats",
    "MmapColumnarStore",
    "MmapSource",
    "STORES",
    "SequenceDatabase",
    "SequenceHeapFile",
    "SequenceStore",
    "available_stores",
    "make_store",
    "register_store",
    "resolve_store_name",
    "sniff_store_name",
]
