"""Smoothing and resampling transformations (moving averages et al.).

Moving averages are the transformation of Rafiei & Mendelzon's work
cited in the paper's introduction; downsampling models the
different-sampling-rate scenario of the paper's footnote 1 (a sequence
sampled every minute vs every second) that motivates time warping.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence, SequenceLike, as_array

__all__ = ["moving_average", "exponential_smoothing", "downsample"]


def moving_average(
    sequence: SequenceLike,
    window: int,
    *,
    weights: SequenceLike | None = None,
) -> Sequence:
    """Simple (or weighted) moving average with a trailing window.

    Output element ``i`` averages input elements ``max(0, i-window+1)
    .. i`` — the output has the same length as the input, with a
    warm-up region that averages what is available.  *weights*, if
    given, must have length *window* and applies newest-to-oldest.
    """
    arr = as_array(sequence, allow_empty=False)
    if window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")
    if weights is not None:
        w = as_array(weights)
        if w.size != window:
            raise ValidationError(
                f"weights must have length {window}, got {w.size}"
            )
        if w.sum() == 0:
            raise ValidationError("weights must not sum to zero")
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        chunk = arr[lo : i + 1]
        if weights is None:
            out[i] = chunk.mean()
        else:
            w_used = as_array(weights)[window - chunk.size :]
            out[i] = float((chunk * w_used).sum() / w_used.sum())
    return Sequence(out)


def exponential_smoothing(sequence: SequenceLike, alpha: float) -> Sequence:
    """Classic EWMA: ``y_0 = x_0``, ``y_i = a x_i + (1-a) y_{i-1}``."""
    arr = as_array(sequence, allow_empty=False)
    if not 0.0 < alpha <= 1.0:
        raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(arr)
    out[0] = arr[0]
    for i in range(1, arr.size):
        out[i] = alpha * arr[i] + (1.0 - alpha) * out[i - 1]
    return Sequence(out)


def downsample(sequence: SequenceLike, factor: int) -> Sequence:
    """Keep every *factor*-th element (starting from the first).

    Models the different-sampling-rate scenario of the paper's
    footnote 1; a downsampled sequence warps back onto its original
    with zero Definition-2 distance whenever the original is piecewise
    constant over the dropped spans.
    """
    arr = as_array(sequence, allow_empty=False)
    if factor < 1:
        raise ValidationError(f"factor must be >= 1, got {factor}")
    return Sequence(arr[::factor])
