"""Sequence transformations from the similarity-search literature.

The paper's introduction surveys the transformations similarity-search
systems support — scaling and shifting [Agrawal et al., Goldin &
Kanellakis], normalization, and moving averages [Rafiei & Mendelzon]
— and positions time warping among them.  This package implements that
toolbox so queries can combine preprocessing with the warping search
(e.g. "find sequences whose *shape* matches, regardless of price
level": z-normalize, then search):

* :mod:`repro.transforms.pointwise` — shifting, scaling, z- and
  min-max normalization.
* :mod:`repro.transforms.smoothing` — moving averages (simple,
  weighted, exponential) and downsampling.
* :mod:`repro.transforms.pipeline` — composition of transforms, usable
  anywhere a preprocessing callable is accepted.
"""

from .pipeline import Pipeline
from .pointwise import minmax_normalize, scale, shift, znormalize
from .smoothing import downsample, exponential_smoothing, moving_average

__all__ = [
    "Pipeline",
    "minmax_normalize",
    "scale",
    "shift",
    "znormalize",
    "downsample",
    "exponential_smoothing",
    "moving_average",
]
