"""Composable transformation pipelines.

A :class:`Pipeline` chains transform callables into one preprocessing
step, applied identically to data and query sequences so the search
semantics stay coherent (e.g. z-normalize both sides, then search under
time warping for *shape* similarity independent of level).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence as TypingSequence

from ..exceptions import ValidationError
from ..types import Sequence, SequenceLike, as_sequence

__all__ = ["Pipeline"]

#: A transform maps a sequence-like input to a Sequence.
Transform = Callable[[SequenceLike], Sequence]


class Pipeline:
    """A left-to-right composition of sequence transforms.

    Example
    -------
    >>> from repro.transforms import Pipeline, moving_average, znormalize
    >>> prep = Pipeline([lambda s: moving_average(s, 3), znormalize])
    >>> len(prep([1.0, 2.0, 3.0, 4.0]))
    4
    """

    def __init__(self, steps: TypingSequence[Transform]) -> None:
        if not steps:
            raise ValidationError("pipeline requires at least one step")
        for i, step in enumerate(steps):
            if not callable(step):
                raise ValidationError(f"step {i} is not callable")
        self._steps = list(steps)

    @property
    def steps(self) -> list[Transform]:
        """The composed transforms, in application order."""
        return list(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __call__(self, sequence: SequenceLike) -> Sequence:
        current = as_sequence(sequence)
        for step in self._steps:
            current = as_sequence(step(current))
        return current

    def apply_all(self, sequences: Iterable[SequenceLike]) -> list[Sequence]:
        """Transform a whole collection (e.g. a database before loading)."""
        return [self(seq) for seq in sequences]

    def then(self, step: Transform) -> "Pipeline":
        """A new pipeline with *step* appended."""
        return Pipeline(self._steps + [step])

    def __repr__(self) -> str:
        names = [getattr(s, "__name__", type(s).__name__) for s in self._steps]
        return f"Pipeline({' -> '.join(names)})"
