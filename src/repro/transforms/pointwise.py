"""Element-wise transformations: shifting, scaling, normalization."""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence, SequenceLike, as_array

__all__ = ["shift", "scale", "znormalize", "minmax_normalize"]


def shift(sequence: SequenceLike, offset: float) -> Sequence:
    """Add *offset* to every element.

    Shifting commutes with time warping: ``D_tw(S + c, Q + c) =
    D_tw(S, Q)`` under any ``L_p`` base distance.
    """
    arr = as_array(sequence, allow_empty=False)
    if not np.isfinite(offset):
        raise ValidationError(f"offset must be finite, got {offset}")
    return Sequence(arr + offset)


def scale(sequence: SequenceLike, factor: float) -> Sequence:
    """Multiply every element by *factor*.

    Scaling scales the Definition-2 distance: ``D_tw(aS, aQ) =
    |a| D_tw(S, Q)``.
    """
    arr = as_array(sequence, allow_empty=False)
    if not np.isfinite(factor):
        raise ValidationError(f"factor must be finite, got {factor}")
    return Sequence(arr * factor)


def znormalize(sequence: SequenceLike, *, epsilon: float = 1e-12) -> Sequence:
    """Zero-mean, unit-variance normalization.

    The standard preprocessing for *shape* matching: two sequences that
    differ only in level and amplitude normalize to the same shape.
    Constant sequences (std below *epsilon*) map to all-zero.
    """
    arr = as_array(sequence, allow_empty=False)
    std = float(arr.std())
    mean = float(arr.mean())
    if std < epsilon:
        return Sequence(np.zeros_like(arr))
    return Sequence((arr - mean) / std)


def minmax_normalize(
    sequence: SequenceLike, *, low: float = 0.0, high: float = 1.0
) -> Sequence:
    """Affinely map the value range onto ``[low, high]``.

    Constant sequences map to the midpoint of the target interval.
    """
    if not (low < high):
        raise ValidationError(f"requires low < high, got [{low}, {high}]")
    arr = as_array(sequence, allow_empty=False)
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        mid = (low + high) / 2.0
        return Sequence(np.full_like(arr, mid))
    scaled = (arr - lo) / (hi - lo)
    return Sequence(scaled * (high - low) + low)
