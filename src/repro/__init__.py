"""repro — index-based similarity search under time warping.

A complete, from-scratch reproduction of **Kim, Park & Chu, "An
Index-Based Approach for Similarity Search Supporting Time Warping in
Large Sequence Databases" (ICDE 2001)** — the paper behind the LB_Kim
lower bound.

Quickstart
----------
>>> from repro import TimeWarpingDatabase
>>> db = TimeWarpingDatabase()
>>> db.insert([20, 21, 21, 20, 20, 23, 23, 23])
0
>>> matches = db.search([20, 20, 21, 20, 23], epsilon=0.5)
>>> [(m.seq_id, m.distance) for m in matches]
[(0, 0.0)]

Layered public API
------------------
* :class:`TimeWarpingDatabase` — the end-to-end facade (storage +
  4-d feature R-tree + Algorithm-1 search + kNN).
* :mod:`repro.distance` — DTW (both of the paper's definitions) and
  every lower bound (``D_tw-lb``/LB_Kim, LB_Yi, LB_Keogh).
* :mod:`repro.methods` — the four compared search methods with full
  cost accounting, for experiments.
* :mod:`repro.index` / :mod:`repro.storage` — the R-tree, suffix tree
  and paged-storage substrates, usable on their own.
* :mod:`repro.data` — the paper's data generators and query workloads.
* :mod:`repro.eval` — the experiment harness regenerating every figure.
"""

from .core.engine import SearchOutcome, TimeWarpingDatabase
from .core.features import FeatureVector, extract_feature
from .core.lower_bound import dtw_lb
from .core.query_engine import QueryEngine
from .core.sharding import ShardedDatabase
from .core.streaming import StreamMonitor
from .core.subsequence import SubsequenceIndex, SubsequenceMatch
from .index.backend import BACKEND_NAMES, IndexBackend, make_backend
from .distance.base import L1, L2, LINF, BaseDistance
from .distance.dtw import dtw_additive, dtw_distance, dtw_max
from .exceptions import ReproError, ValidationError
from .types import Sequence

__version__ = "1.0.0"

__all__ = [
    "TimeWarpingDatabase",
    "SearchOutcome",
    "QueryEngine",
    "ShardedDatabase",
    "IndexBackend",
    "BACKEND_NAMES",
    "make_backend",
    "FeatureVector",
    "extract_feature",
    "dtw_lb",
    "StreamMonitor",
    "SubsequenceIndex",
    "SubsequenceMatch",
    "BaseDistance",
    "L1",
    "L2",
    "LINF",
    "dtw_additive",
    "dtw_distance",
    "dtw_max",
    "ReproError",
    "ValidationError",
    "Sequence",
    "__version__",
]
