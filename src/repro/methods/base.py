"""Uniform interface and accounting shared by all search methods.

A method is *built* once over a :class:`~repro.storage.database.
SequenceDatabase` (constructing whatever index it needs) and then
answers any number of ``(query, epsilon)`` searches.  Every search
returns a :class:`SearchReport` carrying the answers, the candidate set
(the paper's Figure-2 metric), and a :class:`MethodStats` timing/IO
breakdown (the paper's Figure-3/4/5 metric).

The *elapsed time* a report exposes is ``cpu_seconds +
simulated_io_seconds``: measured host CPU plus modeled disk time, per
the cost-model decision documented in DESIGN.md.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..core.cascade import CascadeStats
from ..distance.dtw import dtw_max_early_abandon, dtw_max_within
from ..exceptions import ValidationError
from ..obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
    use_registry,
)
from ..obs.tracing import maybe_span
from ..storage.database import SequenceDatabase
from ..types import Sequence, SequenceLike, as_sequence

__all__ = ["MethodStats", "SearchReport", "SearchMethod"]


@dataclass
class MethodStats:
    """Cost breakdown of one search (or one build).

    Attributes
    ----------
    cpu_seconds:
        Measured host CPU (process) time.
    simulated_io_seconds:
        Modeled disk time: data-file pages via the database's disk
        model plus index pages charged by the method.
    index_node_reads:
        Index nodes visited (R-tree or suffix tree), 0 for scans.
    sequences_read:
        Sequences materialized from storage.
    dtw_computations:
        Full ``D_tw`` verifications performed.
    lower_bound_computations:
        Cheap filter evaluations (``D_lb``/``D_tw-lb``) performed.
    """

    cpu_seconds: float = 0.0
    simulated_io_seconds: float = 0.0
    index_node_reads: int = 0
    sequences_read: int = 0
    dtw_computations: int = 0
    lower_bound_computations: int = 0

    @property
    def elapsed_seconds(self) -> float:
        """Total modeled elapsed time (CPU + simulated disk)."""
        return self.cpu_seconds + self.simulated_io_seconds


@dataclass
class SearchReport:
    """Everything one search produced.

    Attributes
    ----------
    method:
        Name of the method that ran.
    epsilon:
        The query tolerance.
    answers:
        Ids of sequences with ``D_tw(S, Q) <= epsilon`` (ascending).
    distances:
        ``{seq_id: D_tw}`` for every answer — populated only when the
        method was constructed with ``compute_distances=True``; the
        similarity-search problem itself only requires the ``<= eps``
        decision, and exact-value refinement costs extra.
    candidates:
        Ids surviving the method's filtering step — what Figure 2 plots.
        For Naive-Scan this equals ``answers`` by the paper's convention.
    stats:
        The cost breakdown.
    cascade:
        Per-stage pruning counters of the method's filter pipeline
        (:class:`~repro.core.cascade.CascadeStats`), when the method
        reports them — every built-in method does.
    """

    method: str
    epsilon: float
    answers: list[int]
    distances: dict[int, float]
    candidates: list[int]
    stats: MethodStats = field(default_factory=MethodStats)
    cascade: CascadeStats | None = None
    #: Full registry snapshot of this search's charges (cascade tiers,
    #: index node reads, DTW cells, storage pages, method cost lines).
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def candidate_count(self) -> int:
        """Size of the candidate set."""
        return len(self.candidates)

    def candidate_ratio(self, database_size: int) -> float:
        """Figure 2's y-axis: candidates over database size."""
        if database_size <= 0:
            raise ValidationError(
                f"database_size must be positive, got {database_size}"
            )
        return len(self.candidates) / database_size


class SearchMethod(abc.ABC):
    """Base class: build once over a database, search many times.

    Parameters
    ----------
    database:
        The sequence database to search.
    compute_distances:
        When True, verification also refines the exact ``D_tw`` value
        of every answer (populating :attr:`SearchReport.distances`);
        when False (default) only the ``<= eps`` decision is computed,
        which is all the paper's similarity-search problem requires.
    """

    #: Human-readable method name, as used in the paper's figures.
    name: str = "abstract"

    def __init__(
        self, database: SequenceDatabase, *, compute_distances: bool = False
    ) -> None:
        self._db = database
        self._compute_distances = compute_distances
        self._built = False
        self.build_stats = MethodStats()
        #: Per-stage pruning counters the last ``_search_impl`` reported.
        self._last_cascade: CascadeStats | None = None

    @property
    def database(self) -> SequenceDatabase:
        """The database this method searches."""
        return self._db

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    # -- lifecycle -----------------------------------------------------------

    def build(self) -> "SearchMethod":
        """Construct the method's access structures; returns ``self``."""
        start_cpu = time.process_time()
        self._db.io.mark(f"{self.name}:build")
        self._build_impl()
        self.build_stats.cpu_seconds += time.process_time() - start_cpu
        self.build_stats.simulated_io_seconds += self._db.io.delta_seconds(
            f"{self.name}:build"
        )
        self._built = True
        return self

    @abc.abstractmethod
    def _build_impl(self) -> None:
        """Method-specific index construction."""

    # -- searching -------------------------------------------------------------

    def search(self, query: SequenceLike, epsilon: float) -> SearchReport:
        """Run one similarity search and account for its costs."""
        if not self._built:
            raise ValidationError(f"{self.name} must be built before searching")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        stats = MethodStats()
        mark = f"{self.name}:search"
        outer = active_registry()
        per_query = MetricsRegistry()
        with use_registry(per_query), maybe_span(
            "method.search", method=self.name, epsilon=epsilon
        ):
            self._db.io.mark(mark)
            start_cpu = time.process_time()
            self._last_cascade = None
            answers, distances, candidates = self._search_impl(q, epsilon, stats)
            if not self._compute_distances:
                distances = {}  # decision-only: values are not exact
            stats.cpu_seconds += time.process_time() - start_cpu
            stats.simulated_io_seconds += self._db.io.delta_seconds(mark)
            self._charge_method_stats(per_query, stats)
        snapshot = per_query.snapshot()
        if outer is not None:
            outer.merge(snapshot)
        return SearchReport(
            method=self.name,
            epsilon=epsilon,
            answers=sorted(answers),
            distances=distances,
            candidates=sorted(candidates),
            stats=stats,
            cascade=self._last_cascade,
            metrics=snapshot,
        )

    def _charge_method_stats(
        self, registry: MetricsRegistry, stats: MethodStats
    ) -> None:
        """Mirror the legacy :class:`MethodStats` cost lines as
        ``method.<name>.*`` registry counters (one plane, two views)."""
        prefix = f"method.{self.name.lower()}"
        registry.count(f"{prefix}.searches")
        registry.count(f"{prefix}.cpu_seconds", stats.cpu_seconds)
        registry.count(
            f"{prefix}.simulated_io_seconds", stats.simulated_io_seconds
        )
        registry.count(f"{prefix}.index_node_reads", stats.index_node_reads)
        registry.count(f"{prefix}.sequences_read", stats.sequences_read)
        registry.count(f"{prefix}.dtw_computations", stats.dtw_computations)
        registry.count(
            f"{prefix}.lower_bound_computations",
            stats.lower_bound_computations,
        )

    def search_many(
        self, queries: Iterable[SequenceLike], epsilon: float
    ) -> list[SearchReport]:
        """Run a batch of searches; one report per query.

        The default runs :meth:`search` per query; vectorized methods
        override it to amortize filtering across the batch while
        producing reports with identical answers and candidates.
        """
        return [self.search(query, epsilon) for query in queries]

    @abc.abstractmethod
    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        """Return ``(answers, distances, candidates)``."""

    # -- shared verification -------------------------------------------------------

    def _verify(
        self,
        sequence: Sequence,
        query: Sequence,
        epsilon: float,
        stats: MethodStats,
    ) -> float:
        """Early-abandoning ``D_tw`` check.

        Returns the exact distance when ``compute_distances`` is on;
        otherwise a value that is ``<= epsilon`` iff the sequence
        qualifies (the decision is exact either way, the value is not).
        Non-qualifying sequences always yield ``inf``.
        """
        stats.dtw_computations += 1
        if self._compute_distances:
            return dtw_max_early_abandon(sequence.values, query.values, epsilon)
        if dtw_max_within(sequence.values, query.values, epsilon):
            return epsilon
        return float("inf")

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"{type(self).__name__}({state}, db={len(self._db)} sequences)"
