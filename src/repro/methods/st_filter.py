"""ST-Filter (paper section 3.4; Park et al.): suffix-tree filtering.

Build: fit an equal-length-interval categorizer over the database
(paper: 100 categories), convert every sequence to symbols, and build a
generalized suffix tree.  Search: traverse the tree with the pruned
time-warping DP (:class:`~repro.index.suffixtree.search.
WarpingTraversal`); surviving complete sequences are the candidates,
each then fetched from storage and verified with the true ``D_tw``.

The suffix tree assumes no distance function, so the method never
causes false dismissal — but, as the paper's Figures 3–4 show, whole
matching pays for an "abnormally enlarged" suffix tree: the tree's node
count grows with total database volume, and that traversal cost is what
this implementation charges via index node accesses.

The categorizer + suffix tree live behind the shared
:class:`~repro.index.backend.SuffixTreeBackend`, so the same substrate
is selectable in the engine facade (``backend="suffixtree"``).
"""

from __future__ import annotations

from ..core.cascade import CascadeStats, StageStats, verify_stage
from ..core.query_engine import charged_candidates
from ..distance.dtw import dtw_max_early_abandon
from ..exceptions import NotBuiltError, ValidationError
from ..index.backend import SuffixTreeBackend
from ..index.rtree.stats import AccessStats
from ..index.suffixtree.search import WarpingTraversal
from ..index.suffixtree.ukkonen import GeneralizedSuffixTree
from ..types import Sequence, as_sequence
from .base import MethodStats, SearchMethod

__all__ = ["STFilter"]

#: Approximate serialized bytes per suffix-tree node (edge bounds,
#: child table slot, suffix link) used to charge index I/O.
_NODE_BYTES = 48


class STFilter(SearchMethod):
    """Suffix-tree candidate generation + DTW verification.

    Parameters
    ----------
    database:
        The sequence database to search.
    n_categories:
        Number of value categories (paper's experiments: 100).
    strategy:
        Boundary strategy: "equal-width" (the paper's
        equal-length-interval method) or "equal-frequency".
    """

    name = "ST-Filter"

    def __init__(
        self,
        database,
        *,
        n_categories: int = 100,
        strategy: str = "equal-width",
        compute_distances: bool = False,
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        self._n_categories = n_categories
        self._strategy = strategy
        self._backend: SuffixTreeBackend | None = None

    @property
    def n_categories(self) -> int:
        """Number of categorization intervals."""
        return self._n_categories

    @property
    def backend(self) -> SuffixTreeBackend:
        """The built suffix-tree backend (after :meth:`build`)."""
        if self._backend is None:
            raise NotBuiltError("ST-Filter has not been built")
        return self._backend

    @property
    def tree(self) -> GeneralizedSuffixTree:
        """The built suffix tree (after :meth:`build`)."""
        return self.backend.tree

    def index_size_in_bytes(self) -> int:
        """Approximate on-disk size of the suffix tree."""
        return self.backend.node_stats().size_in_bytes

    def _build_impl(self) -> None:
        backend = SuffixTreeBackend(
            page_size=self._db.page_size,
            n_categories=self._n_categories,
            strategy=self._strategy,
        )
        items = []
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            items.append((sequence.seq_id, sequence.values))
        backend.bulk_load(items)
        # Force the categorizer + tree construction into build time
        # (the backend otherwise builds lazily on the first query).
        backend.node_stats()
        self._backend = backend

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        backend = self.backend
        candidates = charged_candidates(
            backend,
            self._db,
            query.values,
            epsilon,
            stats,
            io_charge=self._index_io_seconds,
        )

        # Verification through the shared cascade stage: every
        # candidate is fetched and checked with the true distance.
        def verifier(seq_id: int) -> float:
            sequence = self._db.fetch(seq_id)
            stats.sequences_read += 1
            return self._verify(sequence, query, epsilon, stats)

        answers, distances, dtw_stage = verify_stage(
            candidates, verifier, epsilon
        )
        self._last_cascade = CascadeStats(
            [
                StageStats("suffix-tree", len(self._db), len(candidates)),
                dtw_stage,
            ]
        )
        return answers, distances, candidates

    def subsequence_search(
        self, query, epsilon: float
    ) -> list[tuple[int, int, int, float]]:
        """Subsequence matching — the workload ST-Filter was designed for.

        Returns verified matches ``(seq_id, start, length, distance)``
        over *all* window lengths (the suffix tree materializes every
        subsequence, unlike the windowed feature index which only
        covers configured lengths).  Complete over every contiguous
        subsequence of every stored sequence.

        Note the returned matches are *minimal certificates* from the
        categorized traversal: a triple is emitted when the categorized
        window can match within tolerance and the raw window verifies.
        """
        backend = self.backend
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if len(backend) == 0:
            return []
        access = AccessStats()
        traversal = WarpingTraversal(
            backend.tree, backend.categorizer, stats=access
        )
        candidates = traversal.subsequence_candidates(q.values, epsilon)
        position_ids = backend.position_ids

        cache: dict[int, Sequence] = {}
        matches: list[tuple[int, int, int, float]] = []
        for position, start, length in candidates:
            seq_id = position_ids[position]
            if seq_id not in cache:
                cache[seq_id] = self._db.fetch(seq_id)
            window = cache[seq_id].values[start : start + length]
            distance = dtw_max_early_abandon(window, q.values, epsilon)
            if distance <= epsilon:
                matches.append((seq_id, start, length, distance))
        matches.sort(key=lambda m: (m[3], m[0], m[1], m[2]))
        return matches

    def _index_io_seconds(self, node_reads: int) -> float:
        """Charge suffix-tree traversal as page reads of packed nodes."""
        page_size = self._db.page_size
        nodes_per_page = max(1, page_size // _NODE_BYTES)
        pages = -(-node_reads // nodes_per_page)
        return self._db.disk.random_read_time(pages, page_size)
