"""Engine-Search — the public facade measured as an experiment method.

Wraps a :class:`~repro.core.engine.TimeWarpingDatabase` (any backend,
any shard count) behind the :class:`~repro.methods.base.SearchMethod`
accounting contract so the eval harness can sweep index backends and
shard layouts next to the paper's methods.  Build copies the outer
database into the facade (one charged sequential scan, preserving ids);
searches run the full backend → cascade → verification pipeline, with
simulated I/O collected from every shard's storage.

Because every exact backend returns the true answer set, an
Engine-Search report agrees answer-for-answer with TW-Sim-Search and
the scans — the harness's cross-method agreement check applies to it
unchanged.
"""

from __future__ import annotations

from ..core.engine import TimeWarpingDatabase
from ..exceptions import NotBuiltError
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["EngineMethod"]


class EngineMethod(SearchMethod):
    """The composed query engine as a comparable search method.

    Parameters
    ----------
    database:
        The sequence database to search (copied into the facade at
        build time, ids preserved).
    backend:
        Index backend name for every shard.
    shards:
        Number of round-robin shards queried in parallel.
    backend_options:
        Extra options forwarded to each shard's backend constructor.
    executor:
        Shard execution plane (``serial``/``thread``/``process``);
        ``None`` keeps the default resolution.  Answers and charges are
        identical either way — the accounting below reads the
        executor-invariant return-path metrics.
    """

    def __init__(
        self,
        database,
        *,
        backend: str = "rtree",
        shards: int = 1,
        backend_options: dict[str, object] | None = None,
        compute_distances: bool = False,
        executor: str | None = None,
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        self.name = f"Engine[{backend}x{shards}]"
        self._backend_name = backend
        self._shards = shards
        self._backend_options = backend_options
        self._executor = executor
        self._engine_db: TimeWarpingDatabase | None = None

    @property
    def engine(self) -> TimeWarpingDatabase:
        """The built facade (after :meth:`build`)."""
        if self._engine_db is None:
            raise NotBuiltError(f"{self.name} has not been built")
        return self._engine_db

    def index_size_in_bytes(self) -> int:
        """Summed on-disk size of every shard's index."""
        return sum(
            engine.backend.node_stats().size_in_bytes
            for engine in self.engine.sharded.engines
        )

    def close(self) -> None:
        """Release the facade's execution plane (idempotent)."""
        if self._engine_db is not None:
            self._engine_db.close()

    def _build_impl(self) -> None:
        facade = TimeWarpingDatabase.from_storage(
            self._db,
            backend=self._backend_name,
            shards=self._shards,
            backend_options=self._backend_options,
            executor=self._executor,
        )
        # from_storage charges the source scan on the outer database
        # (picked up by the build accounting); shard-local build I/O is
        # folded in here since the facade owns its own storages.
        self.build_stats.simulated_io_seconds += self._drain_shard_io(facade)
        self._engine_db = facade

    @staticmethod
    def _drain_shard_io(facade: TimeWarpingDatabase) -> float:
        """Collect and reset the facade's shard-local simulated I/O."""
        seconds = 0.0
        for storage in facade.shard_storages:
            seconds += storage.io.simulated_seconds
            storage.io.reset()
        return seconds

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        facade = self.engine
        stats.lower_bound_computations += 1
        result = facade.search_detailed(query.values, epsilon)
        # Charges are read off the return-path snapshot, which is
        # merged in shard order and bit-identical for every executor
        # (the process executor's node reads and storage fetches happen
        # in worker replicas, not on the parent's engines).
        counters = result.metrics.counters
        node_reads = int(
            counters.get(f"index.{self._backend_name}.node_reads", 0)
        )
        stats.index_node_reads += node_reads
        stats.simulated_io_seconds += self._db.disk.random_read_time(
            node_reads, self._db.page_size
        )
        # The facade's storages are distinct from the outer database the
        # base class marks, so their per-query charges move over here.
        stats.simulated_io_seconds += float(
            counters.get("storage.simulated_seconds", 0.0)
        )
        candidates = result.candidate_ids
        stats.sequences_read += len(candidates)
        stats.dtw_computations += len(candidates)
        answers = [match.seq_id for match in result.matches]
        distances = {match.seq_id: match.distance for match in result.matches}
        self._last_cascade = result.stats
        return answers, distances, candidates
