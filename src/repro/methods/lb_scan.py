"""LB-Scan (paper section 3.2): sequential scan + Yi et al.'s lower bound.

Still reads the entire database (same I/O as Naive-Scan), but first
evaluates the ``O(|S| + |Q|)`` lower bound ``D_lb``; only sequences with
``D_lb <= eps`` pay for the quadratic DTW verification.  Because
``D_lb`` underestimates ``D_tw``, no qualifying sequence is ever
skipped.  The sequences passing the filter are LB-Scan's candidate set
in Figure 2.

The filter itself runs through the shared vectorized cascade restricted
to its single ``lb_yi`` tier: one matrix comparison over the feature
store instead of a per-sequence Python loop.  The cost model is
unchanged — every search still pays the full sequential scan and one
lower-bound evaluation per stored sequence; only the wall-clock cost of
the filter drops.
"""

from __future__ import annotations

from ..core.cascade import TIER_YI, FilterCascade, scan_cascade
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["LBScan"]


class LBScan(SearchMethod):
    """Sequential scan with a cheap lower-bound pre-filter."""

    name = "LB-Scan"

    def _build_impl(self) -> None:
        """Nothing to build — the scan works directly on the heap file."""
        self._cascade: FilterCascade | None = None

    def _scan_cascade(self) -> FilterCascade:
        """Charge one full sequential scan; return the Yi-tier cascade."""
        self._cascade = scan_cascade(
            self._db, getattr(self, "_cascade", None), tiers=(TIER_YI,)
        )
        return self._cascade

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        cascade = self._scan_cascade()
        store = cascade.store
        stats.sequences_read += len(store)
        stats.lower_bound_computations += len(store)

        def verifier(row: int) -> float:
            return self._verify(store.sequences[row], query, epsilon, stats)

        outcome = cascade.run(query.values, epsilon, verifier=verifier)
        self._last_cascade = outcome.stats
        return outcome.answer_ids, outcome.distances, outcome.candidate_ids
