"""LB-Scan (paper section 3.2): sequential scan + Yi et al.'s lower bound.

Still reads the entire database (same I/O as Naive-Scan), but first
evaluates the ``O(|S| + |Q|)`` lower bound ``D_lb``; only sequences with
``D_lb <= eps`` pay for the quadratic DTW verification.  Because
``D_lb`` underestimates ``D_tw``, no qualifying sequence is ever
skipped.  The sequences passing the filter are LB-Scan's candidate set
in Figure 2.
"""

from __future__ import annotations

from ..distance.base import LINF
from ..distance.lb_yi import lb_yi
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["LBScan"]


class LBScan(SearchMethod):
    """Sequential scan with a cheap lower-bound pre-filter."""

    name = "LB-Scan"

    def _build_impl(self) -> None:
        """Nothing to build — the scan works directly on the heap file."""

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        answers: list[int] = []
        distances: dict[int, float] = {}
        candidates: list[int] = []
        for sequence in self._db.scan():
            stats.sequences_read += 1
            stats.lower_bound_computations += 1
            if lb_yi(sequence.values, query.values, base=LINF) > epsilon:
                continue
            assert sequence.seq_id is not None
            candidates.append(sequence.seq_id)
            distance = self._verify(sequence, query, epsilon, stats)
            if distance <= epsilon:
                answers.append(sequence.seq_id)
                distances[sequence.seq_id] = distance
        return answers, distances, candidates
