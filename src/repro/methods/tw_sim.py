"""TW-Sim-Search — the paper's method (section 4.3, Algorithm 1).

Build (section 4.3.1): extract the 4-tuple feature vector of every
sequence and insert ``<First, Last, Greatest, Smallest, ID>`` into a
4-dimensional R-tree (paper: 1 KB pages).  STR bulk loading is used for
the initial build when requested, per the paper's note on bulk-loading
large initial databases.

Search (Algorithm 1):

1. Extract ``Feature(Q)``.
2. Range-query the index with the 4-d square ``Feature(Q) ± eps`` —
   exactly the set ``{S : D_tw-lb(S, Q) <= eps}``.
3. The returned ids form the candidate set.
4–6. Fetch each candidate and keep those with ``D_tw(S, Q) <= eps``.

Because ``D_tw-lb`` lower-bounds ``D_tw`` (Theorem 1) the candidates are
a superset of the answers: no false dismissal.  Because ``D_tw-lb`` is a
metric (Theorem 2) the index filtering is sound.

The index itself is any *exact* :class:`~repro.index.backend.
IndexBackend` — the paper: "any multi-dimensional indexes such as the
R-tree, R+-tree, R*-tree, and X-tree can be used".
"""

from __future__ import annotations

from typing import Any

from ..core.cascade import CascadeStats, StageStats, verify_stage
from ..core.query_engine import charged_candidates
from ..exceptions import NotBuiltError, ValidationError
from ..index.backend import BACKENDS, IndexBackend, make_backend
from ..index.rtree.rtree import SplitStrategy
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["TWSimSearch", "INDEX_KINDS"]

#: Index structures TW-Sim-Search can run on — the four the paper names.
INDEX_KINDS = ("rtree", "rstar", "rplus", "xtree")


class TWSimSearch(SearchMethod):
    """The paper's index-based method.

    Parameters
    ----------
    database:
        The sequence database to search.
    bulk_load:
        Build the R-tree with STR packing (True, default) or by
        tuple-at-a-time insertion (False) — the A3 ablation's knob.
        Only the plain R-tree supports STR packing; other index kinds
        always build incrementally.
    split:
        Node-split heuristic for incremental R-tree insertion.
    index:
        Which index backend to use.  One of :data:`INDEX_KINDS` (the
        paper's four), or any other exact backend from
        :data:`~repro.index.backend.BACKENDS` (e.g. ``"strbulk"``,
        ``"linear"``).
    """

    name = "TW-Sim-Search"

    def __init__(
        self,
        database,
        *,
        bulk_load: bool = True,
        split: SplitStrategy = SplitStrategy.QUADRATIC,
        index: str = "rtree",
        compute_distances: bool = False,
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        if index not in BACKENDS or not BACKENDS[index].exact:
            exact = tuple(n for n, b in BACKENDS.items() if b.exact)
            raise ValidationError(
                f"index must be one of {exact}, got {index!r}"
            )
        self._bulk_load = bulk_load and index == "rtree"
        self._split = split
        self._index_kind = index
        self._backend: IndexBackend | None = None

    @property
    def backend(self) -> IndexBackend:
        """The built index backend (after :meth:`build`)."""
        if self._backend is None:
            raise NotBuiltError("TW-Sim-Search has not been built")
        return self._backend

    @property
    def tree(self) -> Any:
        """The built 4-d feature index structure (after :meth:`build`)."""
        backend = self.backend
        return getattr(backend, "tree", backend)

    @property
    def index_kind(self) -> str:
        """Which index structure this instance uses."""
        return self._index_kind

    def index_size_in_bytes(self) -> int:
        """On-disk size of the index (one page per node)."""
        return self.backend.node_stats().size_in_bytes

    def _build_impl(self) -> None:
        options: dict[str, object] = {}
        if self._index_kind == "rtree":
            options["split"] = self._split
        backend = make_backend(
            self._index_kind, page_size=self._db.page_size, **options
        )
        items = []
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            items.append((sequence.seq_id, sequence.values))
        if self._bulk_load:
            backend.bulk_load(items)
        else:
            for seq_id, values in items:
                backend.insert(seq_id, values)
        self._backend = backend

    def insert(self, sequence) -> int:
        """Store a new sequence and index its feature vector online."""
        seq_id = self._db.insert(sequence)
        stored = self._db.fetch(seq_id)
        self.backend.insert(seq_id, stored.values)
        return seq_id

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        backend = self.backend
        # Steps 1-2: feature vector of the query, then the square range
        # query (radius eps per dimension) with its node I/O charged.
        stats.lower_bound_computations += 1
        candidate_ids = charged_candidates(
            backend, self._db, query.values, epsilon, stats
        )
        # Steps 3-6: post-processing with the true distance, via the
        # shared cascade verify stage (every candidate is fetched —
        # the index already charged the filtering work).
        def verifier(seq_id: int) -> float:
            sequence = self._db.fetch(seq_id)
            stats.sequences_read += 1
            return self._verify(sequence, query, epsilon, stats)

        answers, distances, dtw_stage = verify_stage(
            candidate_ids, verifier, epsilon
        )
        self._last_cascade = CascadeStats(
            [
                StageStats(backend.name, len(self._db), len(candidate_ids)),
                dtw_stage,
            ]
        )
        return answers, distances, candidate_ids
