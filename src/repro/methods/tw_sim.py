"""TW-Sim-Search — the paper's method (section 4.3, Algorithm 1).

Build (section 4.3.1): extract the 4-tuple feature vector of every
sequence and insert ``<First, Last, Greatest, Smallest, ID>`` into a
4-dimensional R-tree (paper: 1 KB pages).  STR bulk loading is used for
the initial build when requested, per the paper's note on bulk-loading
large initial databases.

Search (Algorithm 1):

1. Extract ``Feature(Q)``.
2. Range-query the R-tree with the 4-d square ``Feature(Q) ± eps`` —
   exactly the set ``{S : D_tw-lb(S, Q) <= eps}``.
3. The returned ids form the candidate set.
4–6. Fetch each candidate and keep those with ``D_tw(S, Q) <= eps``.

Because ``D_tw-lb`` lower-bounds ``D_tw`` (Theorem 1) the candidates are
a superset of the answers: no false dismissal.  Because ``D_tw-lb`` is a
metric (Theorem 2) the R-tree filtering is sound.
"""

from __future__ import annotations

from ..core.cascade import CascadeStats, StageStats, verify_stage
from ..core.features import extract_feature
from ..core.lower_bound import feature_rect
from ..exceptions import ValidationError
from ..index.rtree.bulk import STRBulkLoader
from ..index.rtree.rplus import RPlusTree
from ..index.rtree.rstar import RStarTree
from ..index.rtree.rtree import RTree, SplitStrategy
from ..index.rtree.xtree import XTree
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["TWSimSearch", "INDEX_KINDS"]

#: Index structures TW-Sim-Search can run on — the four the paper names.
INDEX_KINDS = ("rtree", "rstar", "rplus", "xtree")


class TWSimSearch(SearchMethod):
    """The paper's index-based method.

    Parameters
    ----------
    database:
        The sequence database to search.
    bulk_load:
        Build the R-tree with STR packing (True, default) or by
        tuple-at-a-time insertion (False) — the A3 ablation's knob.
        Only the plain R-tree supports STR packing; other index kinds
        always build incrementally.
    split:
        Node-split heuristic for incremental R-tree insertion.
    index:
        Which multi-dimensional index to use — the paper: "any
        multi-dimensional indexes such as the R-tree, R+-tree, R*-tree,
        and X-tree can be used".  One of :data:`INDEX_KINDS`.
    """

    name = "TW-Sim-Search"

    def __init__(
        self,
        database,
        *,
        bulk_load: bool = True,
        split: SplitStrategy = SplitStrategy.QUADRATIC,
        index: str = "rtree",
        compute_distances: bool = False,
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        if index not in INDEX_KINDS:
            raise ValidationError(
                f"index must be one of {INDEX_KINDS}, got {index!r}"
            )
        self._bulk_load = bulk_load and index == "rtree"
        self._split = split
        self._index_kind = index
        self._tree: RTree | RPlusTree | None = None

    @property
    def tree(self):
        """The built 4-d feature index (after :meth:`build`)."""
        if self._tree is None:
            raise RuntimeError("TW-Sim-Search has not been built")
        return self._tree

    @property
    def index_kind(self) -> str:
        """Which index structure this instance uses."""
        return self._index_kind

    def index_size_in_bytes(self) -> int:
        """On-disk size of the R-tree (one page per node)."""
        return self.tree.size_in_bytes()

    def _build_impl(self) -> None:
        page_size = self._db.page_size
        if self._bulk_load:
            loader = STRBulkLoader(4, page_size=page_size)
            for sequence in self._db.scan():
                assert sequence.seq_id is not None
                feature = extract_feature(sequence.values)
                loader.add(feature.as_tuple(), sequence.seq_id)
            self._tree = loader.build()
            return
        tree = self._make_index(page_size)
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            feature = extract_feature(sequence.values)
            tree.insert_point(feature.as_tuple(), sequence.seq_id)
        self._tree = tree

    def _make_index(self, page_size: int):
        if self._index_kind == "rstar":
            return RStarTree(4, page_size=page_size)
        if self._index_kind == "rplus":
            return RPlusTree(4, page_size=page_size)
        if self._index_kind == "xtree":
            return XTree(4, page_size=page_size)
        return RTree(4, page_size=page_size, split=self._split)

    def insert(self, sequence) -> int:
        """Store a new sequence and index its feature vector online."""
        seq_id = self._db.insert(sequence)
        stored = self._db.fetch(seq_id)
        feature = extract_feature(stored.values)
        self.tree.insert_point(feature.as_tuple(), seq_id)
        return seq_id

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        tree = self.tree
        # Step 1: feature vector of the query.
        query_feature = extract_feature(query.values)
        stats.lower_bound_computations += 1
        # Step 2: square range query, radius eps per dimension.
        tree.stats.mark("search")
        candidate_ids = tree.range_search(feature_rect(query_feature, epsilon))
        node_reads, _, _ = tree.stats.delta("search")
        stats.index_node_reads += node_reads
        stats.simulated_io_seconds += self._db.disk.random_read_time(
            node_reads, self._db.page_size
        )
        # Steps 3-6: post-processing with the true distance, via the
        # shared cascade verify stage (every candidate is fetched —
        # the index already charged the filtering work).
        def verifier(seq_id: int) -> float:
            sequence = self._db.fetch(seq_id)
            stats.sequences_read += 1
            return self._verify(sequence, query, epsilon, stats)

        answers, distances, dtw_stage = verify_stage(
            candidate_ids, verifier, epsilon
        )
        self._last_cascade = CascadeStats(
            [StageStats("rtree", len(self._db), len(candidate_ids)), dtw_stage]
        )
        return answers, distances, candidate_ids
