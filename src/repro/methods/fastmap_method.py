"""The FastMap method (Yi et al.; paper section 3.3).

Embeds every sequence into ``R^k`` with FastMap using the time-warping
distance, indexes the images in a k-d R-tree, and answers a query by
projecting it and range-searching with radius ``eps``.  Candidates are
verified with the true ``D_tw``.

Because DTW is not a metric, the embedding is not contractive: a truly
qualifying sequence's image can land farther than ``eps`` from the
query's image and be **falsely dismissed**.  The paper excludes the
method from its performance comparison for exactly this deficiency; we
implement it so the deficiency is *measurable* —
:meth:`FastMapMethod.false_dismissals` compares a report against ground
truth, and the integration tests demonstrate non-zero dismissal rates
the other methods never exhibit.
"""

from __future__ import annotations

import numpy as np

from ..distance.dtw import dtw_max
from ..fastmap.fastmap import FastMap
from ..index.rtree.bulk import STRBulkLoader
from ..index.rtree.geometry import Rect
from ..index.rtree.rtree import RTree
from ..types import Sequence
from .base import MethodStats, SearchMethod, SearchReport

__all__ = ["FastMapMethod"]


class FastMapMethod(SearchMethod):
    """FastMap embedding + R-tree index (admits false dismissal).

    Parameters
    ----------
    database:
        The sequence database to search.
    k:
        Embedding dimensionality (Yi et al. leave its choice open; the
        paper notes picking a good *k* "is not trivial").
    seed:
        Pivot-selection seed for reproducible embeddings.
    """

    name = "FastMap"

    def __init__(
        self, database, *, k: int = 4, seed: int = 0, compute_distances: bool = False
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        self._k = k
        self._seed = seed
        self._fastmap: FastMap | None = None
        self._tree: RTree | None = None

    @property
    def k(self) -> int:
        """Embedding dimensionality."""
        return self._k

    @property
    def tree(self) -> RTree:
        """The built image-space R-tree (after :meth:`build`)."""
        if self._tree is None:
            raise RuntimeError("FastMap method has not been built")
        return self._tree

    def _build_impl(self) -> None:
        sequences = list(self._db.scan())
        ids = [seq.seq_id for seq in sequences]
        arrays = [np.asarray(seq.values) for seq in sequences]
        self._fastmap = FastMap(
            lambda a, b: dtw_max(a, b), self._k, seed=self._seed
        )
        coords = self._fastmap.fit(arrays)
        loader = STRBulkLoader(self._k, page_size=self._db.page_size)
        for point, seq_id in zip(coords, ids):
            assert seq_id is not None
            loader.add(tuple(float(v) for v in point), seq_id)
        self._tree = loader.build()

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        assert self._fastmap is not None
        tree = self.tree
        point = self._fastmap.project(np.asarray(query.values))
        stats.lower_bound_computations += 1
        rect = Rect.from_intervals(
            (float(c) - epsilon, float(c) + epsilon) for c in point
        )
        tree.stats.mark("search")
        candidate_ids = tree.range_search(rect)
        node_reads, _, _ = tree.stats.delta("search")
        stats.index_node_reads += node_reads
        stats.simulated_io_seconds += self._db.disk.random_read_time(
            node_reads, self._db.page_size
        )
        answers: list[int] = []
        distances: dict[int, float] = {}
        for seq_id in candidate_ids:
            sequence = self._db.fetch(seq_id)
            stats.sequences_read += 1
            distance = self._verify(sequence, query, epsilon, stats)
            if distance <= epsilon:
                answers.append(seq_id)
                distances[seq_id] = distance
        return answers, distances, candidate_ids

    @staticmethod
    def false_dismissals(
        report: SearchReport, ground_truth: SearchReport
    ) -> list[int]:
        """True answers this method missed, vs an exact method's report."""
        return sorted(set(ground_truth.answers) - set(report.answers))
