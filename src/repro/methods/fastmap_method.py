"""The FastMap method (Yi et al.; paper section 3.3).

Embeds every sequence into ``R^k`` with FastMap using the time-warping
distance, indexes the images in a k-d R-tree, and answers a query by
projecting it and range-searching with radius ``eps``.  Candidates are
verified with the true ``D_tw``.

Because DTW is not a metric, the embedding is not contractive: a truly
qualifying sequence's image can land farther than ``eps`` from the
query's image and be **falsely dismissed**.  The paper excludes the
method from its performance comparison for exactly this deficiency; we
implement it so the deficiency is *measurable* —
:meth:`FastMapMethod.false_dismissals` compares a report against ground
truth, and the integration tests demonstrate non-zero dismissal rates
the other methods never exhibit.

The embedding + image tree live behind the shared
:class:`~repro.index.backend.FastMapBackend` (the registry's only
``exact = False`` backend).
"""

from __future__ import annotations

from ..core.query_engine import charged_candidates
from ..exceptions import NotBuiltError
from ..index.backend import FastMapBackend
from ..index.rtree.rtree import RTree
from ..types import Sequence
from .base import MethodStats, SearchMethod, SearchReport

__all__ = ["FastMapMethod"]


class FastMapMethod(SearchMethod):
    """FastMap embedding + R-tree index (admits false dismissal).

    Parameters
    ----------
    database:
        The sequence database to search.
    k:
        Embedding dimensionality (Yi et al. leave its choice open; the
        paper notes picking a good *k* "is not trivial").
    seed:
        Pivot-selection seed for reproducible embeddings.
    """

    name = "FastMap"

    def __init__(
        self, database, *, k: int = 4, seed: int = 0, compute_distances: bool = False
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        self._k = k
        self._seed = seed
        self._backend: FastMapBackend | None = None

    @property
    def k(self) -> int:
        """Embedding dimensionality."""
        return self._k

    @property
    def backend(self) -> FastMapBackend:
        """The built FastMap backend (after :meth:`build`)."""
        if self._backend is None:
            raise NotBuiltError("FastMap method has not been built")
        return self._backend

    @property
    def tree(self) -> RTree:
        """The built image-space R-tree (after :meth:`build`)."""
        return self.backend.tree

    def _build_impl(self) -> None:
        backend = FastMapBackend(
            page_size=self._db.page_size, k=self._k, seed=self._seed
        )
        items = []
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            items.append((sequence.seq_id, sequence.values))
        backend.bulk_load(items)
        # Force the embedding + image tree into build time (the
        # backend otherwise builds lazily on the first query).
        backend.node_stats()
        self._backend = backend

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        stats.lower_bound_computations += 1
        candidate_ids = charged_candidates(
            self.backend, self._db, query.values, epsilon, stats
        )
        answers: list[int] = []
        distances: dict[int, float] = {}
        for seq_id in candidate_ids:
            sequence = self._db.fetch(seq_id)
            stats.sequences_read += 1
            distance = self._verify(sequence, query, epsilon, stats)
            if distance <= epsilon:
                answers.append(seq_id)
                distances[seq_id] = distance
        return answers, distances, candidate_ids

    @staticmethod
    def false_dismissals(
        report: SearchReport, ground_truth: SearchReport
    ) -> list[int]:
        """True answers this method missed, vs an exact method's report."""
        return sorted(set(ground_truth.answers) - set(report.answers))
