"""The compared similarity-search methods (paper section 5).

All methods answer the same question — *which stored sequences satisfy*
``D_tw(S, Q) <= eps`` under the Definition-2 time-warping distance — and
expose a uniform :class:`~repro.methods.base.SearchMethod` interface so
the experiment harness can swap them freely:

* :class:`~repro.methods.naive_scan.NaiveScan` — sequential scan + full
  DTW per sequence (Berndt & Clifford).
* :class:`~repro.methods.lb_scan.LBScan` — sequential scan + Yi et al.'s
  cheap lower bound as a pre-filter.
* :class:`~repro.methods.st_filter.STFilter` — categorization + suffix
  tree traversal (Park et al.).
* :class:`~repro.methods.tw_sim.TWSimSearch` — the paper's method:
  4-tuple features in an R-tree + ``D_tw-lb`` range query.
* :class:`~repro.methods.fastmap_method.FastMapMethod` — Yi et al.'s
  FastMap embedding + index; fast but admits false dismissal (excluded
  from the paper's evaluation for that reason; implemented here so the
  false-dismissal rate can be measured).
* :class:`~repro.methods.cascade_scan.CascadeScan` — sequential scan
  through the vectorized tiered lower-bound cascade (extension; the
  whole-database-matrix-operation counterpart of LB-Scan).
* :class:`~repro.methods.engine_method.EngineMethod` — the public
  facade (any index backend, any shard count) measured under the same
  accounting contract, for backend/shard sweeps (extension).
"""

from .base import MethodStats, SearchMethod, SearchReport
from .cascade_scan import CascadeScan
from .engine_method import EngineMethod
from .fastmap_method import FastMapMethod
from .lb_scan import LBScan
from .naive_scan import NaiveScan
from .st_filter import STFilter
from .tw_sim import TWSimSearch

__all__ = [
    "MethodStats",
    "SearchMethod",
    "SearchReport",
    "CascadeScan",
    "EngineMethod",
    "FastMapMethod",
    "LBScan",
    "NaiveScan",
    "STFilter",
    "TWSimSearch",
]
