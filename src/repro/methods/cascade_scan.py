"""Cascade-Scan — sequential scan through the full vectorized cascade.

The logical extension of LB-Scan along the lower-bound axis: instead of
one per-sequence ``D_lb`` evaluation, the whole database flows through
the tiered cascade (``lb_yi -> lb_kim [-> lb_keogh] -> dtw``) whose
cheap tiers run as matrix operations over the precomputed feature
store.  Same I/O as every scan (the heap file is read in full), same
guarantee as every tier (no false dismissal), but the filter's CPU cost
is a handful of NumPy kernels rather than ``O(n)`` Python-level bound
evaluations — and its candidate set is at least as tight as
TW-Sim-Search's, since the ``lb_kim`` tier applies the same bound the
R-tree range query does.

The Keogh tier participates only in band-constrained searches
(``band_radius``), where its envelope bound is sound; unconstrained
searches run the two feature tiers.  :meth:`CascadeScan.search_many`
batches queries through :meth:`~repro.core.cascade.FilterCascade.
run_many`, amortizing feature extraction and the scan I/O across the
whole batch.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..core.cascade import DEFAULT_TIERS, FeatureStore, FilterCascade, scan_cascade
from ..exceptions import ValidationError
from ..types import Sequence, SequenceLike, as_sequence
from .base import MethodStats, SearchMethod, SearchReport

__all__ = ["CascadeScan"]


class CascadeScan(SearchMethod):
    """Sequential scan filtered by the tiered vectorized cascade.

    Parameters
    ----------
    database:
        The sequence database to search.
    band_radius:
        When given, verification uses Sakoe–Chiba-constrained DTW and
        the ``lb_keogh`` envelope tier activates (it bounds only the
        band-constrained distance).
    compute_distances:
        As in :class:`~repro.methods.base.SearchMethod`.
    """

    name = "Cascade-Scan"

    def __init__(
        self,
        database,
        *,
        band_radius: int | None = None,
        compute_distances: bool = False,
    ) -> None:
        super().__init__(database, compute_distances=compute_distances)
        if band_radius is not None and band_radius < 0:
            raise ValidationError(
                f"band_radius must be non-negative, got {band_radius}"
            )
        self._band_radius = band_radius
        self._cascade: FilterCascade | None = None

    @property
    def band_radius(self) -> int | None:
        """The Sakoe–Chiba radius verification is constrained to, if any."""
        return self._band_radius

    def _build_impl(self) -> None:
        """Precompute the feature store with one sequential scan."""
        self._cascade = FilterCascade(
            FeatureStore(self._db.scan()), tiers=DEFAULT_TIERS
        )

    def _scan_cascade(self) -> FilterCascade:
        """Charge one full sequential scan; return the current cascade."""
        self._cascade = scan_cascade(
            self._db, self._cascade, tiers=DEFAULT_TIERS
        )
        return self._cascade

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        cascade = self._scan_cascade()
        store = cascade.store
        stats.sequences_read += len(store)
        stats.lower_bound_computations += len(store)

        def verifier(row: int) -> float:
            return self._verify(store.sequences[row], query, epsilon, stats)

        outcome = cascade.run(
            query.values,
            epsilon,
            band_radius=self._band_radius,
            verifier=None if self._band_radius is not None else verifier,
        )
        if self._band_radius is not None:
            # Banded verification runs inside the cascade (the method's
            # decision-only shortcut does not apply to banded DTW);
            # account for it here.
            stats.dtw_computations += outcome.stats.stage("dtw").n_in
        self._last_cascade = outcome.stats
        return outcome.answer_ids, outcome.distances, outcome.candidate_ids

    def search_many(
        self, queries: Iterable[SequenceLike], epsilon: float
    ) -> list[SearchReport]:
        """Batch form: one scan charge and one filter pass for all queries.

        Answers and candidates are identical to per-query
        :meth:`~repro.methods.base.SearchMethod.search` calls; the
        sequential-scan I/O is charged once for the batch and split
        evenly across the per-query reports.
        """
        if not self._built:
            raise ValidationError(f"{self.name} must be built before searching")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        query_seqs = [as_sequence(query) for query in queries]
        for q in query_seqs:
            if len(q) == 0:
                raise ValidationError("query sequence must be non-empty")
        if not query_seqs:
            return []
        mark = f"{self.name}:search_many"
        self._db.io.mark(mark)
        start_cpu = time.process_time()
        cascade = self._scan_cascade()
        outcomes = cascade.run_many(
            [q.values for q in query_seqs],
            epsilon,
            band_radius=self._band_radius,
            compute_distances=self._compute_distances,
        )
        cpu = time.process_time() - start_cpu
        io = self._db.io.delta_seconds(mark)
        n = len(cascade.store)
        m = len(query_seqs)
        reports: list[SearchReport] = []
        for outcome in outcomes:
            verified = outcome.stats.stage("dtw").n_in
            stats = MethodStats(
                cpu_seconds=cpu / m,
                simulated_io_seconds=io / m,
                sequences_read=n,
                dtw_computations=verified,
                lower_bound_computations=n,
            )
            reports.append(
                SearchReport(
                    method=self.name,
                    epsilon=epsilon,
                    answers=sorted(outcome.answer_ids),
                    distances=dict(outcome.distances)
                    if self._compute_distances
                    else {},
                    candidates=sorted(outcome.candidate_ids),
                    stats=stats,
                    cascade=outcome.stats,
                )
            )
        return reports
