"""Naive-Scan (paper section 3.1): sequential scan + full DTW.

Reads every sequence in the database and evaluates the time-warping
distance directly.  No index, no filter — therefore no false alarms
either, which is why the paper plots its final-answer count as the
"candidate" baseline of Figure 2.  The only optimization, used by the
paper as well, is early abandoning: with ``L_inf`` accumulation the DTW
can stop as soon as no path within tolerance remains.
"""

from __future__ import annotations

from ..core.cascade import STAGE_DTW, CascadeStats, StageStats
from ..types import Sequence
from .base import MethodStats, SearchMethod

__all__ = ["NaiveScan"]


class NaiveScan(SearchMethod):
    """Sequential scan with per-sequence DTW verification."""

    name = "Naive-Scan"

    def _build_impl(self) -> None:
        """Nothing to build — the scan works directly on the heap file."""

    def _search_impl(
        self, query: Sequence, epsilon: float, stats: MethodStats
    ) -> tuple[list[int], dict[int, float], list[int]]:
        answers: list[int] = []
        distances: dict[int, float] = {}
        for sequence in self._db.scan():
            stats.sequences_read += 1
            distance = self._verify(sequence, query, epsilon, stats)
            if distance <= epsilon:
                assert sequence.seq_id is not None
                answers.append(sequence.seq_id)
                distances[sequence.seq_id] = distance
        self._last_cascade = CascadeStats(
            [StageStats(STAGE_DTW, stats.sequences_read, len(answers))]
        )
        # Paper convention: Naive-Scan has no filtering step, so its
        # "candidates" in Figure 2 are the final answers themselves.
        return answers, distances, list(answers)
