"""Core value types shared across the library.

The central type is :class:`Sequence`, a lightweight immutable wrapper
around a 1-d :class:`numpy.ndarray` of float64 elements plus an optional
identifier and label.  The paper's notation maps onto it directly:

========================  =======================================
Paper                     Library
========================  =======================================
``S = <s_1 ... s_|S|>``   ``Sequence(values)``
``|S|``                   ``len(seq)``
``First(S)``              ``seq.first``
``Last(S)``               ``seq.last``
``Greatest(S)``           ``seq.greatest``
``Smallest(S)``           ``seq.smallest``
``Rest(S)``               ``seq.rest()``
========================  =======================================
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import numpy as np

from .exceptions import EmptySequenceError, ValidationError

__all__ = ["Sequence", "SequenceLike", "as_array", "as_sequence"]

#: Anything acceptable as sequence input to public API functions.
SequenceLike = Union["Sequence", np.ndarray, Iterable[float]]


def as_array(values: SequenceLike, *, allow_empty: bool = True) -> np.ndarray:
    """Coerce *values* to a read-only contiguous 1-d float64 array.

    Accepts a :class:`Sequence`, a numpy array, or any iterable of numbers.
    Raises :class:`ValidationError` for non-1-d input or non-finite
    elements, and :class:`EmptySequenceError` if *values* is empty while
    ``allow_empty`` is false.
    """
    if isinstance(values, Sequence):
        arr = values.values
    else:
        try:
            arr = np.asarray(values, dtype=np.float64)
        except TypeError:
            # Generators and other one-shot iterables.
            arr = np.fromiter(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValidationError(
                f"sequence must be 1-dimensional, got shape {arr.shape}"
            )
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValidationError("sequence elements must be finite numbers")
        arr = np.ascontiguousarray(arr)
        arr.flags.writeable = False
    if not allow_empty and arr.size == 0:
        raise EmptySequenceError("operation requires a non-empty sequence")
    return arr


def as_sequence(values: SequenceLike, *, seq_id: int | None = None) -> "Sequence":
    """Coerce *values* to a :class:`Sequence`, preserving an existing wrapper."""
    if isinstance(values, Sequence):
        return values
    return Sequence(values, seq_id=seq_id)


class Sequence:
    """An immutable, ordered list of numeric elements (paper section 2).

    Parameters
    ----------
    values:
        The elements, any 1-d numeric iterable.  Stored as read-only
        float64.
    seq_id:
        Optional integer identifier (``ID(S)`` in the paper); assigned by
        the database layer when the sequence is inserted.
    label:
        Optional human-readable name (e.g. a ticker symbol).
    """

    __slots__ = ("_values", "_seq_id", "_label")

    def __init__(
        self,
        values: SequenceLike,
        *,
        seq_id: int | None = None,
        label: str | None = None,
    ) -> None:
        self._values = as_array(values)
        if seq_id is not None and seq_id < 0:
            raise ValidationError(f"seq_id must be non-negative, got {seq_id}")
        self._seq_id = seq_id
        self._label = label

    # -- identity -----------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying read-only float64 array."""
        return self._values

    @property
    def seq_id(self) -> int | None:
        """Database identifier, or ``None`` if not yet stored."""
        return self._seq_id

    @property
    def label(self) -> str | None:
        """Optional human-readable name."""
        return self._label

    def with_id(self, seq_id: int) -> "Sequence":
        """Return a copy of this sequence carrying *seq_id*."""
        clone = Sequence.__new__(Sequence)
        clone._values = self._values
        clone._seq_id = seq_id
        clone._label = self._label
        return clone

    # -- paper accessors ----------------------------------------------

    def _require_nonempty(self) -> None:
        if self._values.size == 0:
            raise EmptySequenceError("empty sequence has no elements")

    @property
    def first(self) -> float:
        """``First(S)``: the first element."""
        self._require_nonempty()
        return float(self._values[0])

    @property
    def last(self) -> float:
        """``Last(S)``: the last element."""
        self._require_nonempty()
        return float(self._values[-1])

    @property
    def greatest(self) -> float:
        """``Greatest(S)``: the maximum element."""
        self._require_nonempty()
        return float(self._values.max())

    @property
    def smallest(self) -> float:
        """``Smallest(S)``: the minimum element."""
        self._require_nonempty()
        return float(self._values.min())

    def rest(self) -> "Sequence":
        """``Rest(S)``: elements from position 2 to the end."""
        self._require_nonempty()
        return Sequence(self._values[1:])

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return int(self._values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    def __getitem__(self, index: int | slice) -> Union[float, "Sequence"]:
        if isinstance(index, slice):
            return Sequence(self._values[index])
        return float(self._values[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self._values.shape == other._values.shape
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:
        return hash((self._values.shape[0], self._values.tobytes()))

    def __repr__(self) -> str:
        head = ", ".join(f"{v:g}" for v in self._values[:4])
        tail = ", ..." if len(self) > 4 else ""
        ident = f", seq_id={self._seq_id}" if self._seq_id is not None else ""
        name = f", label={self._label!r}" if self._label else ""
        return f"Sequence(<{head}{tail}> len={len(self)}{ident}{name})"
