"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so a
caller that wants to treat any library failure uniformly can catch a single
type.  More specific subclasses exist for the distinct failure domains:
input validation, distance computation, index structures, and storage.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "EmptySequenceError",
    "LengthMismatchError",
    "DistanceError",
    "IndexError_",
    "IndexCorruptionError",
    "EntryNotFoundError",
    "StorageError",
    "PageOverflowError",
    "SequenceNotFoundError",
    "CategorizationError",
    "ExperimentError",
    "BenchSchemaError",
    "QueryLogSchemaError",
    "NotBuiltError",
    "ExecutorError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong type, shape, or range)."""


class EmptySequenceError(ValidationError):
    """An operation that requires a non-empty sequence received an empty one.

    The paper defines ``D_tw(S, <>) = D_tw(<>, Q) = infinity``; in the
    library, distances involving exactly one empty operand return ``inf``
    while feature extraction and indexing of empty sequences raise this
    error (an empty sequence has no First/Last/Greatest/Smallest).
    """


class LengthMismatchError(ValidationError):
    """Two sequences that must share a length do not (e.g. ``L_p``)."""


class DistanceError(ReproError):
    """A distance computation failed for a non-validation reason."""


class IndexError_(ReproError):
    """Base class for index-structure failures (R-tree, suffix tree).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class IndexCorruptionError(IndexError_):
    """An internal invariant of an index structure was violated."""


class EntryNotFoundError(IndexError_, KeyError):
    """A delete or lookup referenced an entry that is not in the index."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageOverflowError(StorageError):
    """A record is too large to fit in a single page."""


class SequenceNotFoundError(StorageError, KeyError):
    """A sequence id was requested that is not stored in the database."""


class CategorizationError(ReproError):
    """Categorization of numeric sequences into symbols failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class BenchSchemaError(ReproError):
    """A ``BENCH_*.json`` document failed schema validation.

    Raised when a benchmark result file is missing required keys or was
    written under an unsupported ``schema_version``.
    """


class QueryLogSchemaError(ReproError):
    """A query-log JSONL record failed schema validation.

    Raised when a loaded record is missing required fields, carries an
    unsupported ``schema_version``, or is not valid JSON at all (unless
    the loader was asked to skip corrupt lines).
    """


class NotBuiltError(ReproError, RuntimeError):
    """A search method was queried before its index was built.

    Subclasses :class:`RuntimeError` as well so existing callers that
    catch the historical ``RuntimeError`` keep working.
    """


class ExecutorError(ReproError, RuntimeError):
    """A shard executor failed outside the query itself.

    Raised when a worker process dies unexpectedly, a closed executor
    is reused, or the execution plane otherwise breaks; query-level
    errors (bad epsilon, unknown id) keep their own domain types and
    propagate through the executor unchanged.
    """
