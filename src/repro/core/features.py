"""The 4-tuple feature vector (paper section 4.2).

``Feature(S) = (First(S), Last(S), Greatest(S), Smallest(S))``.

Time warping stretches a sequence along the time axis by replicating
elements; none of the four features can change under such replication,
so the vector is *invariant to time warping* — the property that lets it
serve as a set of indexing attributes independent of any query.
Extraction is a single ``O(|S|)`` scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..exceptions import EmptySequenceError, ValidationError
from ..types import SequenceLike, as_array

__all__ = ["FeatureVector", "extract_feature", "feature_array", "StreamingExtractor"]


@dataclass(frozen=True, order=True)
class FeatureVector:
    """The paper's 4-tuple ``(First, Last, Greatest, Smallest)``.

    Immutable and hashable; iterates in the paper's component order so
    it can be passed anywhere a length-4 numeric tuple is expected.
    """

    first: float
    last: float
    greatest: float
    smallest: float

    def __post_init__(self) -> None:
        for name in ("first", "last", "greatest", "smallest"):
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValidationError(f"feature {name!r} must be finite, got {value}")
        if self.greatest < self.smallest:
            raise ValidationError(
                f"greatest ({self.greatest}) < smallest ({self.smallest})"
            )
        if not (self.smallest <= self.first <= self.greatest):
            raise ValidationError("first element must lie within [smallest, greatest]")
        if not (self.smallest <= self.last <= self.greatest):
            raise ValidationError("last element must lie within [smallest, greatest]")

    def __iter__(self) -> Iterator[float]:
        yield self.first
        yield self.last
        yield self.greatest
        yield self.smallest

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The features as a plain tuple in paper order."""
        return (self.first, self.last, self.greatest, self.smallest)

    def as_array(self) -> np.ndarray:
        """The features as a 4-element float64 array."""
        return np.array(self.as_tuple(), dtype=np.float64)


def extract_feature(sequence: SequenceLike) -> FeatureVector:
    """Extract ``Feature(S)`` from a non-empty sequence in one pass.

    Raises :class:`EmptySequenceError` for an empty input: an empty
    sequence has no first/last/extreme elements and cannot be indexed.
    """
    arr = as_array(sequence, allow_empty=False)
    return FeatureVector(
        first=float(arr[0]),
        last=float(arr[-1]),
        greatest=float(arr.max()),
        smallest=float(arr.min()),
    )


def feature_array(sequences: Iterable[SequenceLike]) -> np.ndarray:
    """Extract features from many sequences into an ``(n, 4)`` array.

    Column order matches the paper: first, last, greatest, smallest.
    """
    rows = [extract_feature(seq).as_tuple() for seq in sequences]
    if not rows:
        return np.empty((0, 4), dtype=np.float64)
    return np.array(rows, dtype=np.float64)


class StreamingExtractor:
    """Incremental feature extraction for sequences that arrive element-wise.

    Useful when sequences are read from a stream (e.g. a live ticker)
    and the full array is never materialized.  ``push`` each element,
    then call :meth:`finish`.
    """

    __slots__ = ("_first", "_last", "_greatest", "_smallest", "_count")

    def __init__(self) -> None:
        self._first = 0.0
        self._last = 0.0
        self._greatest = -np.inf
        self._smallest = np.inf
        self._count = 0

    def push(self, value: float) -> None:
        """Feed the next element of the sequence."""
        value = float(value)
        if not np.isfinite(value):
            raise ValidationError(f"sequence elements must be finite, got {value}")
        if self._count == 0:
            self._first = value
        self._last = value
        if value > self._greatest:
            self._greatest = value
        if value < self._smallest:
            self._smallest = value
        self._count += 1

    def extend(self, values: Iterable[float]) -> None:
        """Feed several elements in order."""
        for value in values:
            self.push(value)

    @property
    def count(self) -> int:
        """Number of elements pushed so far."""
        return self._count

    def finish(self) -> FeatureVector:
        """Return the feature vector of everything pushed so far."""
        if self._count == 0:
            raise EmptySequenceError("no elements were pushed")
        return FeatureVector(
            first=self._first,
            last=self._last,
            greatest=self._greatest,
            smallest=self._smallest,
        )
