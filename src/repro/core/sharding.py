""":class:`ShardedDatabase` — N independent query engines, one answer.

Partitions sequences round-robin across *N* shards, each a full
:class:`~repro.core.query_engine.QueryEngine` with its own paged
storage, index backend and feature store.  Queries fan out to every
shard on a thread pool and the per-shard results are merged — answers,
distances, ordering and per-stage :class:`CascadeStats` are
bit-identical to running the same workload on a single shard:

* Global ids (*gids*) are assigned by one monotone counter; shard
  ``gid % N`` stores the sequence under its own local id (*lid*).
  Round-robin preserves arrival order within each shard, so per-shard
  ``(distance, lid)`` ordering equals global ``(distance, gid)``
  ordering and a merge of per-shard top-*k* lists is an exact global
  top-*k*.
* Range searches are embarrassingly parallel: every shard's answer set
  is disjoint, and the merged list is re-sorted by the same
  ``(distance, gid)`` key the single-shard path uses.
* Stage counters merge by :meth:`CascadeStats.merge`, so ``n_in`` of
  the index stage sums to the global database size.

*How* the per-shard calls run is delegated to a pluggable
:class:`~repro.exec.base.ShardExecutor` (``executor=`` /
``REPRO_EXECUTOR``): ``serial`` runs shards inline, ``thread`` fans
out on a persistent thread pool, ``process`` dispatches to spawned
workers reading the feature store from shared memory.  The router's
job is unchanged either way — it applies mutations to its own
authoritative engines (mirroring them to executor replicas), fans
queries out through the executor, and merges results in shard order,
so answers and counters are bit-identical across executors.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from ..exceptions import SequenceNotFoundError, ValidationError
from ..exec import make_executor
from ..exec.base import ShardExecutor
from ..obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
)
from ..obs.querylog import record_query
from ..obs.tracing import maybe_span
from ..storage.database import SequenceDatabase
from ..storage.diskmodel import DiskModel
from ..types import Sequence, SequenceLike, as_sequence
from .cascade import CascadeStats
from .query_engine import BatchResult, QueryEngine, QueryResult, SearchOutcome

__all__ = ["ShardedDatabase"]


class ShardedDatabase:
    """Round-robin shard router over N :class:`QueryEngine` instances.

    Parameters
    ----------
    page_size, disk, buffer_pages:
        Storage parameters, applied to every shard.
    backend:
        Index backend name used by every shard.
    shards:
        Number of shards (>= 1).
    backend_options:
        Extra options forwarded to each shard's backend constructor.
    executor:
        Shard execution plane: ``"serial"``, ``"thread"`` or
        ``"process"`` (default: the ``REPRO_EXECUTOR`` environment
        variable, else ``"thread"``).
    store:
        Sequence-store name applied to every shard (``heap``/``mmap``;
        default: the ``REPRO_STORE`` environment variable, else
        ``heap``).
    """

    def __init__(
        self,
        *,
        page_size: int = 1024,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
        backend: str = "rtree",
        shards: int = 1,
        backend_options: dict[str, object] | None = None,
        executor: str | None = None,
        store: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self._backend_name = backend
        self._backend_options = dict(backend_options or {})
        self._n = shards
        self._engines = [
            QueryEngine(
                SequenceDatabase(
                    page_size=page_size,
                    disk=disk,
                    buffer_pages=buffer_pages,
                    store=store,
                ),
                backend,
                backend_options=backend_options,
            )
            for _ in range(shards)
        ]
        # gid -> (shard, lid) and its per-shard inverse.  For one shard
        # both maps are the identity (counters advance in lockstep).
        self._assign: dict[int, tuple[int, int]] = {}
        self._rev: list[dict[int, int]] = [{} for _ in range(shards)]
        self._next_gid = 0
        self._metrics = MetricsRegistry()
        self._last = threading.local()
        self._executor: ShardExecutor = make_executor(executor, self._engines)

    @classmethod
    def adopt(
        cls,
        engines: list[QueryEngine],
        *,
        backend_name: str,
        backend_options: dict[str, object] | None = None,
        assign: dict[int, tuple[int, int]] | None = None,
        next_gid: int | None = None,
        executor: str | None = None,
    ) -> "ShardedDatabase":
        """Wrap pre-built engines (loaded or adopted storages).

        *assign* maps gid -> (shard, lid); when omitted the engines
        must be a single shard whose lids double as gids (the
        single-shard identity invariant).
        """
        if not engines:
            raise ValidationError("at least one engine is required")
        self = cls.__new__(cls)
        self._backend_name = backend_name
        self._backend_options = dict(backend_options or {})
        self._n = len(engines)
        self._engines = list(engines)
        if assign is None:
            if len(engines) != 1:
                raise ValidationError(
                    "an assign mapping is required for multi-shard adoption"
                )
            assign = {lid: (0, lid) for lid in engines[0].database.ids()}
        self._assign = dict(assign)
        self._rev = [{} for _ in engines]
        for gid, (shard, lid) in self._assign.items():
            self._rev[shard][lid] = gid
        if next_gid is None:
            if len(engines) == 1:
                # Keep the gid counter in lockstep with the shard's own
                # id counter — the single-shard identity invariant must
                # survive adopted storages that have seen deletions.
                next_gid = engines[0].database.next_id
            else:
                next_gid = max(self._assign) + 1 if self._assign else 0
        self._next_gid = next_gid
        self._metrics = MetricsRegistry()
        self._last = threading.local()
        self._executor = make_executor(executor, self._engines)
        return self

    # -- introspection -------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._n

    @property
    def backend_name(self) -> str:
        """Registry name of the per-shard index backend."""
        return self._backend_name

    @property
    def store_name(self) -> str:
        """Registry name of the per-shard sequence store."""
        return self._engines[0].database.store_name

    @property
    def executor_name(self) -> str:
        """Registry name of the shard execution plane."""
        return self._executor.name

    @property
    def executor(self) -> ShardExecutor:
        """The shard executor fanning queries out (shard order results)."""
        return self._executor

    @property
    def engines(self) -> list[QueryEngine]:
        """The per-shard query engines (shard order)."""
        return list(self._engines)

    @property
    def storages(self) -> list[SequenceDatabase]:
        """Each shard's paged storage (shard order)."""
        return [engine.database for engine in self._engines]

    @property
    def last_cascade_stats(self) -> CascadeStats | None:
        """Shard-merged counters of this thread's most recent query.

        Compatibility view; prefer :meth:`search_detailed`, whose
        :class:`QueryResult` carries the stats on the return path.
        """
        return getattr(self._last, "stats", None)

    @property
    def last_candidate_ids(self) -> list[int]:
        """Lower-bound survivors (gids) of this thread's last search."""
        return list(getattr(self._last, "candidate_ids", []))

    @property
    def metrics(self) -> MetricsRegistry:
        """Cumulative registry of every query served, shard-merged."""
        return self._metrics

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Cumulative counters plus aggregated structure gauges.

        Counters were merged from the per-shard return-path snapshots in
        shard order, so integer totals are bit-identical to a
        single-shard run of the same workload.
        """
        self._metrics.set_gauge(
            "storage.total_pages",
            sum(e.database.total_pages for e in self._engines),
        )
        self._metrics.set_gauge("storage.sequences", len(self))
        hits = sum(e.database.buffer.hits for e in self._engines)
        misses = sum(e.database.buffer.misses for e in self._engines)
        self._metrics.set_gauge(
            "storage.buffer.hit_ratio",
            hits / (hits + misses) if hits + misses else 0.0,
        )
        node_stats = [e.backend.node_stats() for e in self._engines]
        prefix = f"index.{self._backend_name}"
        self._metrics.set_gauge(
            f"{prefix}.nodes", sum(s.nodes for s in node_stats)
        )
        self._metrics.set_gauge(
            f"{prefix}.height", max(s.height for s in node_stats)
        )
        self._metrics.set_gauge(
            f"{prefix}.size_in_bytes", sum(s.size_in_bytes for s in node_stats)
        )
        self._metrics.set_gauge("sharded.shards", self._n)
        return self._metrics.snapshot()

    @property
    def next_gid(self) -> int:
        """The next gid to be assigned (monotone, never reused)."""
        return self._next_gid

    def assignment(self) -> dict[int, tuple[int, int]]:
        """A copy of the gid -> (shard, lid) placement map."""
        return dict(self._assign)

    def __len__(self) -> int:
        return sum(len(engine) for engine in self._engines)

    def __contains__(self, gid: int) -> bool:
        return gid in self._assign

    def ids(self) -> list[int]:
        """All stored gids in insertion order."""
        return sorted(self._assign)

    def shard_of(self, gid: int) -> int:
        """The shard holding *gid*; raises when not stored."""
        return self._locate(gid)[0]

    def _locate(self, gid: int) -> tuple[int, int]:
        try:
            return self._assign[gid]
        except KeyError:
            raise SequenceNotFoundError(
                f"sequence {gid} is not stored"
            ) from None

    # -- population ---------------------------------------------------------

    def insert(self, sequence: SequenceLike) -> int:
        """Store one sequence on shard ``gid % N``; returns its gid."""
        seq = as_sequence(sequence)
        gid = self._next_gid
        shard = gid % self._n
        lid = self._engines[shard].insert(seq)
        self._next_gid += 1
        self._assign[gid] = (shard, lid)
        self._rev[shard][lid] = gid
        self._executor.mirror(shard, "insert", (seq,))
        return gid

    def bulk_load(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store many sequences, bulk-loading each shard's index once."""
        seqs = [as_sequence(sequence) for sequence in sequences]
        for seq in seqs:
            if len(seq) == 0:
                raise ValidationError("cannot insert an empty sequence")
        gids: list[int] = []
        per_shard: list[list[Sequence]] = [[] for _ in range(self._n)]
        per_shard_gids: list[list[int]] = [[] for _ in range(self._n)]
        for seq in seqs:
            gid = self._next_gid
            self._next_gid += 1
            shard = gid % self._n
            per_shard[shard].append(seq)
            per_shard_gids[shard].append(gid)
            gids.append(gid)
        for shard, batch in enumerate(per_shard):
            if not batch:
                continue
            lids = self._engines[shard].bulk_insert(batch)
            for gid, lid in zip(per_shard_gids[shard], lids):
                self._assign[gid] = (shard, lid)
                self._rev[shard][lid] = gid
            self._executor.mirror(shard, "bulk_insert", (batch,))
        return gids

    def delete(self, gid: int) -> None:
        """Remove a sequence by gid from its shard."""
        shard, lid = self._locate(gid)
        self._engines[shard].delete(lid)
        del self._assign[gid]
        del self._rev[shard][lid]
        self._executor.mirror(shard, "delete", (lid,))

    def get(self, gid: int) -> Sequence:
        """Fetch a stored sequence by gid (charges the shard's I/O)."""
        shard, lid = self._locate(gid)
        stored = self._engines[shard].database.fetch(lid)
        return self._as_global(gid, stored)

    @staticmethod
    def _as_global(gid: int, stored: Sequence) -> Sequence:
        if stored.seq_id == gid:
            return stored
        return Sequence(stored.values, seq_id=gid, label=stored.label)

    def _translate(self, shard: int, match: SearchOutcome) -> SearchOutcome:
        gid = self._rev[shard][match.seq_id]
        if gid == match.seq_id:
            return match
        return SearchOutcome(
            gid, match.distance, self._as_global(gid, match.sequence)
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the execution plane (pool threads, worker processes,
        shared segments).  Idempotent; the database remains readable
        through non-fanning paths (``get``, ``ids``) but further
        queries raise :class:`~repro.exceptions.ExecutorError`."""
        self._executor.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- queries ----------------------------------------------------------------

    def _run_shards(
        self,
        method: str,
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Fan ``engine.<method>(*args)`` out via the executor.

        Results come back in shard order regardless of completion
        order, and the ambient metrics registry is suppressed inside
        the calls: per-shard charges travel back on the engines'
        return-path snapshots and are merged in shard order — the
        deterministic, bit-exact aggregation the parity guarantee
        needs (engine-level merging from concurrent workers would be
        completion-ordered instead).
        """
        return self._executor.run(method, args, kwargs)

    @contextmanager
    def _query_scope(self) -> Iterator[MetricsRegistry]:
        """Collect one query's shard-merged charges.

        On exit the merged snapshot is folded into the cumulative
        registry and into whatever registry was ambient when the query
        arrived, exactly once.
        """
        outer = active_registry()
        per_query = MetricsRegistry()
        try:
            yield per_query
        finally:
            snapshot = per_query.snapshot()
            self._metrics.merge(snapshot)
            if outer is not None:
                outer.merge(snapshot)

    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[SearchOutcome]:
        """Shard-parallel range search, merged by ``(distance, gid)``."""
        return self.search_detailed(
            query, epsilon, band_radius=band_radius
        ).matches

    def search_detailed(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> QueryResult:
        """:meth:`search` with shard-merged stats on the return path."""
        with self._query_scope() as per_query, maybe_span(
            "sharded.search", shards=self._n, backend=self._backend_name
        ):
            with per_query.timer("sharded.search.seconds"):
                per_query.count("sharded.queries")
                shard_results = self._run_shards(
                    "search_detailed",
                    (query, epsilon),
                    {"band_radius": band_radius},
                )
                merged: list[SearchOutcome] = []
                candidate_gids: list[int] = []
                for shard, shard_result in enumerate(shard_results):
                    per_query.merge(shard_result.metrics)
                    merged.extend(
                        self._translate(shard, match)
                        for match in shard_result.matches
                    )
                    candidate_gids.extend(
                        self._rev[shard][lid]
                        for lid in shard_result.candidate_ids
                    )
                merged.sort(key=lambda m: (m.distance, m.seq_id))
            result = QueryResult(
                matches=merged,
                stats=CascadeStats.merge(r.stats for r in shard_results),
                candidate_ids=sorted(candidate_gids),
                metrics=per_query.snapshot(),
            )
            record_query(
                kind="range",
                epsilon=epsilon,
                backend=self._backend_name,
                executor=self._executor.name,
                store=self.store_name,
                shards=self._n,
                stages=[
                    (s.name, s.n_in, s.n_out) for s in result.stats.stages
                ],
                snapshot=result.metrics,
                result_count=len(merged),
                total_metric="sharded.search.seconds",
            )
        self._last.stats = result.stats
        self._last.candidate_ids = result.candidate_ids
        return result

    def search_many(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[list[SearchOutcome]]:
        """Shard-parallel batch search; one merged list per query."""
        return self.search_many_detailed(
            queries, epsilon, band_radius=band_radius
        ).results

    def search_many_detailed(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> BatchResult:
        """:meth:`search_many` with shard-merged return-path stats."""
        query_list = [as_sequence(query) for query in queries]
        with self._query_scope() as per_query, maybe_span(
            "sharded.search_many",
            shards=self._n,
            backend=self._backend_name,
            queries=len(query_list),
        ):
            with per_query.timer("sharded.search_many.seconds"):
                per_query.count("sharded.queries", len(query_list))
                shard_results = self._run_shards(
                    "search_many_detailed",
                    (query_list, epsilon),
                    {"band_radius": band_radius},
                )
                for shard_result in shard_results:
                    per_query.merge(shard_result.metrics)
                merged: list[list[SearchOutcome]] = []
                for query_index in range(len(query_list)):
                    combined: list[SearchOutcome] = []
                    for shard, shard_result in enumerate(shard_results):
                        combined.extend(
                            self._translate(shard, match)
                            for match in shard_result.results[query_index]
                        )
                    combined.sort(key=lambda m: (m.distance, m.seq_id))
                    merged.append(combined)
                shard_stats = [
                    r.stats for r in shard_results if r.stats is not None
                ]
            result = BatchResult(
                results=merged,
                stats=CascadeStats.merge(shard_stats) if shard_stats else None,
                metrics=per_query.snapshot(),
            )
            record_query(
                kind="range_batch",
                epsilon=epsilon,
                backend=self._backend_name,
                executor=self._executor.name,
                store=self.store_name,
                shards=self._n,
                n_queries=len(query_list),
                stages=[
                    (s.name, s.n_in, s.n_out)
                    for s in (
                        result.stats.stages if result.stats is not None else []
                    )
                ],
                snapshot=result.metrics,
                result_count=sum(len(r) for r in merged),
                total_metric="sharded.search_many.seconds",
            )
        if result.stats is not None:
            self._last.stats = result.stats
        return result

    def knn(self, query: SequenceLike, k: int) -> list[SearchOutcome]:
        """Shard-parallel kNN: merge per-shard top-*k* lists."""
        return self.knn_detailed(query, k).matches

    def knn_detailed(self, query: SequenceLike, k: int) -> QueryResult:
        """:meth:`knn` with shard-merged metrics on the return path.

        Exact: each shard's list is its true top-*k*, every stored
        sequence lives in exactly one shard, and within a shard the
        local tie-break order equals the global one (round-robin
        preserves insertion order), so the global top-*k* is a subset
        of the union of the per-shard lists.
        """
        with self._query_scope() as per_query, maybe_span(
            "sharded.knn", shards=self._n, backend=self._backend_name, k=k
        ):
            with per_query.timer("sharded.knn.seconds"):
                per_query.count("sharded.knn_queries")
                shard_results = self._run_shards("knn_detailed", (query, k))
                merged: list[SearchOutcome] = []
                for shard, shard_result in enumerate(shard_results):
                    per_query.merge(shard_result.metrics)
                    merged.extend(
                        self._translate(shard, match)
                        for match in shard_result.matches
                    )
                merged.sort(key=lambda m: (m.distance, m.seq_id))
            result = QueryResult(
                matches=merged[:k],
                stats=CascadeStats([]),
                candidate_ids=[],
                metrics=per_query.snapshot(),
            )
            record_query(
                kind="knn",
                k=k,
                backend=self._backend_name,
                executor=self._executor.name,
                store=self.store_name,
                shards=self._n,
                stages=[],
                snapshot=result.metrics,
                result_count=len(result.matches),
                total_metric="sharded.knn.seconds",
            )
        return result

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase({len(self)} sequences, "
            f"{self._n} shard(s), backend={self._backend_name!r}, "
            f"executor={self._executor.name!r})"
        )
