""":class:`TimeWarpingDatabase` — the library's public facade.

Composes a :class:`~repro.core.sharding.ShardedDatabase` — N shards,
each a paged :class:`~repro.storage.database.SequenceDatabase` plus a
pluggable :class:`~repro.index.backend.IndexBackend` driven by a
:class:`~repro.core.query_engine.QueryEngine` — into the end-to-end
system a user adopts: insert sequences, then run whole-matching
similarity searches under time warping with guaranteed-complete
results, or k-nearest-neighbour queries.  This is the paper's
TW-Sim-Search packaged for application use (the lower-level
:class:`~repro.methods.tw_sim.TWSimSearch` exposes the
experiment-oriented cost accounting).

``TimeWarpingDatabase(backend="rstar", shards=4)`` is the one-line
entry point to a different access method or a shard-parallel layout;
answers are identical for every exact backend and any shard count.

Example
-------
>>> from repro import TimeWarpingDatabase
>>> db = TimeWarpingDatabase()
>>> db.insert([20, 21, 21, 20, 20, 23, 23, 23], label="S")
0
>>> db.insert([10, 10, 11, 12], label="T")
1
>>> [m.seq_id for m in db.search([20, 20, 21, 20, 23], epsilon=1.0)]
[0]
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..exceptions import ValidationError
from ..index.backend import BACKENDS, IndexBackend
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..storage.database import SequenceDatabase
from ..storage.diskmodel import DiskModel
from ..types import Sequence, SequenceLike, as_sequence
from .cascade import CascadeStats
from .query_engine import BatchResult, QueryEngine, QueryResult, SearchOutcome
from .sharding import ShardedDatabase

__all__ = ["TimeWarpingDatabase", "SearchOutcome"]

_META_FORMAT = "twdb"
_META_VERSION = 1


class TimeWarpingDatabase:
    """A sequence database answering similarity queries under time warping.

    Parameters
    ----------
    page_size:
        Storage/index page size in bytes (paper: 1 KB).
    disk:
        Disk timing model for simulated I/O accounting; defaults to the
        paper's parameters.
    buffer_pages:
        LRU buffer pool capacity for each shard's data file.
    backend:
        Index backend name (see :data:`repro.index.backend.BACKENDS`);
        the paper's default is the plain R-tree.
    shards:
        Number of round-robin shards queried in parallel (>= 1).
    backend_options:
        Extra options forwarded to each shard's backend constructor.
    executor:
        Shard execution plane — ``"serial"``, ``"thread"`` or
        ``"process"`` (default: the ``REPRO_EXECUTOR`` environment
        variable, else ``"thread"``).  A runtime choice, not a stored
        property: it is never persisted by :meth:`save`.
    store:
        Sequence-store name applied to every shard — ``"heap"`` or
        ``"mmap"`` (default: the ``REPRO_STORE`` environment variable,
        else ``"heap"``).  A stored property: :meth:`save` persists it
        and :meth:`load` sniffs each shard file's magic, so databases
        round-trip under either store.
    """

    def __init__(
        self,
        *,
        page_size: int = 1024,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
        backend: str = "rtree",
        shards: int = 1,
        backend_options: dict[str, object] | None = None,
        executor: str | None = None,
        store: str | None = None,
    ) -> None:
        self._sharded = ShardedDatabase(
            page_size=page_size,
            disk=disk,
            buffer_pages=buffer_pages,
            backend=backend,
            shards=shards,
            backend_options=backend_options,
            executor=executor,
            store=store,
        )
        self._labels: dict[int, str | None] = {}

    @classmethod
    def from_storage(
        cls,
        storage: SequenceDatabase,
        *,
        backend: str = "rtree",
        shards: int = 1,
        backend_options: dict[str, object] | None = None,
        labels: dict[int, str | None] | None = None,
        executor: str | None = None,
    ) -> "TimeWarpingDatabase":
        """Index an existing storage under the chosen backend/sharding.

        With one shard the storage is adopted in place (its ids become
        the facade's ids); with several it is redistributed round-robin
        onto fresh per-shard storages, preserving ids.  Either way the
        index build charges one sequential scan.
        """
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        instance = cls.__new__(cls)
        instance._labels = dict(labels or {})
        if shards == 1:
            engine = QueryEngine(storage, backend, backend_options=backend_options)
            engine.rebuild_index()
            instance._sharded = ShardedDatabase.adopt(
                [engine],
                backend_name=backend,
                backend_options=backend_options,
                executor=executor,
            )
            return instance
        engines = [
            QueryEngine(
                SequenceDatabase(
                    page_size=storage.page_size,
                    disk=storage.disk,
                    store=storage.store_name,
                ),
                backend,
                backend_options=backend_options,
            )
            for _ in range(shards)
        ]
        assign: dict[int, tuple[int, int]] = {}
        per_shard: list[list[Sequence]] = [[] for _ in range(shards)]
        per_gids: list[list[int]] = [[] for _ in range(shards)]
        for sequence in storage.scan():
            assert sequence.seq_id is not None
            shard = sequence.seq_id % shards
            per_shard[shard].append(sequence)
            per_gids[shard].append(sequence.seq_id)
        for shard, batch in enumerate(per_shard):
            if not batch:
                continue
            lids = engines[shard].bulk_insert(batch)
            for gid, lid in zip(per_gids[shard], lids):
                assign[gid] = (shard, lid)
        instance._sharded = ShardedDatabase.adopt(
            engines,
            backend_name=backend,
            backend_options=backend_options,
            assign=assign,
            next_gid=storage.next_id,
            executor=executor,
        )
        return instance

    # -- population ---------------------------------------------------------

    def insert(self, sequence: SequenceLike, *, label: str | None = None) -> int:
        """Store one sequence and index its feature vector; returns its id."""
        seq = as_sequence(sequence)
        seq_id = self._sharded.insert(seq)
        self._labels[seq_id] = label if label is not None else seq.label
        return seq_id

    def bulk_load(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store many sequences and bulk-load each shard's index once.

        Substantially faster than repeated :meth:`insert` for initial
        loads (paper section 4.3.1); existing contents are preserved.
        """
        seqs = [as_sequence(sequence) for sequence in sequences]
        ids = self._sharded.bulk_load(seqs)
        for seq_id, seq in zip(ids, seqs):
            self._labels[seq_id] = seq.label
        return ids

    def delete(self, seq_id: int) -> None:
        """Remove a sequence from storage and the feature index.

        Raises :class:`~repro.exceptions.SequenceNotFoundError` when the
        id is not stored.  Storage space is tombstoned; call
        ``db.storage.compact()`` to reclaim it.
        """
        self._sharded.delete(seq_id)
        self._labels.pop(seq_id, None)

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sharded)

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._sharded

    def get(self, seq_id: int) -> Sequence:
        """Fetch a stored sequence by id."""
        return self._sharded.get(seq_id)

    def ids(self) -> list[int]:
        """All stored (global) sequence ids, ascending."""
        return self._sharded.ids()

    def label_of(self, seq_id: int) -> str | None:
        """The label the sequence was inserted with, if any."""
        return self._labels.get(seq_id)

    @property
    def backend_name(self) -> str:
        """Registry name of the per-shard index backend."""
        return self._sharded.backend_name

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._sharded.n_shards

    @property
    def executor_name(self) -> str:
        """Registry name of the shard execution plane."""
        return self._sharded.executor_name

    @property
    def store_name(self) -> str:
        """Registry name of the per-shard sequence store."""
        return self._sharded.store_name

    def close(self) -> None:
        """Release the execution plane (pool threads, worker processes,
        shared-memory segments).  Idempotent; safe on every executor,
        required etiquette for ``executor="process"``."""
        self._sharded.close()

    def __enter__(self) -> "TimeWarpingDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def storage(self) -> SequenceDatabase:
        """The underlying paged storage (single-shard databases).

        For sharded databases there is one storage per shard — use
        :attr:`shard_storages`.
        """
        if self._sharded.n_shards != 1:
            raise ValidationError(
                "a sharded database has one storage per shard; "
                "use shard_storages"
            )
        return self._sharded.storages[0]

    @property
    def shard_storages(self) -> list[SequenceDatabase]:
        """Each shard's paged storage (shard order)."""
        return self._sharded.storages

    @property
    def backend(self) -> IndexBackend:
        """The index backend (single-shard databases)."""
        if self._sharded.n_shards != 1:
            raise ValidationError(
                "a sharded database has one backend per shard; "
                "use sharded.engines"
            )
        return self._sharded.engines[0].backend

    @property
    def index(self):
        """The underlying index structure (single-shard databases).

        The backend's native tree when it has one (R-tree family,
        suffix tree), else the backend itself.
        """
        backend = self.backend
        return getattr(backend, "tree", backend)

    @property
    def sharded(self) -> ShardedDatabase:
        """The shard router (per-shard engines, storages, placement)."""
        return self._sharded

    @property
    def last_cascade_stats(self) -> CascadeStats | None:
        """Per-stage pruning counters of the most recent search.

        For :meth:`search_many` this is the stage-wise merge over all
        queries of the batch (and over all shards).
        """
        return self._sharded.last_cascade_stats

    @property
    def last_candidate_ids(self) -> list[int]:
        """Lower-bound survivors (pre-verification) of the last search."""
        return self._sharded.last_candidate_ids

    # -- observability -----------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """Cumulative metrics registry of every query served."""
        return self._sharded.metrics

    def metrics_snapshot(self) -> MetricsSnapshot:
        """One snapshot of every counter the database has charged.

        Counters (``cascade.*``, ``index.*``, ``dtw.*``, ``storage.*``,
        ``engine.*``) accumulate over the database's lifetime and merge
        bit-exactly across shards; structure gauges (index node counts,
        storage pages) reflect the current state.  Per-query values are
        available on :meth:`search_detailed`'s return path.
        """
        return self._sharded.metrics_snapshot()

    # -- queries ----------------------------------------------------------------

    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[SearchOutcome]:
        """All sequences with ``D_tw(S, Q) <= epsilon`` (Algorithm 1).

        Exact and complete: the index prunes with ``D_tw-lb`` (no false
        dismissal, Theorem 1) and every candidate is verified with the
        true distance.  Results are sorted by ascending distance.

        *band_radius*, if given, verifies with Sakoe–Chiba-constrained
        DTW instead (extension): the banded distance only exceeds the
        unconstrained one, so the same index remains a sound filter —
        ``D_tw-lb <= D_tw <= D_tw^band`` — while matches are required
        to align without extreme time distortion.
        """
        return self._sharded.search(query, epsilon, band_radius=band_radius)

    def search_detailed(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> QueryResult:
        """:meth:`search` with per-query stats and metrics on the return path.

        The returned :class:`QueryResult` carries this query's cascade
        stage counters, lower-bound survivor ids and a full metrics
        snapshot — safe under concurrent queries, unlike the
        :attr:`last_cascade_stats` compatibility view.
        """
        return self._sharded.search_detailed(
            query, epsilon, band_radius=band_radius
        )

    def search_many(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[list[SearchOutcome]]:
        """Answer a batch of similarity queries in one pass.

        Returns one :meth:`search`-identical result list per query (the
        same ids, distances and ordering), but amortizes feature
        extraction across the batch and evaluates the lower-bound tiers
        as whole-database matrix operations instead of per-query index
        walks.  :attr:`last_cascade_stats` afterwards holds the
        stage-wise merge over all queries of the batch.
        """
        return self._sharded.search_many(
            queries, epsilon, band_radius=band_radius
        )

    def search_many_detailed(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> BatchResult:
        """:meth:`search_many` with batch stats on the return path."""
        return self._sharded.search_many_detailed(
            queries, epsilon, band_radius=band_radius
        )

    def knn(self, query: SequenceLike, k: int) -> list[SearchOutcome]:
        """The *k* sequences with the smallest ``D_tw`` to the query.

        The classical lower-bound kNN refinement: each shard walks its
        index in ascending ``D_tw-lb`` order (lazy best-first) and
        verifies with early-abandoning DTW thresholded at the current
        *k*-th best distance; per-shard top-*k* lists merge exactly.
        """
        return self._sharded.knn(query, k)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the database.

        Single-shard layout (seed-compatible): ``<path>`` holds the
        data heap, ``<path>.idx`` the index (when the backend supports
        a page-exact format), ``<path>.labels`` the label map, and
        ``<path>.meta`` the backend/shard metadata.  Sharded layout:
        one ``<path>.shard<i>`` heap (plus optional ``.idx``) per
        shard, with the gid placement recorded in ``<path>.meta``.
        """
        path = Path(path)
        engines = self._sharded.engines
        meta: dict[str, object] = {
            "format": _META_FORMAT,
            "version": _META_VERSION,
            "backend": self._sharded.backend_name,
            "shards": self._sharded.n_shards,
            "next_gid": self._sharded.next_gid,
            "store": self._sharded.store_name,
        }
        if self._sharded.n_shards == 1:
            engines[0].database.save(path)
            self._save_index(engines[0], path.with_name(path.name + ".idx"))
        else:
            meta["assign"] = {
                str(gid): [shard, lid]
                for gid, (shard, lid) in self._sharded.assignment().items()
            }
            for i, engine in enumerate(engines):
                shard_path = path.with_name(f"{path.name}.shard{i}")
                engine.database.save(shard_path)
                self._save_index(
                    engine, shard_path.with_name(shard_path.name + ".idx")
                )
        labels = {str(k): v for k, v in self._labels.items() if v is not None}
        path.with_name(path.name + ".labels").write_text(json.dumps(labels))
        path.with_name(path.name + ".meta").write_text(json.dumps(meta))

    @staticmethod
    def _save_index(engine: QueryEngine, index_path: Path) -> None:
        if not engine.backend.save(index_path):
            # The backend has no page-exact format; drop any stale file
            # so a later load rebuilds from the data instead.
            index_path.unlink(missing_ok=True)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
        executor: str | None = None,
    ) -> "TimeWarpingDatabase":
        """Re-open a database persisted with :meth:`save`.

        Backend name and shard layout round-trip through the
        ``<path>.meta`` file; files written before it existed load as
        a single-shard R-tree database.  Each shard's index is loaded
        from its ``.idx`` file when present, else rebuilt from the data
        by a (charged) bulk load.
        """
        path = Path(path)
        backend_name = "rtree"
        shards = 1
        next_gid: int | None = None
        assign: dict[int, tuple[int, int]] | None = None
        store_name: str | None = None
        meta_path = path.with_name(path.name + ".meta")
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            backend_name = meta.get("backend", "rtree")
            shards = int(meta.get("shards", 1))
            store_name = meta.get("store")
            if "next_gid" in meta:
                next_gid = int(meta["next_gid"])
            if "assign" in meta:
                assign = {
                    int(gid): (int(pair[0]), int(pair[1]))
                    for gid, pair in meta["assign"].items()
                }
        if backend_name not in BACKENDS:
            raise ValidationError(
                f"persisted database uses unknown backend {backend_name!r}"
            )
        if shards == 1:
            shard_paths = [path]
        else:
            shard_paths = [
                path.with_name(f"{path.name}.shard{i}") for i in range(shards)
            ]
        engines: list[QueryEngine] = []
        for shard_path in shard_paths:
            db = SequenceDatabase.load(
                shard_path,
                disk=disk,
                buffer_pages=buffer_pages,
                store=store_name,
            )
            engines.append(cls._load_engine(db, backend_name, shard_path))
        labels: dict[int, str | None] = {}
        labels_path = path.with_name(path.name + ".labels")
        if labels_path.exists():
            raw = json.loads(labels_path.read_text())
            labels = {int(k): v for k, v in raw.items()}
        instance = cls.__new__(cls)
        instance._sharded = ShardedDatabase.adopt(
            engines,
            backend_name=backend_name,
            assign=assign,
            # A reloaded single-shard storage restarts its id counter at
            # max(ids)+1 (seed behaviour); the gid counter must follow
            # it to keep the gid==lid identity.  Sharded layouts keep
            # the persisted counter so gids are never reused.
            next_gid=next_gid if shards > 1 else None,
            executor=executor,
        )
        instance._labels = labels
        return instance

    @staticmethod
    def _load_engine(
        db: SequenceDatabase, backend_name: str, shard_path: Path
    ) -> QueryEngine:
        index_path = shard_path.with_name(shard_path.name + ".idx")
        if index_path.exists():
            loaded = BACKENDS[backend_name].load(
                index_path, page_size=db.page_size
            )
            if loaded is not None:
                return QueryEngine(db, loaded)
        engine = QueryEngine(db, backend_name)
        engine.rebuild_index()
        return engine
