""":class:`TimeWarpingDatabase` — the library's public facade.

Wraps a paged :class:`~repro.storage.database.SequenceDatabase` and a
4-d feature R-tree into the end-to-end system a user adopts: insert
sequences, then run whole-matching similarity searches under time
warping with guaranteed-complete results, or k-nearest-neighbour
queries.  This is the paper's TW-Sim-Search packaged for application
use (the lower-level :class:`~repro.methods.tw_sim.TWSimSearch` exposes
the experiment-oriented cost accounting).

Example
-------
>>> from repro import TimeWarpingDatabase
>>> db = TimeWarpingDatabase()
>>> db.insert([20, 21, 21, 20, 20, 23, 23, 23], label="S")
0
>>> db.insert([10, 10, 11, 12], label="T")
1
>>> [m.seq_id for m in db.search([20, 20, 21, 20, 23], epsilon=1.0)]
[0]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..distance.bands import sakoe_chiba_window
from ..distance.dtw import dtw_max, dtw_max_early_abandon, dtw_max_matrix
from ..exceptions import ValidationError
from ..index.rtree.bulk import STRBulkLoader
from ..index.rtree.persist import load_rtree, save_rtree
from ..index.rtree.rtree import RTree
from ..storage.database import SequenceDatabase
from ..storage.diskmodel import DiskModel
from ..types import Sequence, SequenceLike, as_sequence
from .cascade import STAGE_DTW, CascadeStats, FilterCascade, StageStats
from .features import extract_feature
from .lower_bound import feature_rect

__all__ = ["TimeWarpingDatabase", "SearchOutcome"]


@dataclass(frozen=True)
class SearchOutcome:
    """One match of a similarity search.

    Attributes
    ----------
    seq_id:
        The matching sequence's identifier.
    distance:
        Its true time-warping distance to the query.
    sequence:
        The matching sequence itself.
    """

    seq_id: int
    distance: float
    sequence: Sequence


class TimeWarpingDatabase:
    """A sequence database answering similarity queries under time warping.

    Parameters
    ----------
    page_size:
        Storage/index page size in bytes (paper: 1 KB).
    disk:
        Disk timing model for simulated I/O accounting; defaults to the
        paper's parameters.
    buffer_pages:
        LRU buffer pool capacity for the data file.
    """

    def __init__(
        self,
        *,
        page_size: int = 1024,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
    ) -> None:
        self._db = SequenceDatabase(
            page_size=page_size, disk=disk, buffer_pages=buffer_pages
        )
        self._tree = RTree(4, page_size=page_size)
        self._labels: dict[int, str | None] = {}
        self._cascade: FilterCascade | None = None
        self._last_cascade_stats: CascadeStats | None = None

    # -- population ---------------------------------------------------------

    def insert(self, sequence: SequenceLike, *, label: str | None = None) -> int:
        """Store one sequence and index its feature vector; returns its id."""
        seq = as_sequence(sequence)
        if len(seq) == 0:
            raise ValidationError("cannot insert an empty sequence")
        seq_id = self._db.insert(seq)
        self._tree.insert_point(extract_feature(seq.values).as_tuple(), seq_id)
        self._labels[seq_id] = label if label is not None else seq.label
        return seq_id

    def bulk_load(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store many sequences and STR-pack the index in one pass.

        Substantially faster than repeated :meth:`insert` for initial
        loads (paper section 4.3.1); existing contents are preserved.
        """
        loader = STRBulkLoader(4, page_size=self._db.page_size)
        for rect, record in self._tree.items():
            loader.add(rect, record)
        ids: list[int] = []
        for sequence in sequences:
            seq = as_sequence(sequence)
            if len(seq) == 0:
                raise ValidationError("cannot insert an empty sequence")
            seq_id = self._db.insert(seq)
            loader.add(extract_feature(seq.values).as_tuple(), seq_id)
            self._labels[seq_id] = seq.label
            ids.append(seq_id)
        self._tree = loader.build()
        return ids

    def delete(self, seq_id: int) -> None:
        """Remove a sequence from storage and the feature index.

        Raises :class:`~repro.exceptions.SequenceNotFoundError` when the
        id is not stored.  Storage space is tombstoned; call
        ``db.storage.compact()`` to reclaim it.
        """
        stored = self._db.fetch(seq_id)
        feature = extract_feature(stored.values)
        self._tree.delete(feature.as_tuple(), seq_id)
        self._db.delete(seq_id)
        self._labels.pop(seq_id, None)

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._db)

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._db

    def get(self, seq_id: int) -> Sequence:
        """Fetch a stored sequence by id."""
        return self._db.fetch(seq_id)

    def label_of(self, seq_id: int) -> str | None:
        """The label the sequence was inserted with, if any."""
        return self._labels.get(seq_id)

    @property
    def storage(self) -> SequenceDatabase:
        """The underlying paged storage (for I/O statistics)."""
        return self._db

    @property
    def index(self) -> RTree:
        """The 4-d feature R-tree."""
        return self._tree

    @property
    def last_cascade_stats(self) -> CascadeStats | None:
        """Per-stage pruning counters of the most recent search.

        For :meth:`search_many` this is the stage-wise merge over all
        queries of the batch (:meth:`CascadeStats.merge`).
        """
        return self._last_cascade_stats

    def _active_cascade(self) -> FilterCascade:
        """The filter cascade over the current contents (lazily rebuilt).

        Ids are never reused and stored sequences are immutable, so the
        store stays valid until an insert/delete changes the id set —
        then one sequential scan rebuilds it.
        """
        if self._cascade is None or not self._cascade.store.matches(self._db):
            self._cascade = FilterCascade.from_database(self._db)
        return self._cascade

    # -- queries ----------------------------------------------------------------

    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[SearchOutcome]:
        """All sequences with ``D_tw(S, Q) <= epsilon`` (Algorithm 1).

        Exact and complete: the index prunes with ``D_tw-lb`` (no false
        dismissal, Theorem 1) and every candidate is verified with the
        true distance.  Results are sorted by ascending distance.

        *band_radius*, if given, verifies with Sakoe–Chiba-constrained
        DTW instead (extension): the banded distance only exceeds the
        unconstrained one, so the same index remains a sound filter —
        ``D_tw-lb <= D_tw <= D_tw^band`` — while matches are required
        to align without extreme time distortion.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        rect = feature_rect(extract_feature(q.values), epsilon)
        candidate_ids = sorted(self._tree.range_search(rect))
        cascade = self._active_cascade()
        rows = cascade.store.rows_for(candidate_ids)
        stages = [StageStats("rtree", len(self._db), int(rows.size))]
        surviving, tier_stages = cascade.filter(
            q.values, epsilon, rows=rows, band_radius=band_radius
        )
        stages.extend(tier_stages)
        ids = cascade.store.ids
        matches: list[SearchOutcome] = []
        for row in surviving:
            seq_id = int(ids[row])
            stored = self._db.fetch(seq_id)
            distance = self._verify_distance(
                stored.values, q.values, epsilon, band_radius
            )
            if distance <= epsilon:
                matches.append(SearchOutcome(seq_id, distance, stored))
        stages.append(StageStats(STAGE_DTW, int(surviving.size), len(matches)))
        self._last_cascade_stats = CascadeStats(stages)
        matches.sort(key=lambda m: (m.distance, m.seq_id))
        return matches

    def search_many(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[list[SearchOutcome]]:
        """Answer a batch of similarity queries in one pass.

        Returns one :meth:`search`-identical result list per query (the
        same ids, distances and ordering), but amortizes feature
        extraction across the batch and evaluates the lower-bound tiers
        as whole-database matrix operations instead of per-query index
        walks.  :attr:`last_cascade_stats` afterwards holds the
        stage-wise merge over all queries of the batch.
        """
        query_seqs = [as_sequence(query) for query in queries]
        for q in query_seqs:
            if len(q) == 0:
                raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        cascade = self._active_cascade()
        batch = cascade.run_many(
            [q.values for q in query_seqs], epsilon, band_radius=band_radius
        )
        results: list[list[SearchOutcome]] = []
        for outcome in batch:
            rows = cascade.store.rows_for(outcome.answer_ids)
            matches = [
                SearchOutcome(
                    seq_id,
                    outcome.distances[seq_id],
                    cascade.store.sequences[int(row)],
                )
                for seq_id, row in zip(outcome.answer_ids, rows)
            ]
            matches.sort(key=lambda m: (m.distance, m.seq_id))
            results.append(matches)
        if batch:
            self._last_cascade_stats = CascadeStats.merge(o.stats for o in batch)
        return results

    @staticmethod
    def _verify_distance(
        s_values, q_values, epsilon: float, band_radius: int | None
    ) -> float:
        if band_radius is None:
            return dtw_max_early_abandon(s_values, q_values, epsilon)
        window = sakoe_chiba_window(len(s_values), len(q_values), band_radius)
        return dtw_max_matrix(s_values, q_values, window=window).distance

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the database to three files.

        ``<path>`` holds the data heap, ``<path>.idx`` the feature
        R-tree (page-exact format), ``<path>.labels`` the label map.
        """
        path = Path(path)
        self._db.save(path)
        save_rtree(self._tree, path.with_name(path.name + ".idx"))
        labels = {str(k): v for k, v in self._labels.items() if v is not None}
        path.with_name(path.name + ".labels").write_text(json.dumps(labels))

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        disk: DiskModel | None = None,
        buffer_pages: int = 0,
    ) -> "TimeWarpingDatabase":
        """Re-open a database persisted with :meth:`save`.

        The index is loaded from ``<path>.idx`` when present, else
        rebuilt from the data by STR packing.
        """
        path = Path(path)
        instance = cls.__new__(cls)
        instance._db = SequenceDatabase.load(
            path, disk=disk, buffer_pages=buffer_pages
        )
        index_path = path.with_name(path.name + ".idx")
        if index_path.exists():
            instance._tree = load_rtree(index_path)
        else:
            loader = STRBulkLoader(4, page_size=instance._db.page_size)
            for sequence in instance._db.scan():
                assert sequence.seq_id is not None
                loader.add(
                    extract_feature(sequence.values).as_tuple(),
                    sequence.seq_id,
                )
            instance._tree = loader.build()
        instance._cascade = None
        instance._last_cascade_stats = None
        labels_path = path.with_name(path.name + ".labels")
        instance._labels = {}
        if labels_path.exists():
            raw = json.loads(labels_path.read_text())
            instance._labels = {int(k): v for k, v in raw.items()}
        return instance

    def knn(self, query: SequenceLike, k: int) -> list[SearchOutcome]:
        """The *k* sequences with the smallest ``D_tw`` to the query.

        Uses the classical lower-bound kNN refinement: walk index
        entries in ascending ``D_tw-lb`` order (best-first, exact for a
        metric lower bound) and verify with the true distance until the
        *k*-th true distance is no greater than the next lower bound.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        point = extract_feature(q.values).as_tuple()
        # Over-fetch lower-bound neighbours lazily: take them in chunks.
        found: list[SearchOutcome] = []
        fetched = 0
        chunk = max(k * 4, 16)
        while True:
            neighbours = self._tree.knn(point, fetched + chunk)
            new = neighbours[fetched:]
            if not new:
                break
            for lb, seq_id in new:
                fetched += 1
                if len(found) >= k and lb > found[k - 1].distance:
                    found = found[:k]
                    return found
                stored = self._db.fetch(seq_id)
                distance = dtw_max(stored.values, q.values)
                found.append(SearchOutcome(seq_id, distance, stored))
                found.sort(key=lambda m: (m.distance, m.seq_id))
            if fetched >= len(self._db):
                break
        return found[:k]
