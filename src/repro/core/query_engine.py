""":class:`QueryEngine` — backend → filter cascade → verification.

One object owns the whole similarity-search pipeline of Algorithm 1:
an :class:`~repro.index.backend.IndexBackend` generates candidates, the
:class:`~repro.core.cascade.FilterCascade` prunes them with the
lower-bound tiers, and DTW verification refines the survivors — with
every simulated-I/O and pruning counter charged in one place.  The
public facade (:class:`~repro.core.engine.TimeWarpingDatabase`), the
``methods/*`` experiment classes and the eval harness all compose this
engine instead of re-implementing the pipeline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol

import numpy as np

from ..distance.bands import sakoe_chiba_window
from ..distance.dtw import dtw_max_early_abandon, dtw_max_matrix
from ..exceptions import ValidationError
from ..index.backend import IndexBackend, make_backend
from ..obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
    timed,
    use_registry,
)
from ..obs.querylog import record_query
from ..obs.tracing import maybe_span
from ..storage.database import SequenceDatabase
from ..types import Sequence, SequenceLike, as_sequence
from .cascade import STAGE_DTW, CascadeStats, FilterCascade, charged_stage

__all__ = [
    "QueryEngine",
    "SearchOutcome",
    "QueryResult",
    "BatchResult",
    "charged_candidates",
]


@dataclass(frozen=True)
class SearchOutcome:
    """One match of a similarity search.

    Attributes
    ----------
    seq_id:
        The matching sequence's identifier.
    distance:
        Its true time-warping distance to the query.
    sequence:
        The matching sequence itself.
    """

    seq_id: int
    distance: float
    sequence: Sequence


@dataclass(frozen=True)
class QueryResult:
    """Everything one engine query produced — the return-path stats.

    Per-query statistics used to live in mutable engine attributes that
    concurrent queries clobbered; they are now carried on the return
    value, so every caller reads the stats of *its own* query.

    Attributes
    ----------
    matches:
        Qualifying sequences, ascending distance.
    stats:
        Per-stage pruning counters of this query.
    candidate_ids:
        Lower-bound survivors (pre-verification), ascending id.
    metrics:
        The full registry snapshot of this query's charges (cascade
        tiers, index node reads, DTW cells, storage pages).
    """

    matches: list[SearchOutcome]
    stats: CascadeStats
    candidate_ids: list[int]
    metrics: MetricsSnapshot


@dataclass(frozen=True)
class BatchResult:
    """Return-path stats of one :meth:`QueryEngine.search_many` batch."""

    results: list[list[SearchOutcome]]
    stats: CascadeStats | None
    metrics: MetricsSnapshot


class _CostSink(Protocol):
    """The two counters an index traversal charges (MethodStats quacks)."""

    index_node_reads: int
    simulated_io_seconds: float


def charged_candidates(
    backend: IndexBackend,
    db: SequenceDatabase,
    values: SequenceLike,
    epsilon: float,
    stats: _CostSink,
    *,
    io_charge: Callable[[int], float] | None = None,
) -> list[int]:
    """Run a backend range search and charge its node I/O to *stats*.

    Node reads accumulated by the traversal are added to
    ``stats.index_node_reads`` and converted to simulated seconds —
    by default one random page read per node, or via *io_charge* when
    the backend's nodes pack differently (e.g. the suffix tree packs
    many small nodes per page).
    """
    backend.access.mark("charged-candidates")
    candidate_ids = backend.range_search(values, epsilon)
    node_reads, _, _ = backend.access.delta("charged-candidates")
    stats.index_node_reads += node_reads
    if io_charge is not None:
        seconds = io_charge(node_reads)
    else:
        seconds = db.disk.random_read_time(node_reads, db.page_size)
    stats.simulated_io_seconds += seconds
    registry = active_registry()
    if registry is not None:
        # ``.seconds`` final segment: timing series, parity-excluded by
        # convention (RL014).
        registry.count(f"index.{backend.name}.io.seconds", seconds)
    return candidate_ids


class QueryEngine:
    """The composed search pipeline over one storage + one index backend.

    Parameters
    ----------
    database:
        The paged sequence storage the engine reads through.
    backend:
        An :class:`IndexBackend` instance, or a registry name
        (``"rtree"``, ``"rstar"``, ...) constructed at the storage's
        page size.
    backend_options:
        Extra constructor options when *backend* is a name.
    cascade_factory:
        How to (re)build the filter cascade when the store goes stale.
        Defaults to :meth:`FilterCascade.from_database` (one charged
        sequential scan); the process executor's workers inject a
        factory that charges the same scan but adopts the published
        shared-memory store, so counters stay bit-identical.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        backend: IndexBackend | str = "rtree",
        *,
        backend_options: dict[str, object] | None = None,
        cascade_factory: Callable[[SequenceDatabase], FilterCascade]
        | None = None,
    ) -> None:
        if isinstance(backend, str):
            backend = make_backend(
                backend,
                page_size=database.page_size,
                **(backend_options or {}),
            )
        elif backend_options:
            raise ValidationError(
                "backend_options require a backend name, not an instance"
            )
        self._db = database
        self._backend = backend
        self._cascade_factory: Callable[[SequenceDatabase], FilterCascade] = (
            cascade_factory
            if cascade_factory is not None
            else FilterCascade.from_database
        )
        self._cascade: FilterCascade | None = None
        self._cascade_lock = threading.Lock()
        self._metrics = MetricsRegistry()
        # Thread-local so concurrent queries never see each other's
        # stats; the authoritative per-query values travel on the
        # QueryResult return path.
        self._last = threading.local()

    # -- composition ---------------------------------------------------------

    @property
    def database(self) -> SequenceDatabase:
        """The underlying paged storage."""
        return self._db

    @property
    def backend(self) -> IndexBackend:
        """The candidate-generating index backend."""
        return self._backend

    @property
    def last_cascade_stats(self) -> CascadeStats | None:
        """Per-stage pruning counters of this thread's most recent query.

        Compatibility view; prefer :meth:`search_detailed`, whose
        :class:`QueryResult` carries the stats on the return path.
        """
        return getattr(self._last, "stats", None)

    @property
    def last_candidate_ids(self) -> list[int]:
        """Lower-bound survivors of this thread's most recent search."""
        return list(getattr(self._last, "candidate_ids", []))

    # -- observability -------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """Cumulative registry of every query this engine has served."""
        return self._metrics

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Cumulative counters plus current index/storage structure gauges."""
        self._metrics.set_gauge("storage.total_pages", self._db.total_pages)
        self._metrics.set_gauge("storage.sequences", len(self._db))
        self._metrics.set_gauge(
            "storage.buffer.hit_ratio", self._db.buffer.hit_ratio
        )
        node_stats = self._backend.node_stats()
        prefix = f"index.{self._backend.name}"
        self._metrics.set_gauge(f"{prefix}.nodes", node_stats.nodes)
        self._metrics.set_gauge(f"{prefix}.height", node_stats.height)
        self._metrics.set_gauge(f"{prefix}.size_in_bytes", node_stats.size_in_bytes)
        return self._metrics.snapshot()

    @contextmanager
    def _query_scope(self) -> Iterator[MetricsRegistry]:
        """Route one query's charges into a fresh per-query registry.

        On exit the per-query snapshot is folded into the engine's
        cumulative registry and into whatever registry was ambient when
        the query arrived (so an outer harness- or session-level
        registry still sees every charge, exactly once).
        """
        outer = active_registry()
        per_query = MetricsRegistry()
        try:
            with use_registry(per_query):
                yield per_query
        finally:
            snapshot = per_query.snapshot()
            self._metrics.merge(snapshot)
            if outer is not None:
                outer.merge(snapshot)

    def __len__(self) -> int:
        return len(self._db)

    # -- population ---------------------------------------------------------

    def insert(self, sequence: SequenceLike) -> int:
        """Store one sequence and index it; returns its id."""
        seq = as_sequence(sequence)
        if len(seq) == 0:
            raise ValidationError("cannot insert an empty sequence")
        seq_id = self._db.insert(seq)
        self._backend.insert(seq_id, seq.values)
        return seq_id

    def bulk_insert(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store many sequences and bulk-load the index in one pass."""
        items: list[tuple[int, SequenceLike]] = []
        ids: list[int] = []
        for sequence in sequences:
            seq = as_sequence(sequence)
            if len(seq) == 0:
                raise ValidationError("cannot insert an empty sequence")
            seq_id = self._db.insert(seq)
            items.append((seq_id, seq.values))
            ids.append(seq_id)
        self._backend.bulk_load(items)
        return ids

    def delete(self, seq_id: int) -> None:
        """Remove a sequence from storage and the index."""
        stored = self._db.fetch(seq_id)
        self._backend.delete(seq_id, stored.values)
        self._db.delete(seq_id)

    def rebuild_index(self) -> None:
        """Re-index the whole storage with one (charged) sequential scan."""
        items: list[tuple[int, SequenceLike]] = []
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            items.append((sequence.seq_id, sequence.values))
        self._backend.bulk_load(items)

    # -- queries ----------------------------------------------------------------

    def _active_cascade(self) -> FilterCascade:
        """The filter cascade over the current contents (lazily rebuilt).

        Ids are never reused and stored sequences are immutable, so the
        store stays valid until an insert/delete changes the id set —
        then one sequential scan rebuilds it.
        """
        cascade = self._cascade
        if cascade is None or not cascade.store.matches(self._db):
            with self._cascade_lock:
                cascade = self._cascade
                if cascade is None or not cascade.store.matches(self._db):
                    cascade = self._cascade_factory(self._db)
                    self._cascade = cascade
        return cascade

    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[SearchOutcome]:
        """All sequences with ``D_tw(S, Q) <= epsilon`` (Algorithm 1).

        Exact and complete for every ``exact`` backend: the index
        prunes with a valid lower bound (no false dismissal) and every
        candidate is verified with the true distance.  Results are
        sorted by ascending distance.

        *band_radius*, if given, verifies with Sakoe–Chiba-constrained
        DTW instead (extension): the banded distance only exceeds the
        unconstrained one, so the same index remains a sound filter.

        Thin wrapper over :meth:`search_detailed` that returns only the
        matches (per-query stats stay available on this thread's
        :attr:`last_cascade_stats` compatibility view).
        """
        return self.search_detailed(
            query, epsilon, band_radius=band_radius
        ).matches

    def search_detailed(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> QueryResult:
        """:meth:`search` with per-query stats on the return path.

        Surviving sequences are served from the cascade's in-memory
        store, but each one is still charged as the random fetch
        Algorithm 1's post-processing step performs.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        with self._query_scope() as per_query, maybe_span(
            "engine.search", backend=self._backend.name, epsilon=epsilon
        ):
            with timed("engine.search.seconds"):
                candidate_ids = sorted(
                    self._backend.range_search(q.values, epsilon)
                )
                cascade = self._active_cascade()
                rows = cascade.store.rows_for(candidate_ids)
                stages = [
                    charged_stage(
                        self._backend.name, len(self._db), int(rows.size)
                    )
                ]
                surviving, tier_stages = cascade.filter(
                    q.values, epsilon, rows=rows, band_radius=band_radius
                )
                stages.extend(tier_stages)
                ids = cascade.store.ids
                survivor_ids = [int(ids[row]) for row in surviving]
                matches: list[SearchOutcome] = []
                with timed("dtw.verify.seconds"):
                    for row in surviving:
                        seq_id = int(ids[row])
                        stored = cascade.store.sequences[int(row)]
                        self._db.charge_fetch(seq_id)
                        distance = self._verify_distance(
                            stored.values, q.values, epsilon, band_radius
                        )
                        if distance <= epsilon:
                            matches.append(
                                SearchOutcome(seq_id, distance, stored)
                            )
                stages.append(
                    charged_stage(STAGE_DTW, int(surviving.size), len(matches))
                )
                per_query.count("engine.queries")
                per_query.count("engine.candidates", len(survivor_ids))
                per_query.count("engine.answers", len(matches))
                matches.sort(key=lambda m: (m.distance, m.seq_id))
            result = QueryResult(
                matches=matches,
                stats=CascadeStats(stages),
                candidate_ids=survivor_ids,
                metrics=per_query.snapshot(),
            )
            record_query(
                kind="range",
                epsilon=epsilon,
                backend=self._backend.name,
                executor="inline",
                store=self._db.store_name,
                shards=1,
                stages=[(s.name, s.n_in, s.n_out) for s in stages],
                snapshot=result.metrics,
                result_count=len(matches),
                total_metric="engine.search.seconds",
            )
        self._last.stats = result.stats
        self._last.candidate_ids = result.candidate_ids
        return result

    def search_many(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[list[SearchOutcome]]:
        """Answer a batch of similarity queries in one pass.

        Returns one :meth:`search`-identical result list per query (the
        same ids, distances and ordering); see
        :meth:`search_many_detailed` for the return-path stats.
        """
        return self.search_many_detailed(
            queries, epsilon, band_radius=band_radius
        ).results

    def search_many_detailed(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> BatchResult:
        """:meth:`search_many` with batch stats on the return path.

        Amortizes feature extraction across the batch and evaluates the
        lower-bound tiers as whole-database matrix operations instead of
        per-query index walks.  ``stats`` holds the stage-wise merge
        over all queries of the batch (None for an empty batch).
        """
        query_seqs = [as_sequence(query) for query in queries]
        for q in query_seqs:
            if len(q) == 0:
                raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        with self._query_scope() as per_query, maybe_span(
            "engine.search_many",
            backend=self._backend.name,
            queries=len(query_seqs),
        ):
            with timed("engine.search_many.seconds"):
                cascade = self._active_cascade()
                batch = cascade.run_many(
                    [q.values for q in query_seqs],
                    epsilon,
                    band_radius=band_radius,
                )
                results: list[list[SearchOutcome]] = []
                for outcome in batch:
                    rows = cascade.store.rows_for(outcome.answer_ids)
                    matches = [
                        SearchOutcome(
                            seq_id,
                            outcome.distances[seq_id],
                            cascade.store.sequences[int(row)],
                        )
                        for seq_id, row in zip(outcome.answer_ids, rows)
                    ]
                    matches.sort(key=lambda m: (m.distance, m.seq_id))
                    results.append(matches)
                stats = (
                    CascadeStats.merge(o.stats for o in batch) if batch else None
                )
                per_query.count("engine.queries", len(query_seqs))
                per_query.count(
                    "engine.candidates",
                    sum(len(o.candidate_ids) for o in batch),
                )
                per_query.count("engine.answers", sum(len(r) for r in results))
            result = BatchResult(
                results=results, stats=stats, metrics=per_query.snapshot()
            )
            record_query(
                kind="range_batch",
                epsilon=epsilon,
                backend=self._backend.name,
                executor="inline",
                store=self._db.store_name,
                shards=1,
                n_queries=len(query_seqs),
                stages=[
                    (s.name, s.n_in, s.n_out)
                    for s in (stats.stages if stats is not None else [])
                ],
                snapshot=result.metrics,
                result_count=sum(len(r) for r in results),
                total_metric="engine.search_many.seconds",
            )
        if result.stats is not None:
            self._last.stats = result.stats
        return result

    def knn(self, query: SequenceLike, k: int) -> list[SearchOutcome]:
        """The *k* sequences with the smallest ``D_tw`` to the query."""
        return self.knn_detailed(query, k).matches

    def knn_detailed(self, query: SequenceLike, k: int) -> QueryResult:
        """:meth:`knn` with per-query metrics on the return path.

        The classical lower-bound kNN refinement, consumed lazily: the
        backend yields candidates in ascending lower-bound order
        (:meth:`IndexBackend.knn_iter`); each is verified with
        early-abandoning DTW thresholded at the current *k*-th best
        distance, and the walk stops as soon as the next lower bound
        exceeds that threshold — no further sequence can qualify.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        with self._query_scope() as per_query, maybe_span(
            "engine.knn", backend=self._backend.name, k=k
        ):
            with timed("engine.knn.seconds"):
                found: list[SearchOutcome] = []
                examined = 0
                for lb, seq_id in self._backend.knn_iter(q.values):
                    if len(found) >= k and lb > found[k - 1].distance:
                        break
                    threshold = (
                        found[k - 1].distance
                        if len(found) >= k
                        else float("inf")
                    )
                    stored = self._db.fetch(seq_id)
                    distance = dtw_max_early_abandon(
                        stored.values, q.values, threshold
                    )
                    examined += 1
                    if distance <= threshold:
                        found.append(SearchOutcome(seq_id, distance, stored))
                        found.sort(key=lambda m: (m.distance, m.seq_id))
                        del found[k:]
                per_query.count("engine.knn_queries")
                per_query.count("engine.knn_examined", examined)
            result = QueryResult(
                matches=found,
                stats=CascadeStats([]),
                candidate_ids=[],
                metrics=per_query.snapshot(),
            )
            record_query(
                kind="knn",
                k=k,
                backend=self._backend.name,
                executor="inline",
                store=self._db.store_name,
                shards=1,
                stages=[],
                snapshot=result.metrics,
                result_count=len(found),
                total_metric="engine.knn.seconds",
            )
        return result

    @staticmethod
    def _verify_distance(
        s_values: np.ndarray,
        q_values: np.ndarray,
        epsilon: float,
        band_radius: int | None,
    ) -> float:
        if band_radius is None:
            return dtw_max_early_abandon(s_values, q_values, epsilon)
        window = sakoe_chiba_window(len(s_values), len(q_values), band_radius)
        return dtw_max_matrix(s_values, q_values, window=window).distance
