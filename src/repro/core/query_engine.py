""":class:`QueryEngine` — backend → filter cascade → verification.

One object owns the whole similarity-search pipeline of Algorithm 1:
an :class:`~repro.index.backend.IndexBackend` generates candidates, the
:class:`~repro.core.cascade.FilterCascade` prunes them with the
lower-bound tiers, and DTW verification refines the survivors — with
every simulated-I/O and pruning counter charged in one place.  The
public facade (:class:`~repro.core.engine.TimeWarpingDatabase`), the
``methods/*`` experiment classes and the eval harness all compose this
engine instead of re-implementing the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

import numpy as np

from ..distance.bands import sakoe_chiba_window
from ..distance.dtw import dtw_max_early_abandon, dtw_max_matrix
from ..exceptions import ValidationError
from ..index.backend import IndexBackend, make_backend
from ..storage.database import SequenceDatabase
from ..types import Sequence, SequenceLike, as_sequence
from .cascade import STAGE_DTW, CascadeStats, FilterCascade, StageStats

__all__ = ["QueryEngine", "SearchOutcome", "charged_candidates"]


@dataclass(frozen=True)
class SearchOutcome:
    """One match of a similarity search.

    Attributes
    ----------
    seq_id:
        The matching sequence's identifier.
    distance:
        Its true time-warping distance to the query.
    sequence:
        The matching sequence itself.
    """

    seq_id: int
    distance: float
    sequence: Sequence


class _CostSink(Protocol):
    """The two counters an index traversal charges (MethodStats quacks)."""

    index_node_reads: int
    simulated_io_seconds: float


def charged_candidates(
    backend: IndexBackend,
    db: SequenceDatabase,
    values: SequenceLike,
    epsilon: float,
    stats: _CostSink,
    *,
    io_charge: Callable[[int], float] | None = None,
) -> list[int]:
    """Run a backend range search and charge its node I/O to *stats*.

    Node reads accumulated by the traversal are added to
    ``stats.index_node_reads`` and converted to simulated seconds —
    by default one random page read per node, or via *io_charge* when
    the backend's nodes pack differently (e.g. the suffix tree packs
    many small nodes per page).
    """
    backend.access.mark("charged-candidates")
    candidate_ids = backend.range_search(values, epsilon)
    node_reads, _, _ = backend.access.delta("charged-candidates")
    stats.index_node_reads += node_reads
    if io_charge is not None:
        stats.simulated_io_seconds += io_charge(node_reads)
    else:
        stats.simulated_io_seconds += db.disk.random_read_time(
            node_reads, db.page_size
        )
    return candidate_ids


class QueryEngine:
    """The composed search pipeline over one storage + one index backend.

    Parameters
    ----------
    database:
        The paged sequence storage the engine reads through.
    backend:
        An :class:`IndexBackend` instance, or a registry name
        (``"rtree"``, ``"rstar"``, ...) constructed at the storage's
        page size.
    backend_options:
        Extra constructor options when *backend* is a name.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        backend: IndexBackend | str = "rtree",
        *,
        backend_options: dict[str, object] | None = None,
    ) -> None:
        if isinstance(backend, str):
            backend = make_backend(
                backend,
                page_size=database.page_size,
                **(backend_options or {}),
            )
        elif backend_options:
            raise ValidationError(
                "backend_options require a backend name, not an instance"
            )
        self._db = database
        self._backend = backend
        self._cascade: FilterCascade | None = None
        self._last_cascade_stats: CascadeStats | None = None
        self._last_candidate_ids: list[int] = []

    # -- composition ---------------------------------------------------------

    @property
    def database(self) -> SequenceDatabase:
        """The underlying paged storage."""
        return self._db

    @property
    def backend(self) -> IndexBackend:
        """The candidate-generating index backend."""
        return self._backend

    @property
    def last_cascade_stats(self) -> CascadeStats | None:
        """Per-stage pruning counters of the most recent query."""
        return self._last_cascade_stats

    @property
    def last_candidate_ids(self) -> list[int]:
        """Lower-bound survivors (pre-verification) of the last search."""
        return list(self._last_candidate_ids)

    def __len__(self) -> int:
        return len(self._db)

    # -- population ---------------------------------------------------------

    def insert(self, sequence: SequenceLike) -> int:
        """Store one sequence and index it; returns its id."""
        seq = as_sequence(sequence)
        if len(seq) == 0:
            raise ValidationError("cannot insert an empty sequence")
        seq_id = self._db.insert(seq)
        self._backend.insert(seq_id, seq.values)
        return seq_id

    def bulk_insert(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Store many sequences and bulk-load the index in one pass."""
        items: list[tuple[int, SequenceLike]] = []
        ids: list[int] = []
        for sequence in sequences:
            seq = as_sequence(sequence)
            if len(seq) == 0:
                raise ValidationError("cannot insert an empty sequence")
            seq_id = self._db.insert(seq)
            items.append((seq_id, seq.values))
            ids.append(seq_id)
        self._backend.bulk_load(items)
        return ids

    def delete(self, seq_id: int) -> None:
        """Remove a sequence from storage and the index."""
        stored = self._db.fetch(seq_id)
        self._backend.delete(seq_id, stored.values)
        self._db.delete(seq_id)

    def rebuild_index(self) -> None:
        """Re-index the whole storage with one (charged) sequential scan."""
        items: list[tuple[int, SequenceLike]] = []
        for sequence in self._db.scan():
            assert sequence.seq_id is not None
            items.append((sequence.seq_id, sequence.values))
        self._backend.bulk_load(items)

    # -- queries ----------------------------------------------------------------

    def _active_cascade(self) -> FilterCascade:
        """The filter cascade over the current contents (lazily rebuilt).

        Ids are never reused and stored sequences are immutable, so the
        store stays valid until an insert/delete changes the id set —
        then one sequential scan rebuilds it.
        """
        if self._cascade is None or not self._cascade.store.matches(self._db):
            self._cascade = FilterCascade.from_database(self._db)
        return self._cascade

    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[SearchOutcome]:
        """All sequences with ``D_tw(S, Q) <= epsilon`` (Algorithm 1).

        Exact and complete for every ``exact`` backend: the index
        prunes with a valid lower bound (no false dismissal) and every
        candidate is verified with the true distance.  Results are
        sorted by ascending distance.

        *band_radius*, if given, verifies with Sakoe–Chiba-constrained
        DTW instead (extension): the banded distance only exceeds the
        unconstrained one, so the same index remains a sound filter.

        Surviving sequences are served from the cascade's in-memory
        store, but each one is still charged as the random fetch
        Algorithm 1's post-processing step performs.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        candidate_ids = sorted(self._backend.range_search(q.values, epsilon))
        cascade = self._active_cascade()
        rows = cascade.store.rows_for(candidate_ids)
        stages = [StageStats(self._backend.name, len(self._db), int(rows.size))]
        surviving, tier_stages = cascade.filter(
            q.values, epsilon, rows=rows, band_radius=band_radius
        )
        stages.extend(tier_stages)
        ids = cascade.store.ids
        self._last_candidate_ids = [int(ids[row]) for row in surviving]
        matches: list[SearchOutcome] = []
        for row in surviving:
            seq_id = int(ids[row])
            stored = cascade.store.sequences[int(row)]
            self._db.charge_fetch(seq_id)
            distance = self._verify_distance(
                stored.values, q.values, epsilon, band_radius
            )
            if distance <= epsilon:
                matches.append(SearchOutcome(seq_id, distance, stored))
        stages.append(StageStats(STAGE_DTW, int(surviving.size), len(matches)))
        self._last_cascade_stats = CascadeStats(stages)
        matches.sort(key=lambda m: (m.distance, m.seq_id))
        return matches

    def search_many(
        self,
        queries: Iterable[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
    ) -> list[list[SearchOutcome]]:
        """Answer a batch of similarity queries in one pass.

        Returns one :meth:`search`-identical result list per query (the
        same ids, distances and ordering), but amortizes feature
        extraction across the batch and evaluates the lower-bound tiers
        as whole-database matrix operations instead of per-query index
        walks.  :attr:`last_cascade_stats` afterwards holds the
        stage-wise merge over all queries of the batch.
        """
        query_seqs = [as_sequence(query) for query in queries]
        for q in query_seqs:
            if len(q) == 0:
                raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        cascade = self._active_cascade()
        batch = cascade.run_many(
            [q.values for q in query_seqs], epsilon, band_radius=band_radius
        )
        results: list[list[SearchOutcome]] = []
        for outcome in batch:
            rows = cascade.store.rows_for(outcome.answer_ids)
            matches = [
                SearchOutcome(
                    seq_id,
                    outcome.distances[seq_id],
                    cascade.store.sequences[int(row)],
                )
                for seq_id, row in zip(outcome.answer_ids, rows)
            ]
            matches.sort(key=lambda m: (m.distance, m.seq_id))
            results.append(matches)
        if batch:
            self._last_cascade_stats = CascadeStats.merge(o.stats for o in batch)
        return results

    def knn(self, query: SequenceLike, k: int) -> list[SearchOutcome]:
        """The *k* sequences with the smallest ``D_tw`` to the query.

        The classical lower-bound kNN refinement, consumed lazily: the
        backend yields candidates in ascending lower-bound order
        (:meth:`IndexBackend.knn_iter`); each is verified with
        early-abandoning DTW thresholded at the current *k*-th best
        distance, and the walk stops as soon as the next lower bound
        exceeds that threshold — no further sequence can qualify.
        """
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        found: list[SearchOutcome] = []
        for lb, seq_id in self._backend.knn_iter(q.values):
            if len(found) >= k and lb > found[k - 1].distance:
                break
            threshold = found[k - 1].distance if len(found) >= k else float("inf")
            stored = self._db.fetch(seq_id)
            distance = dtw_max_early_abandon(stored.values, q.values, threshold)
            if distance <= threshold:
                found.append(SearchOutcome(seq_id, distance, stored))
                found.sort(key=lambda m: (m.distance, m.seq_id))
                del found[k:]
        return found

    @staticmethod
    def _verify_distance(
        s_values: np.ndarray,
        q_values: np.ndarray,
        epsilon: float,
        band_radius: int | None,
    ) -> float:
        if band_radius is None:
            return dtw_max_early_abandon(s_values, q_values, epsilon)
        window = sakoe_chiba_window(len(s_values), len(q_values), band_radius)
        return dtw_max_matrix(s_values, q_values, window=window).distance
