"""Vectorized lower-bound filter cascade over a precomputed store.

The paper's pipeline is "cheap lower bound -> candidate set -> exact DTW
verify".  This module packages that pipeline as a *staged cascade* whose
cheap tiers run as whole-database NumPy matrix operations instead of
per-sequence Python loops:

1. ``lb_yi``  — Yi et al.'s bound, which under the Definition-2
   (``L_inf``) distance depends only on the Greatest/Smallest features:
   a 2-column comparison against the ``(n, 4)`` feature matrix.
2. ``lb_kim`` — the paper's ``D_tw-lb`` (LB_Kim): all four feature
   columns.  ``LB_Yi <= LB_Kim <= D_tw`` holds pointwise, which is why
   the looser, cheaper tier runs first — in the reverse order the Yi
   tier could never prune anything.
3. ``lb_keogh`` — the envelope bound, evaluated as one matrix operation
   per equal-length group of the store.  LB_Keogh bounds the
   *band-constrained* DTW, which only exceeds the unconstrained one, so
   this tier is sound (and therefore active) only for band-constrained
   searches; sequences whose length differs from the query's pass
   through unfiltered (the classical bound requires equal lengths).
4. ``dtw`` — early-abandoning exact verification of the survivors.

Every tier admits a superset of the exact answer set (no false
dismissal); tier comparisons are made inclusive by the same float-safety
margin the R-tree query rectangle uses (:func:`~repro.core.lower_bound.
filter_margin`), so the guarantee survives floating point at the
knife edge ``lb == eps``.

:class:`FeatureStore` holds the precomputed per-sequence state (feature
matrix, raw values, equal-length value matrices); :class:`FilterCascade`
runs queries through the tiers and reports per-stage pruning counters as
a :class:`CascadeStats`.  :meth:`FilterCascade.run_many` answers a batch
of queries at once, amortizing feature extraction and evaluating the
feature tiers as a single ``(queries x sequences)`` matrix comparison
per block.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence as TypingSequence

import numpy as np

from ..distance.bands import sakoe_chiba_window
from ..distance.dtw import (
    dtw_max_early_abandon,
    dtw_max_matrix,
    dtw_max_within,
)
from ..distance.lb_keogh import lb_keogh_batch, warping_envelope
from ..exceptions import ValidationError
from ..obs.metrics import active_registry, timed
from ..storage.database import SequenceDatabase
from ..types import Sequence, SequenceLike, as_array, as_sequence
from .features import extract_feature
from .lower_bound import filter_margin

__all__ = [
    "TIER_YI",
    "TIER_KIM",
    "TIER_KEOGH",
    "STAGE_DTW",
    "DEFAULT_TIERS",
    "StageStats",
    "charged_stage",
    "CascadeStats",
    "FeatureStore",
    "CascadeOutcome",
    "FilterCascade",
    "verify_stage",
    "scan_cascade",
]

#: Stage names, in cascade order (loosest/cheapest bound first).
TIER_YI = "lb_yi"
TIER_KIM = "lb_kim"
TIER_KEOGH = "lb_keogh"
STAGE_DTW = "dtw"

DEFAULT_TIERS: tuple[str, ...] = (TIER_YI, TIER_KIM, TIER_KEOGH)

#: Feature-matrix columns each feature tier compares (paper column
#: order: first, last, greatest, smallest).  Stored as index arrays so
#: the batched kernel can fancy-index without per-query conversion.
_TIER_COLUMNS: dict[str, np.ndarray] = {
    TIER_YI: np.array((2, 3), dtype=np.intp),
    TIER_KIM: np.array((0, 1, 2, 3), dtype=np.intp),
}

#: Cap on ``queries x sequences x 4`` float64 cells materialized per
#: block of the batched feature-tier kernel (~256 MB).
_BATCH_CELL_LIMIT = 8_000_000


@dataclass(frozen=True)
class StageStats:
    """Pruning record of one cascade stage.

    Attributes
    ----------
    name:
        Stage identifier (``lb_yi``, ``lb_kim``, ``lb_keogh``, ``dtw``,
        or a method-specific stage such as the R-tree range query).
    n_in:
        Sequences entering the stage.
    n_out:
        Sequences surviving it.
    """

    name: str
    n_in: int
    n_out: int

    @property
    def pruned(self) -> int:
        """Sequences the stage eliminated."""
        return self.n_in - self.n_out

    @property
    def survival_ratio(self) -> float:
        """``n_out / n_in`` (1.0 for an empty input)."""
        return self.n_out / self.n_in if self.n_in else 1.0


def charged_stage(name: str, n_in: int, n_out: int) -> StageStats:
    """Build a :class:`StageStats`, charging it to the ambient registry.

    Every pruning stage in the codebase — cascade tiers, backend range
    queries, method-specific filters, the DTW verify stage — constructs
    its record through this helper, so the registry counters
    ``cascade.<stage>.in`` / ``.out`` / ``.pruned`` and the legacy
    :class:`CascadeStats` view are two readings of the same charge.
    """
    registry = active_registry()
    if registry is not None:
        registry.count(f"cascade.{name}.in", n_in)
        registry.count(f"cascade.{name}.out", n_out)
        registry.count(f"cascade.{name}.pruned", n_in - n_out)
    return StageStats(name, n_in, n_out)


@dataclass
class CascadeStats:
    """Per-stage pruning counters of one (or many merged) searches."""

    stages: list[StageStats]

    @property
    def total_in(self) -> int:
        """Sequences entering the first stage."""
        return self.stages[0].n_in if self.stages else 0

    @property
    def final_out(self) -> int:
        """Sequences surviving the last stage."""
        return self.stages[-1].n_out if self.stages else 0

    def stage(self, name: str) -> StageStats:
        """The stage called *name*; raises ``KeyError`` when absent."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)  # repro-lint: disable=RL004 -- mapping protocol

    def survival_by_stage(self) -> dict[str, float]:
        """``{stage name: survival ratio}`` in cascade order."""
        return {s.name: s.survival_ratio for s in self.stages}

    def candidate_ratios(self, database_size: int) -> dict[str, float]:
        """Figure-2-style ratios: each stage's survivors over *database_size*."""
        if database_size <= 0:
            raise ValidationError(
                f"database_size must be positive, got {database_size}"
            )
        return {s.name: s.n_out / database_size for s in self.stages}

    @staticmethod
    def merge(many: Iterable["CascadeStats"]) -> "CascadeStats":
        """Sum several runs' counters stage-by-stage (aligned by name)."""
        order: list[str] = []
        totals: dict[str, list[int]] = {}
        for stats in many:
            for stage in stats.stages:
                if stage.name not in totals:
                    order.append(stage.name)
                    totals[stage.name] = [0, 0]
                totals[stage.name][0] += stage.n_in
                totals[stage.name][1] += stage.n_out
        return CascadeStats(
            [StageStats(name, *totals[name]) for name in order]
        )


class FeatureStore:
    """Precomputed per-sequence state the cascade's cheap tiers read.

    The store is *buffer-backed*: every per-sequence value lives in one
    of five packed arrays — ``ids``/``lengths`` (``(n,)`` int64), the
    ``(n, 4)`` float64 ``features`` matrix, the ``(n + 1,)`` int64
    ``offsets`` prefix-sum, and the concatenated float64 ``values_flat``
    element buffer.  ``sequences[row]`` is a zero-copy
    :class:`~repro.types.Sequence` view into
    ``values_flat[offsets[row]:offsets[row + 1]]``.  Because the whole
    store is five flat buffers, it can be re-hosted on any backing
    memory (notably a :mod:`multiprocessing.shared_memory` segment, via
    :meth:`packed` / :meth:`from_packed`) without touching the cascade
    kernels.  Per-length ``(k, L)`` value matrices for the envelope
    tier are still materialized lazily.
    """

    __slots__ = (
        "sequences",
        "ids",
        "features",
        "lengths",
        "offsets",
        "values_flat",
        "_row_of",
        "_groups",
        "_cache_lock",
    )

    #: The packed-array fields, in :meth:`packed` export order.
    PACKED_FIELDS = ("ids", "features", "lengths", "offsets", "values_flat")

    def __init__(self, sequences: Iterable[SequenceLike]) -> None:
        seqs: list[Sequence] = []
        for position, item in enumerate(sequences):
            seq = as_sequence(item)
            if len(seq) == 0:
                raise ValidationError("cannot index an empty sequence")
            if seq.seq_id is None:
                seq = as_sequence(seq.values, seq_id=position)
            seqs.append(seq)
        n = len(seqs)
        ids = np.fromiter(
            (seq.seq_id for seq in seqs), dtype=np.int64, count=n
        )
        features = np.empty((n, 4), dtype=np.float64)
        lengths = np.fromiter(
            (len(seq) for seq in seqs), dtype=np.int64, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values_flat = np.empty(int(offsets[-1]), dtype=np.float64)
        for row, seq in enumerate(seqs):
            features[row] = extract_feature(seq.values).as_tuple()
            values_flat[offsets[row] : offsets[row + 1]] = seq.values
        labels = [seq.label for seq in seqs]
        self._adopt(ids, features, lengths, offsets, values_flat, labels)

    def _adopt(
        self,
        ids: np.ndarray,
        features: np.ndarray,
        lengths: np.ndarray,
        offsets: np.ndarray,
        values_flat: np.ndarray,
        labels: list[str | None] | None = None,
    ) -> None:
        """Bind the packed arrays and rebuild the zero-copy sequence views."""
        values_flat.flags.writeable = False
        self.ids = ids
        self.features = features
        self.lengths = lengths
        self.offsets = offsets
        self.values_flat = values_flat
        self.sequences = [
            Sequence(
                values_flat[offsets[row] : offsets[row + 1]],
                seq_id=int(ids[row]),
                label=labels[row] if labels is not None else None,
            )
            for row in range(len(ids))
        ]
        self._row_of: dict[int, int] | None = None
        self._groups: dict[int, np.ndarray] | None = None
        # Shard thread pools share one store; the lazy row/group caches
        # build under this lock so concurrent queries never double-build.
        self._cache_lock = threading.Lock()

    def __getstate__(self) -> dict[str, object]:
        # Slots class: pickle everything except the lock, which is
        # per-process state and recreated on load.
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_cache_lock"
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._cache_lock = threading.Lock()

    def packed(self) -> dict[str, np.ndarray]:
        """The five packed arrays, keyed by :attr:`PACKED_FIELDS` name.

        The returned arrays *are* the store's buffers (no copy); callers
        exporting them into a shared segment copy out themselves.
        Sequence labels are not part of the packed form.
        """
        return {name: getattr(self, name) for name in self.PACKED_FIELDS}

    @classmethod
    def from_packed(
        cls,
        ids: np.ndarray,
        features: np.ndarray,
        lengths: np.ndarray,
        offsets: np.ndarray,
        values_flat: np.ndarray,
    ) -> "FeatureStore":
        """Re-host a store on existing packed arrays, zero-copy.

        The arrays are adopted as-is (they may be views into a
        :mod:`multiprocessing.shared_memory` buffer); no feature
        extraction or concatenation runs.
        """
        self = cls.__new__(cls)
        self._adopt(
            np.asarray(ids, dtype=np.int64),
            np.asarray(features, dtype=np.float64).reshape(len(ids), 4),
            np.asarray(lengths, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            np.asarray(values_flat, dtype=np.float64),
        )
        return self

    @classmethod
    def from_arrays(
        cls,
        ids: np.ndarray,
        lengths: np.ndarray,
        offsets: np.ndarray,
        values_flat: np.ndarray,
    ) -> "FeatureStore":
        """Build a store over an existing dense element buffer, zero-copy.

        The ``(n, 4)`` feature matrix is computed with vectorized
        reductions over *values_flat* (first/last by fancy-indexing the
        record boundaries, greatest/smallest with ``reduceat``) — bit
        identical to the per-sequence
        :func:`~repro.core.features.extract_feature` path because
        max/min are exact regardless of association order and stored
        values are validated finite on insert.  *values_flat* is adopted
        as-is; it may be a read-only ``numpy.memmap`` over a store's
        data file.
        """
        ids = np.asarray(ids, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        values_flat = np.asarray(values_flat, dtype=np.float64)
        n = len(ids)
        features = np.empty((n, 4), dtype=np.float64)
        if n:
            starts = offsets[:-1]
            features[:, 0] = values_flat[starts]
            features[:, 1] = values_flat[offsets[1:] - 1]
            features[:, 2] = np.maximum.reduceat(values_flat, starts)
            features[:, 3] = np.minimum.reduceat(values_flat, starts)
        self = cls.__new__(cls)
        self._adopt(ids, features, lengths, offsets, values_flat)
        return self

    @classmethod
    def from_database(cls, db: SequenceDatabase) -> "FeatureStore":
        """Build the store with one sequential scan of *db*.

        The scan charges the database's simulated I/O accounting once,
        like any other index build pass.  When the database's store can
        serve its element buffer dense (see
        :meth:`~repro.storage.database.SequenceDatabase.dense_arrays`),
        the store is built zero-copy over it instead of re-concatenating
        per-sequence copies — same charge, same arrays, no copies.
        """
        scan = db.scan()  # charges the sequential read up front
        dense = db.dense_arrays()
        if dense is not None:
            ids, lengths, offsets, values_flat = dense
            return cls.from_arrays(ids, lengths, offsets, values_flat)
        return cls(scan)

    @classmethod
    def from_contents(cls, db: SequenceDatabase) -> "FeatureStore":
        """Build the store from *db* without charging any I/O.

        The replication/publication counterpart of
        :meth:`from_database` (see
        :meth:`~repro.storage.database.SequenceDatabase.contents`):
        used when shipping a shard's contents to worker processes,
        where the simulated cost model must not see the read.
        """
        dense = db.dense_arrays()
        if dense is not None:
            ids, lengths, offsets, values_flat = dense
            return cls.from_arrays(ids, lengths, offsets, values_flat)
        return cls(db.contents())

    def __len__(self) -> int:
        return len(self.sequences)

    def matches(self, db: SequenceDatabase) -> bool:
        """True when the store still mirrors *db*'s contents.

        Ids are never reused and stored sequences are immutable, so id
        equality implies content equality.
        """
        ids = db.ids()
        return len(ids) == len(self.ids) and bool(
            np.array_equal(self.ids, np.asarray(ids, dtype=np.int64))
        )

    def rows_for(self, seq_ids: Iterable[int]) -> np.ndarray:
        """Store rows of the given sequence ids (unknown ids are skipped)."""
        row_of = self._row_of
        if row_of is None:
            with self._cache_lock:
                row_of = self._row_of
                if row_of is None:
                    row_of = {
                        int(sid): row for row, sid in enumerate(self.ids)
                    }
                    self._row_of = row_of
        rows = [row_of[sid] for sid in seq_ids if sid in row_of]
        return np.asarray(rows, dtype=np.int64)

    def groups_by_length(self) -> dict[int, np.ndarray]:
        """``{length: row indices}`` for every distinct sequence length."""
        result = self._groups
        if result is None:
            with self._cache_lock:
                result = self._groups
                if result is None:
                    groups: dict[int, list[int]] = {}
                    for row, length in enumerate(self.lengths):
                        groups.setdefault(int(length), []).append(row)
                    result = {
                        length: np.asarray(rows, dtype=np.int64)
                        for length, rows in groups.items()
                    }
                    self._groups = result
        return result

    def value_matrix(self, length: int) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, matrix)`` of all sequences with exactly *length* elements."""
        rows = self.groups_by_length().get(length)
        if rows is None or rows.size == 0:
            return np.empty(0, dtype=np.int64), np.empty((0, length))
        matrix = np.stack([self.sequences[int(r)].values for r in rows])
        return rows, matrix

    def values(self, row: int) -> np.ndarray:
        """Raw element array of the sequence at *row*."""
        return self.sequences[row].values


@dataclass
class CascadeOutcome:
    """Everything one cascade search produced.

    ``candidate_ids`` are the survivors of the last lower-bound tier
    (the Figure-2 candidate set); ``answer_ids`` the sequences whose
    exact distance verified within tolerance.  ``distances`` maps answer
    id to its distance — exact when the cascade ran with
    ``compute_distances=True``, else a decision-only placeholder.
    """

    answer_ids: list[int]
    distances: dict[int, float]
    candidate_ids: list[int]
    stats: CascadeStats


def verify_stage(
    candidates: TypingSequence[int],
    verifier: Callable[[int], float],
    epsilon: float,
) -> tuple[list[int], dict[int, float], StageStats]:
    """The cascade's final tier: exact verification of *candidates*.

    *verifier* maps a candidate (a store row or a sequence id, the
    caller's choice) to its verified distance — ``inf`` when it exceeds
    tolerance.  Shared by the scan methods, the index methods'
    post-processing, and the public facade so every path reports the
    same :class:`StageStats` shape.
    """
    answers: list[int] = []
    distances: dict[int, float] = {}
    with timed("dtw.verify.seconds"):
        for candidate in candidates:
            distance = verifier(candidate)
            if distance <= epsilon:
                answers.append(candidate)
                distances[candidate] = distance
    registry = active_registry()
    if registry is not None:
        registry.count("dtw.verifications", len(candidates))
    return answers, distances, charged_stage(
        STAGE_DTW, len(candidates), len(answers)
    )


class FilterCascade:
    """Staged lower-bound filtering + exact verification over a store.

    Parameters
    ----------
    store:
        The precomputed :class:`FeatureStore`.
    tiers:
        Which lower-bound tiers to run, in order.  Defaults to the full
        ``(lb_yi, lb_kim, lb_keogh)`` cascade; the envelope tier only
        activates when a search passes a band radius.
    """

    def __init__(
        self,
        store: FeatureStore,
        *,
        tiers: TypingSequence[str] = DEFAULT_TIERS,
    ) -> None:
        for tier in tiers:
            if tier not in (TIER_YI, TIER_KIM, TIER_KEOGH):
                raise ValidationError(f"unknown cascade tier {tier!r}")
        self._store = store
        self._tiers = tuple(tiers)

    @classmethod
    def from_database(
        cls, db: SequenceDatabase, **kwargs
    ) -> "FilterCascade":
        """Build store and cascade from *db* in one sequential scan."""
        return cls(FeatureStore.from_database(db), **kwargs)

    @property
    def store(self) -> FeatureStore:
        """The precomputed feature/value store."""
        return self._store

    @property
    def tiers(self) -> tuple[str, ...]:
        """The configured lower-bound tiers, in cascade order."""
        return self._tiers

    # -- feature tiers (vectorized) ------------------------------------------

    def filter(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        rows: np.ndarray | None = None,
        band_radius: int | None = None,
    ) -> tuple[np.ndarray, list[StageStats]]:
        """Run the lower-bound tiers; return surviving rows and stage stats.

        *rows* restricts filtering to a subset of store rows (e.g. the
        R-tree candidates); by default the whole store enters the first
        tier.  Survivors are a superset of every sequence within
        tolerance — the no-false-dismissal guarantee, tier by tier.
        """
        query_arr = as_array(query, allow_empty=False)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        if rows is None:
            rows = np.arange(len(self._store), dtype=np.int64)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        query_feature = np.asarray(
            extract_feature(query_arr).as_tuple(), dtype=np.float64
        )
        cutoffs = epsilon + filter_margin(query_feature, epsilon)
        stages: list[StageStats] = []
        for tier in self._tiers:
            n_in = int(rows.size)
            with timed(f"cascade.{tier}.seconds"):
                if tier in _TIER_COLUMNS:
                    cols = list(_TIER_COLUMNS[tier])
                    diffs = np.abs(
                        self._store.features[np.ix_(rows, cols)]
                        - query_feature[cols]
                    )
                    keep = (diffs <= cutoffs[cols]).all(axis=1)
                    rows = rows[keep]
                elif band_radius is not None:
                    rows = self._keogh_tier(
                        rows, query_arr, epsilon, band_radius
                    )
            stages.append(charged_stage(tier, n_in, int(rows.size)))
        return rows, stages

    def _keogh_tier(
        self,
        rows: np.ndarray,
        query_arr: np.ndarray,
        epsilon: float,
        band_radius: int,
    ) -> np.ndarray:
        """Envelope tier: prune equal-length rows whose LB_Keogh exceeds eps.

        Rows of any other length pass through — the classical bound is
        only defined for equal lengths, and an unfiltered pass-through
        can never cause a false dismissal.
        """
        if rows.size == 0:
            return rows
        length = int(query_arr.size)
        same_length = self._store.lengths[rows] == length
        group = rows[same_length]
        if group.size == 0:
            return rows
        upper, lower = warping_envelope(query_arr, band_radius)
        matrix = np.stack([self._store.values(int(r)) for r in group])
        bounds = lb_keogh_batch(matrix, upper, lower)
        scale = float(np.abs(query_arr).max())
        keep_group = group[bounds <= epsilon + filter_margin(scale, epsilon)]
        keep = np.concatenate([rows[~same_length], keep_group])
        keep.sort()
        return keep

    # -- verification --------------------------------------------------------

    def _row_verifier(
        self,
        query_arr: np.ndarray,
        epsilon: float,
        band_radius: int | None,
        compute_distances: bool,
    ) -> Callable[[int], float]:
        """Default verifier: exact DTW on store values, early-abandoning."""

        def verify(row: int) -> float:
            values = self._store.values(int(row))
            if band_radius is not None:
                window = sakoe_chiba_window(
                    values.size, query_arr.size, band_radius
                )
                distance = dtw_max_matrix(
                    values, query_arr, window=window
                ).distance
                return distance if distance <= epsilon else float("inf")
            if compute_distances:
                return dtw_max_early_abandon(values, query_arr, epsilon)
            if dtw_max_within(values, query_arr, epsilon):
                return epsilon
            return float("inf")

        return verify

    # -- single query --------------------------------------------------------

    def run(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        rows: np.ndarray | None = None,
        band_radius: int | None = None,
        compute_distances: bool = True,
        verifier: Callable[[int], float] | None = None,
    ) -> CascadeOutcome:
        """Filter then verify one query; returns ids, distances and stats.

        A custom *verifier* (store row -> distance or ``inf``) lets a
        caller charge its own I/O and cost accounting per verification;
        the default verifies against the in-store values.
        """
        query_arr = as_array(query, allow_empty=False)
        surviving, stages = self.filter(
            query_arr, epsilon, rows=rows, band_radius=band_radius
        )
        return self._verified_outcome(
            surviving,
            stages,
            query_arr,
            epsilon,
            band_radius,
            compute_distances,
            verifier,
        )

    def _verified_outcome(
        self,
        surviving: np.ndarray,
        stages: list[StageStats],
        query_arr: np.ndarray,
        epsilon: float,
        band_radius: int | None,
        compute_distances: bool,
        verifier: Callable[[int], float] | None = None,
    ) -> CascadeOutcome:
        """Verify the filtered *surviving* rows and assemble the outcome."""
        if verifier is None:
            verifier = self._row_verifier(
                query_arr, epsilon, band_radius, compute_distances
            )
        answer_rows, row_distances, dtw_stage = verify_stage(
            [int(r) for r in surviving], verifier, epsilon
        )
        stages.append(dtw_stage)
        ids = self._store.ids
        return CascadeOutcome(
            answer_ids=sorted(int(ids[r]) for r in answer_rows),
            distances={int(ids[r]): d for r, d in row_distances.items()},
            candidate_ids=sorted(int(ids[r]) for r in surviving),
            stats=CascadeStats(stages),
        )

    # -- batched queries ------------------------------------------------------

    def run_many(
        self,
        queries: TypingSequence[SequenceLike],
        epsilon: float,
        *,
        band_radius: int | None = None,
        compute_distances: bool = True,
    ) -> list[CascadeOutcome]:
        """Answer a batch of queries, amortizing the cheap tiers.

        Query features are extracted once into an ``(m, 4)`` matrix and
        the feature tiers evaluate as a single broadcast comparison per
        query block — one ``(block x n x 4)`` kernel instead of ``m``
        per-query passes.  Results are identical to calling :meth:`run`
        per query (the exact verification stage is shared).
        """
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        query_arrs = [as_array(q, allow_empty=False) for q in queries]
        if not query_arrs:
            return []
        n = len(self._store)
        if n == 0:
            return [
                CascadeOutcome(
                    [],
                    {},
                    [],
                    CascadeStats(
                        [charged_stage(t, 0, 0) for t in self._tiers]
                        + [charged_stage(STAGE_DTW, 0, 0)]
                    ),
                )
                for _ in query_arrs
            ]
        m = len(query_arrs)
        query_features = np.empty((m, 4), dtype=np.float64)
        for i, arr in enumerate(query_arrs):
            query_features[i] = extract_feature(arr).as_tuple()
        cutoffs = epsilon + filter_margin(query_features, epsilon)

        outcomes: list[CascadeOutcome] = []
        block = max(1, _BATCH_CELL_LIMIT // (4 * n))
        # One survivor mask reused (reset in place) across the batch so
        # the per-query loop never touches the allocator.
        mask = np.empty(n, dtype=bool)
        for start in range(0, m, block):
            stop = min(start + block, m)
            # One broadcast kernel for the whole block: (b, n, 4) diffs.
            diffs = np.abs(
                query_features[start:stop, None, :] - self._store.features[None, :, :]
            )
            admitted = diffs <= cutoffs[start:stop, None, :]
            for i in range(start, stop):
                stages: list[StageStats] = []
                mask[:] = True
                for tier in self._tiers:
                    n_in = int(mask.sum())
                    with timed(f"cascade.{tier}.seconds"):
                        if tier in _TIER_COLUMNS:
                            cols = _TIER_COLUMNS[tier]
                            mask &= admitted[i - start][:, cols].all(axis=1)
                            n_out = int(mask.sum())
                        elif band_radius is not None:
                            rows = self._keogh_tier(
                                np.flatnonzero(mask),
                                query_arrs[i],
                                epsilon,
                                band_radius,
                            )
                            mask[:] = False
                            mask[rows] = True
                            n_out = int(rows.size)
                        else:
                            n_out = n_in
                    stages.append(charged_stage(tier, n_in, n_out))
                outcomes.append(
                    self._verified_outcome(
                        np.flatnonzero(mask),
                        stages,
                        query_arrs[i],
                        epsilon,
                        band_radius,
                        compute_distances,
                    )
                )
        return outcomes


def scan_cascade(
    db,
    cached: "FilterCascade | None",
    *,
    tiers: TypingSequence[str] = DEFAULT_TIERS,
) -> "FilterCascade":
    """Charge one sequential scan of *db*; return a cascade mirroring it.

    The scan's I/O is charged whether or not its pages feed the store:
    ids are never reused and stored sequences are immutable, so a
    *cached* cascade whose store still matches the database is reused
    and a fresh store is only materialized when the id set changed.
    Shared by every scan-based search method.
    """
    scan = db.scan()  # charges the sequential read up front
    if cached is not None and cached.store.matches(db):
        return cached
    dense = db.dense_arrays() if hasattr(db, "dense_arrays") else None
    if dense is not None:
        ids, lengths, offsets, values_flat = dense
        store = FeatureStore.from_arrays(ids, lengths, offsets, values_flat)
        return FilterCascade(store, tiers=tuple(tiers))
    return FilterCascade(FeatureStore(scan), tiers=tuple(tiers))
