"""The paper's primary contribution.

* :mod:`repro.core.features` — the 4-tuple time-warping-invariant
  feature vector ``Feature(S) = (First, Last, Greatest, Smallest)``.
* :mod:`repro.core.lower_bound` — ``D_tw-lb`` (Definition 3), the
  metric lower bound of the Definition-2 time-warping distance; known
  in the literature as **LB_Kim**.
* :mod:`repro.core.engine` — :class:`TimeWarpingDatabase`, the public
  facade combining storage, the 4-d R-tree feature index, and the
  TW-Sim-Search query algorithm (Algorithm 1).
* :mod:`repro.core.cascade` — the vectorized lower-bound filter
  cascade (LB_Yi -> LB_Kim -> LB_Keogh -> exact DTW) with per-stage
  pruning counters.
* :mod:`repro.core.subsequence` — the section-6 extension to
  subsequence matching via a sliding-window feature index.
"""

from .cascade import (
    CascadeOutcome,
    CascadeStats,
    FeatureStore,
    FilterCascade,
    StageStats,
)
from .engine import SearchOutcome, TimeWarpingDatabase
from .features import FeatureVector, extract_feature, feature_array
from .lower_bound import dtw_lb, dtw_lb_features, feature_rect
from .query_engine import QueryEngine, charged_candidates
from .sharding import ShardedDatabase
from .streaming import StreamMonitor
from .subsequence import SubsequenceIndex, SubsequenceMatch

__all__ = [
    "SearchOutcome",
    "TimeWarpingDatabase",
    "QueryEngine",
    "ShardedDatabase",
    "charged_candidates",
    "CascadeOutcome",
    "CascadeStats",
    "FeatureStore",
    "FilterCascade",
    "StageStats",
    "FeatureVector",
    "extract_feature",
    "feature_array",
    "dtw_lb",
    "dtw_lb_features",
    "feature_rect",
    "StreamMonitor",
    "SubsequenceIndex",
    "SubsequenceMatch",
]
