"""Online whole-match monitoring of a growing stream (extension).

The paper's footnote 1 motivates time warping with streams sampled at
different rates.  :class:`StreamMonitor` watches a *live* stream: fed
one element at a time, it maintains the Definition-2 feasibility column
of the stream-so-far against a fixed query and tolerance, answering
after every element

* :attr:`matches_now` — does the stream *prefix* currently satisfy
  ``D_tw(prefix, Q) <= eps``?
* :attr:`can_still_match` — could any *future extension* of the stream
  still match?  (Once the feasibility frontier dies it can never
  revive, so a monitor can be retired early — the streaming analogue of
  early abandoning.)

Each element costs one ``O(|Q|)`` vectorized column update, the same
sweep the suffix-tree traversal and the reachability test use.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..obs.metrics import count as _charge
from ..types import SequenceLike, as_array

__all__ = ["StreamMonitor"]


class StreamMonitor:
    """Incremental Definition-2 matcher for one query and tolerance.

    Parameters
    ----------
    query:
        The fixed pattern ``Q`` (non-empty).
    epsilon:
        The tolerance.
    """

    def __init__(self, query: SequenceLike, epsilon: float) -> None:
        q = as_array(query, allow_empty=False)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        self._query = q
        self._epsilon = float(epsilon)
        self._m = q.size
        self._idx = np.arange(self._m)
        # col[j] == True  <=>  some warping of the stream-so-far against
        # Q[:j] keeps every element cost within epsilon.
        self._col = np.zeros(self._m + 1, dtype=bool)
        self._col[0] = True  # empty stream matches the empty prefix
        self._count = 0

    # -- state ------------------------------------------------------------

    @property
    def query_length(self) -> int:
        """``|Q|``."""
        return self._m

    @property
    def epsilon(self) -> float:
        """The tolerance."""
        return self._epsilon

    @property
    def elements_seen(self) -> int:
        """Stream elements consumed so far."""
        return self._count

    @property
    def matches_now(self) -> bool:
        """``D_tw(stream-so-far, Q) <= eps`` after the last element."""
        return bool(self._col[self._m]) and self._count > 0

    @property
    def can_still_match(self) -> bool:
        """False once no extension of the stream can ever match."""
        return bool(self._col.any())

    # -- feeding ---------------------------------------------------------------

    def push(self, value: float) -> bool:
        """Consume one stream element; returns :attr:`matches_now`."""
        value = float(value)
        if not np.isfinite(value):
            raise ValidationError(f"stream elements must be finite, got {value}")
        self._count += 1
        _charge("stream.pushes")
        if not self._col.any():
            return False  # already dead; stay dead cheaply
        ok_row = np.abs(self._query - value) <= self._epsilon
        col = self._col
        seed = ok_row & (col[1:] | col[:-1])
        new = np.zeros(self._m + 1, dtype=bool)
        if seed.any():
            last_block = np.maximum.accumulate(
                np.where(~ok_row, self._idx, -1)
            )
            last_seed = np.maximum.accumulate(np.where(seed, self._idx, -1))
            new[1:] = ok_row & (last_seed > last_block)
        self._col = new
        if not new.any():
            _charge("stream.frontier_deaths")
        if self.matches_now:
            _charge("stream.matches")
        return self.matches_now

    def extend(self, values: SequenceLike) -> bool:
        """Consume several elements; returns :attr:`matches_now`."""
        for value in as_array(values):
            self.push(float(value))
        return self.matches_now

    def reset(self) -> None:
        """Forget the stream and start over."""
        self._col = np.zeros(self._m + 1, dtype=bool)
        self._col[0] = True
        self._count = 0
