"""Subsequence matching under time warping (paper section 6).

The paper's closing remark: *"Our method is easily applicable to
subsequence matching … It builds the same index on the feature vectors
from subsequences rather than whole sequences."*  This module realizes
that extension: every sliding window of each configured length is
treated as a (sub)sequence, its 4-tuple feature vector is indexed in
the same 4-d R-tree, and a query range-searches exactly as in
Algorithm 1.  Candidate windows are verified with the true ``D_tw``.

Completeness is *relative to the indexed window set*: every indexed
window whose distance is within tolerance is guaranteed to be found (no
false dismissal, by Theorem 1 applied to the window).  Window lengths
default to a small geometric family around the expected query length;
indexing all ``O(n^2)`` windows is possible but rarely useful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as TypingSequence

import numpy as np

from ..distance.dtw import dtw_max, dtw_max_early_abandon
from ..exceptions import ValidationError
from ..index.rtree.bulk import STRBulkLoader
from ..index.rtree.rtree import RTree
from ..obs.metrics import count as _charge
from ..types import Sequence, SequenceLike, as_sequence
from .features import extract_feature
from .lower_bound import feature_rect

__all__ = ["SubsequenceIndex", "SubsequenceMatch"]


@dataclass(frozen=True)
class SubsequenceMatch:
    """One matching window of a stored sequence.

    Attributes
    ----------
    seq_id:
        Identifier of the containing sequence.
    start:
        Window start offset within the sequence.
    length:
        Window length in elements.
    distance:
        True time-warping distance of the window to the query.
    """

    seq_id: int
    start: int
    length: int
    distance: float


class SubsequenceIndex:
    """A windowed feature index for subsequence matching.

    Parameters
    ----------
    window_lengths:
        The window sizes to index.  A query may match windows of any
        indexed size (time warping absorbs the length difference).
    stride:
        Offset step between consecutive windows of the same length
        (1 = every position; larger strides trade completeness for
        index size and are reported via :attr:`stride`).
    page_size:
        R-tree page size in bytes.
    """

    def __init__(
        self,
        window_lengths: TypingSequence[int],
        *,
        stride: int = 1,
        page_size: int = 1024,
    ) -> None:
        lengths = sorted(set(int(w) for w in window_lengths))
        if not lengths:
            raise ValidationError("at least one window length is required")
        if lengths[0] < 1:
            raise ValidationError(f"window lengths must be >= 1, got {lengths[0]}")
        if stride < 1:
            raise ValidationError(f"stride must be >= 1, got {stride}")
        self._lengths = lengths
        self._stride = stride
        self._page_size = page_size
        self._tree: RTree | None = None
        self._loader = STRBulkLoader(4, page_size=page_size)
        # Window registry: record id -> (seq_id, start, length).
        self._windows: list[tuple[int, int, int]] = []
        self._values: dict[int, np.ndarray] = {}

    # -- population -------------------------------------------------------------

    @property
    def window_lengths(self) -> list[int]:
        """The indexed window sizes."""
        return list(self._lengths)

    @property
    def stride(self) -> int:
        """Step between indexed window offsets."""
        return self._stride

    @property
    def window_count(self) -> int:
        """Number of indexed windows."""
        return len(self._windows)

    def add(self, sequence: SequenceLike, *, seq_id: int | None = None) -> int:
        """Register a sequence's windows; returns the id used.

        Must be called before :meth:`build`.
        """
        if self._tree is not None:
            raise ValidationError("index already built; create a new one to add")
        seq = as_sequence(sequence)
        if len(seq) == 0:
            raise ValidationError("cannot index an empty sequence")
        if seq_id is None:
            seq_id = seq.seq_id if seq.seq_id is not None else len(self._values)
        if seq_id in self._values:
            raise ValidationError(f"sequence id {seq_id} already added")
        values = np.asarray(seq.values)
        self._values[seq_id] = values
        n = values.size
        for length in self._lengths:
            if length > n:
                continue
            for start in range(0, n - length + 1, self._stride):
                window = values[start : start + length]
                record = len(self._windows)
                self._windows.append((seq_id, start, length))
                self._loader.add(
                    extract_feature(window).as_tuple(), record
                )
        return seq_id

    def add_many(self, sequences: Iterable[SequenceLike]) -> list[int]:
        """Register several sequences; returns their ids."""
        return [self.add(seq) for seq in sequences]

    def build(self) -> "SubsequenceIndex":
        """STR-pack the window features; returns ``self``."""
        if self._tree is not None:
            raise ValidationError("index already built")
        if not self._windows:
            raise ValidationError("no windows to index; add sequences first")
        self._tree = self._loader.build()
        return self

    # -- querying ------------------------------------------------------------------

    def search(
        self, query: SequenceLike, epsilon: float
    ) -> list[SubsequenceMatch]:
        """All indexed windows with ``D_tw(window, Q) <= epsilon``.

        Sorted by ascending distance, then position.  Overlapping
        matches are all reported; callers wanting maximal or disjoint
        matches can post-process.
        """
        if self._tree is None:
            raise ValidationError("index must be built before searching")
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        rect = feature_rect(extract_feature(q.values), epsilon)
        matches: list[SubsequenceMatch] = []
        _charge("subseq.queries")
        for record in self._tree.range_search(rect):
            _charge("subseq.candidates")
            seq_id, start, length = self._windows[record]
            window = self._values[seq_id][start : start + length]
            distance = dtw_max_early_abandon(window, q.values, epsilon)
            if distance <= epsilon:
                matches.append(SubsequenceMatch(seq_id, start, length, distance))
        matches.sort(key=lambda m: (m.distance, m.seq_id, m.start, m.length))
        _charge("subseq.matches", len(matches))
        return matches

    def best_match(self, query: SequenceLike) -> SubsequenceMatch | None:
        """The single nearest indexed window, or ``None`` if empty.

        Best-first search over the feature index using ``D_tw-lb`` as
        priority, refining with the true distance.
        """
        if self._tree is None:
            raise ValidationError("index must be built before searching")
        q = as_sequence(query)
        if len(q) == 0:
            raise ValidationError("query sequence must be non-empty")
        point = extract_feature(q.values).as_tuple()
        best: SubsequenceMatch | None = None
        _charge("subseq.knn_queries")
        for lb, record in self._tree.knn(point, len(self._windows)):
            if best is not None and lb > best.distance:
                break
            _charge("subseq.knn_examined")
            seq_id, start, length = self._windows[record]
            window = self._values[seq_id][start : start + length]
            distance = dtw_max(window, q.values)
            candidate = SubsequenceMatch(seq_id, start, length, distance)
            if best is None or (candidate.distance, candidate.seq_id) < (
                best.distance,
                best.seq_id,
            ):
                best = candidate
        return best
