"""``D_tw-lb`` — the paper's lower-bound distance (Definition 3, "LB_Kim").

``D_tw-lb(S, Q) = L_inf(Feature(S), Feature(Q))`` — the largest absolute
difference between corresponding components of the two 4-tuple feature
vectors.

Two properties make it the paper's linchpin (Theorems 1 and 2):

* **Lower bound**: ``D_tw-lb(S, Q) <= D_tw(S, Q)`` for the Definition-2
  (max-recurrence) time-warping distance, so filtering with it incurs no
  false dismissal (Corollary 1).
* **Metric**: ``L_inf`` over fixed-dimension vectors satisfies the
  triangular inequality, so spatial indexes built on the feature space
  are sound.

The module also provides the vectorized batch form used by the scan
baselines and the query-rectangle helper used by the R-tree range query
(Algorithm 1, Step 2): a point query with radius ``eps`` under ``L_inf``
is exactly a 4-d axis-aligned square range.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..types import SequenceLike
from .features import FeatureVector, extract_feature

__all__ = [
    "dtw_lb",
    "dtw_lb_features",
    "dtw_lb_batch",
    "dtw_lb_pairwise",
    "feature_rect",
    "filter_margin",
]


def filter_margin(component, epsilon: float):
    """Float-safety margin for an inclusive lower-bound comparison.

    A filter that keeps ``S`` when ``lb(S, Q) <= eps`` must err on the
    inclusive side: ``lb`` and the exact distance it bounds are computed
    by different float expressions, and at the knife edge the bound can
    round a few ulps above the distance.  The margin scales with the
    operand magnitudes (a few units in the last place of ``|c| + eps``)
    so it can only admit extra candidates, which verification discards.
    Accepts a scalar component or an array of components.
    """
    return (np.abs(component) + epsilon) * 2.0**-50


def dtw_lb_features(fs: FeatureVector, fq: FeatureVector) -> float:
    """``D_tw-lb`` between two already-extracted feature vectors."""
    return max(
        abs(fs.first - fq.first),
        abs(fs.last - fq.last),
        abs(fs.greatest - fq.greatest),
        abs(fs.smallest - fq.smallest),
    )


def dtw_lb(s: SequenceLike, q: SequenceLike) -> float:
    """``D_tw-lb(S, Q)`` between two raw sequences (Definition 3).

    Extracts both 4-tuple feature vectors (``O(|S| + |Q|)``) and takes
    the ``L_inf`` distance between them.
    """
    return dtw_lb_features(extract_feature(s), extract_feature(q))


def dtw_lb_batch(features: np.ndarray, query: FeatureVector) -> np.ndarray:
    """``D_tw-lb`` from one query to many stored feature vectors at once.

    *features* is an ``(n, 4)`` array in paper column order (as produced
    by :func:`repro.core.features.feature_array`); the result is a
    length-``n`` array of distances.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[1] != 4:
        raise ValidationError(
            f"features must have shape (n, 4), got {features.shape}"
        )
    return np.abs(features - query.as_array()).max(axis=1)


def dtw_lb_pairwise(
    features_a: np.ndarray, features_b: np.ndarray
) -> np.ndarray:
    """``D_tw-lb`` between every pair of two feature-vector sets.

    *features_a* is ``(m, 4)`` (e.g. a batch of query features) and
    *features_b* is ``(n, 4)`` (the stored feature matrix); the result
    is the ``(m, n)`` matrix of lower-bound distances — the kernel the
    batched filter cascade evaluates in one shot per query block.
    """
    a = np.asarray(features_a, dtype=np.float64)
    b = np.asarray(features_b, dtype=np.float64)
    for name, arr in (("features_a", a), ("features_b", b)):
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValidationError(
                f"{name} must have shape (*, 4), got {arr.shape}"
            )
    return np.abs(a[:, None, :] - b[None, :, :]).max(axis=2)


def feature_rect(
    query: FeatureVector, epsilon: float
) -> tuple[tuple[float, float], ...]:
    """The 4-d square query range of Algorithm 1, Step 2.

    Returns per-dimension ``(low, high)`` intervals
    ``[component - eps, component + eps]`` in paper order.  A feature
    point falls inside this rectangle iff its ``D_tw-lb`` to the query
    is at most *epsilon*, so the R-tree range query returns exactly the
    lower-bound candidate set.

    Each bound carries a small safety margin: ``|x - c|`` (how
    distances are computed) and ``c - eps`` (how the rectangle is
    computed) round differently at the exact-``eps`` knife edge — e.g.
    ``|x - c|`` can round to exactly ``eps`` while ``x`` lies below the
    float ``c - eps`` — and a filter must err on the inclusive side to
    preserve the no-false-dismissal guarantee under floating point.
    The margin scales with the operand magnitudes (a few units in the
    last place of ``|c| + eps``); it can only admit extra candidates,
    which verification discards.
    """
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")

    def bounds(c: float) -> tuple[float, float]:
        margin = filter_margin(c, epsilon)
        return (c - epsilon - margin, c + epsilon + margin)

    return tuple(bounds(c) for c in query)
