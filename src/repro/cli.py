"""Command-line interface for the repro library.

Subcommands::

    repro generate    synthesize a dataset (random walks or stock-like) to CSV
    repro build       load a CSV dataset into a persistent database file
    repro info        describe a database file
    repro query       similarity / kNN search against a database file
    repro compare     run all search methods on a workload and tabulate costs
    repro experiment  regenerate a paper figure or ablation (e1..e4, a1..a5)
    repro report      run the whole experiment battery, emit markdown
    repro cluster     group a dataset's sequences by warping similarity
    repro explain     show the optimal warping between a query and a sequence
    repro bench       run named benchmarks, track BENCH_*.json, gate regressions
    repro lint        run the domain-aware static analyzer over the tree
    repro profile     trace a query workload, render flamegraphs/timelines

Every subcommand is importable and testable through :func:`main`, which
accepts an argv list and returns a process exit code.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Sequence as TypingSequence

import numpy as np

from . import __version__
from .data.queries import QueryWorkload
from .data.stocks import load_stock_csv, synthetic_sp500
from .data.synthetic import random_walk_dataset
from .core.engine import TimeWarpingDatabase
from .eval import experiments as exp
from .eval.harness import WorkloadRunner
from .eval.reporting import format_table
from .exceptions import ReproError, ValidationError
from .exec import available_executors
from .storage.store import available_stores
from .index.backend import EXACT_BACKEND_NAMES
from .obs.export import (
    render_flamegraph_svg,
    render_metrics_table,
    render_pruning_waterfall,
    render_span_timeline,
    render_span_tree,
    snapshot_to_json,
    spans_to_folded,
    spans_to_json,
)
from .obs.metrics import MetricsRegistry, use_registry
from .obs.querylog import QueryLogWriter, load_querylog, use_querylog
from .obs.tracing import Tracer, active_tracer, use_tracer
from .methods import (
    CascadeScan,
    EngineMethod,
    FastMapMethod,
    LBScan,
    NaiveScan,
    STFilter,
    TWSimSearch,
)
from .storage.database import SequenceDatabase
from .types import Sequence

__all__ = ["main", "build_parser"]

_EXPERIMENTS: dict[str, Callable[[], exp.ExperimentResult]] = {
    "e1": exp.experiment1_candidate_ratio,
    "e2": exp.experiment2_elapsed_stock,
    "e3": exp.experiment3_scale_count,
    "e4": exp.experiment4_scale_length,
    "a1": exp.ablation_base_distance,
    "a2": exp.ablation_features,
    "a3": exp.ablation_bulk_load,
    "a5": exp.ablation_lower_bounds,
    "c1": exp.experiment_cascade_stages,
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index-based similarity search under time warping "
        "(Kim/Park/Chu, ICDE 2001).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect observability counters and print them after the command",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics snapshot as JSON to PATH (implies --metrics "
        "collection, suppresses the table unless --metrics is also given)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record trace spans and print the span tree after the command",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write recorded spans as JSON to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a dataset to CSV")
    gen.add_argument("--kind", choices=["walk", "stocks"], default="walk")
    gen.add_argument("--n", type=int, default=100, help="number of sequences")
    gen.add_argument("--length", type=int, default=100, help="average length")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--jitter", type=float, default=0.0, help="length jitter (walks only)"
    )
    gen.add_argument("--out", required=True, help="output CSV path")

    build = sub.add_parser("build", help="load a CSV into a database file")
    build.add_argument("--input", required=True, help="CSV dataset")
    build.add_argument("--out", required=True, help="database file path")
    build.add_argument("--page-size", type=int, default=1024)
    build.add_argument(
        "--store",
        choices=sorted(available_stores()),
        default=None,
        help="sequence store layout (default: REPRO_STORE or 'heap'); "
        "'mmap' writes a memory-mapped columnar data file read back "
        "zero-copy; answers and counters are identical for every choice",
    )

    info = sub.add_parser("info", help="describe a database file")
    info.add_argument("--db", required=True)

    query = sub.add_parser("query", help="search a database file")
    query.add_argument("--db", required=True)
    query.add_argument(
        "--query",
        required=True,
        help="comma-separated elements, or @FILE with one element per line",
    )
    query.add_argument(
        "--backend",
        choices=sorted(EXACT_BACKEND_NAMES),
        default="rtree",
        help="index backend used to answer the query",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the database across N shards queried in parallel",
    )
    query.add_argument(
        "--executor",
        choices=sorted(available_executors()),
        default=None,
        help="shard execution plane (default: REPRO_EXECUTOR or 'thread'); "
        "answers are identical for every choice",
    )
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--epsilon", type=float, help="tolerance search")
    group.add_argument("--knn", type=int, help="k-nearest-neighbour search")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print this query's pruning waterfall (per-tier candidates, "
        "node reads, DTW cells, early-abandon depth) and a span timeline; "
        "needs --epsilon",
    )
    query.add_argument(
        "--querylog",
        metavar="PATH",
        help="append this query's structured JSONL record to PATH",
    )
    query.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --querylog, only write the record when the query "
        "took at least MS milliseconds (slow-query log)",
    )

    compare = sub.add_parser(
        "compare", help="run all methods on a workload and tabulate costs"
    )
    compare.add_argument("--input", help="CSV dataset (default: synthetic stocks)")
    compare.add_argument("--epsilon", type=float, default=1.0)
    compare.add_argument("--queries", type=int, default=5)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--fastmap", action="store_true", help="include the FastMap baseline"
    )
    compare.add_argument(
        "--cascade",
        action="store_true",
        help="include Cascade-Scan and print per-stage survival ratios",
    )
    compare.add_argument(
        "--backend",
        action="append",
        choices=sorted(EXACT_BACKEND_NAMES),
        default=None,
        metavar="NAME",
        help="also run the query engine with this index backend "
        "(repeatable; combine with --shards)",
    )
    compare.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count for the --backend engine rows",
    )
    compare.add_argument(
        "--executor",
        choices=sorted(available_executors()),
        default=None,
        help="shard execution plane for the --backend engine rows",
    )
    compare.add_argument(
        "--store",
        choices=sorted(available_stores()),
        default=None,
        help="sequence store holding the workload's database "
        "(default: REPRO_STORE or 'heap')",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure or ablation"
    )
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS))

    report = sub.add_parser(
        "report", help="run the whole experiment battery, emit markdown"
    )
    report.add_argument("--out", help="write to this file instead of stdout")
    report.add_argument(
        "--skip-stock", action="store_true", help="omit Figures 2-3"
    )
    report.add_argument(
        "--skip-scale", action="store_true", help="omit Figures 4-5"
    )
    report.add_argument(
        "--skip-ablations", action="store_true", help="omit ablations"
    )

    cluster = sub.add_parser(
        "cluster", help="group a dataset's sequences by warping similarity"
    )
    cluster.add_argument("--input", help="CSV dataset (default: synthetic stocks)")
    cluster_eps = cluster.add_mutually_exclusive_group(required=True)
    cluster_eps.add_argument("--epsilon", type=float, help="fixed tolerance")
    cluster_eps.add_argument(
        "--selectivity",
        type=float,
        help="calibrate the tolerance to this pair selectivity (e.g. 0.01)",
    )
    cluster.add_argument("--seed", type=int, default=0)

    explain = sub.add_parser(
        "explain", help="show the optimal warping between a query and a sequence"
    )
    explain.add_argument("--db", required=True)
    explain.add_argument("--seq", type=int, required=True, help="sequence id")
    explain.add_argument(
        "--query",
        required=True,
        help="comma-separated elements, or @FILE with one element per line",
    )

    bench = sub.add_parser(
        "bench",
        help="run named benchmarks, write BENCH_*.json, gate regressions",
    )
    bench.add_argument(
        "--list", action="store_true", help="list registered benchmark specs"
    )
    bench.add_argument(
        "--run",
        action="append",
        metavar="NAME",
        help="run this spec (repeatable; 'all' runs every spec)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="use each spec's CI-sized smoke workload",
    )
    bench.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_*.json trajectory files (default: .)",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="compare results against the committed baselines; with --run "
        "compares the results just produced, otherwise the BENCH_*.json "
        "files found in --out",
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="bless the produced/loaded results as the new baselines",
    )
    bench.add_argument(
        "--baseline-dir",
        default=None,
        metavar="DIR",
        help="baseline store (default: benchmarks/_baselines)",
    )
    bench.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative wall-time drift tolerated before warning "
        "(default: 0.35)",
    )
    bench.add_argument(
        "--strict-wall",
        action="store_true",
        help="treat wall-time drift beyond the band as failure, not warning",
    )

    profile = sub.add_parser(
        "profile",
        help="run a traced query workload; emit flamegraphs, timelines "
        "and a structured query log",
    )
    profile.add_argument("--db", help="database file to query")
    profile.add_argument(
        "--queries", type=int, default=5, help="number of workload queries"
    )
    profile.add_argument("--epsilon", type=float, default=1.0)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--backend",
        choices=sorted(EXACT_BACKEND_NAMES),
        default="rtree",
    )
    profile.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the database across N shards",
    )
    profile.add_argument(
        "--executor",
        choices=sorted(available_executors()),
        default=None,
        help="shard execution plane (default: REPRO_EXECUTOR or 'thread')",
    )
    profile.add_argument(
        "--svg",
        metavar="PATH",
        help="write a flamegraph SVG of the traced spans to PATH",
    )
    profile.add_argument(
        "--folded",
        metavar="PATH",
        help="write folded stacks (flamegraph.pl format) to PATH",
    )
    profile.add_argument(
        "--querylog",
        metavar="PATH",
        help="write one structured JSONL record per query to PATH",
    )
    profile.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --querylog, only log queries at least MS ms slow",
    )
    profile.add_argument(
        "--validate",
        metavar="PATH",
        help="instead of running queries, load PATH as a query log and "
        "validate every record against the current schema",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro-specific static analyzer (rules RL001-RL016)",
    )
    lint.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="files or directories to lint (directories recurse into *.py)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all, e.g. "
        "RL002,RL004)",
    )
    lint.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        dest="fmt",
        help="report format (default: table)",
    )
    lint.add_argument(
        "--fix-suppressions",
        action="store_true",
        help="append '# repro-lint: disable=CODE' to each violating line "
        "(merging codes into an existing disable comment) instead of "
        "failing",
    )
    lint.add_argument(
        "--prune-suppressions",
        action="store_true",
        help="delete stale 'repro-lint: disable=' waivers (comments whose "
        "rule no longer fires on that line/file) instead of failing",
    )
    lint.add_argument(
        "--graph",
        default=None,
        metavar="OUT",
        help="also export the semantic call graph to OUT (.json or .dot, "
        "chosen by extension)",
    )
    lint.add_argument(
        "--project-root",
        default=None,
        metavar="DIR",
        help="repository root for cross-file rules (default: walk up from "
        "the first PATH to pyproject.toml)",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "walk":
        sequences = random_walk_dataset(
            args.n, args.length, seed=args.seed, length_jitter=args.jitter
        )
    else:
        sequences = synthetic_sp500(args.n, args.length, seed=args.seed).sequences
    out = Path(args.out)
    with open(out, "w") as f:
        for seq in sequences:
            label = seq.label or ""
            row = ",".join(f"{v:.10g}" for v in seq.values)
            f.write(f"{label},{row}\n" if label else row + "\n")
    print(f"wrote {len(sequences)} sequences to {out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    dataset = load_stock_csv(args.input)
    db = SequenceDatabase(page_size=args.page_size, store=args.store)
    db.insert_many(dataset.sequences)
    db.save(args.out)
    print(
        f"built {args.out}: {len(db)} sequences, {db.total_pages} pages "
        f"of {db.page_size} B ({db.store_name} store)"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    db = SequenceDatabase.load(args.db)
    lengths = [len(db.fetch(i)) for i in db.ids()]
    print(f"database: {args.db}")
    print(f"  sequences:      {len(db)}")
    print(f"  store:          {db.store_name}")
    print(f"  page size:      {db.page_size} B")
    print(f"  data pages:     {db.total_pages}")
    print(f"  total elements: {sum(lengths)}")
    if lengths:
        print(
            f"  lengths:        min={min(lengths)} "
            f"avg={sum(lengths) / len(lengths):.1f} max={max(lengths)}"
        )
    return 0


def _parse_query(text: str) -> np.ndarray:
    if text.startswith("@"):
        lines = Path(text[1:]).read_text().split()
        return np.array([float(v) for v in lines])
    return np.array([float(v) for v in text.split(",") if v.strip()])


def _querylog_writer(args: argparse.Namespace) -> QueryLogWriter | None:
    """A writer for the --querylog/--slow-ms flags (None when unused)."""
    if not getattr(args, "querylog", None):
        if getattr(args, "slow_ms", None) is not None:
            raise ValidationError("--slow-ms requires --querylog PATH")
        return None
    threshold = args.slow_ms / 1000.0 if args.slow_ms is not None else None
    return QueryLogWriter(args.querylog, slow_threshold_seconds=threshold)


def _report_querylog(writer: QueryLogWriter | None) -> None:
    if writer is None:
        return
    line = f"query log: {writer.written} record(s) -> {writer.path}"
    if writer.skipped:
        line += f" ({writer.skipped} under the slow-query threshold)"
    print(line)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise ValidationError(f"shards must be >= 1, got {args.shards}")
    storage = SequenceDatabase.load(args.db)
    query = _parse_query(args.query)
    writer = _querylog_writer(args)
    # --explain gets its own tracer when none is ambient, so the span
    # timeline works without requiring the global --trace flag.
    tracer = active_tracer()
    own_tracer = args.explain and tracer is None
    if own_tracer:
        tracer = Tracer()
    with ExitStack() as scopes:
        if writer is not None:
            scopes.enter_context(use_querylog(writer))
        if own_tracer:
            scopes.enter_context(use_tracer(tracer))
        facade = scopes.enter_context(
            TimeWarpingDatabase.from_storage(
                storage,
                backend=args.backend,
                shards=args.shards,
                executor=args.executor,
            )
        )
        if args.epsilon is not None:
            if args.explain:
                result = facade.search_detailed(query, args.epsilon)
                matches = result.matches
                candidates = len(result.candidate_ids)
            else:
                matches = facade.search(query, args.epsilon)
                candidates = len(facade.last_candidate_ids)
            print(
                f"{len(matches)} match(es) within eps={args.epsilon} "
                f"({candidates} candidate(s) examined)"
            )
            for match in matches:
                print(f"  seq {match.seq_id}  D_tw={match.distance:.6g}")
            if args.explain:
                print()
                print("pruning waterfall:")
                stages = [
                    (stage.name, stage.n_in, stage.n_out)
                    for stage in result.stats.stages
                ]
                print(render_pruning_waterfall(stages, result.metrics))
                if tracer is not None:
                    print()
                    print("span timeline:")
                    print(render_span_timeline(tracer.roots))
        else:
            if args.explain:
                raise ValidationError(
                    "--explain requires --epsilon (the pruning waterfall is "
                    "defined for tolerance search)"
                )
            neighbours = facade.knn(query, args.knn)
            print(f"{args.knn} nearest neighbour(s):")
            for match in neighbours:
                print(f"  seq {match.seq_id}  D_tw={match.distance:.6g}")
    _report_querylog(writer)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.input:
        sequences = load_stock_csv(args.input).sequences
    else:
        sequences = synthetic_sp500(120, 60, seed=args.seed).sequences
    db = SequenceDatabase(store=args.store)
    db.insert_many(sequences)
    factories = [
        lambda d: NaiveScan(d),
        lambda d: LBScan(d),
        lambda d: STFilter(d),
        lambda d: TWSimSearch(d),
    ]
    if args.cascade:
        factories.append(lambda d: CascadeScan(d))
    if args.fastmap:
        factories.append(lambda d: FastMapMethod(d))
    if args.shards < 1:
        raise ValidationError(f"shards must be >= 1, got {args.shards}")
    for backend in args.backend or ():
        factories.append(
            lambda d, b=backend: EngineMethod(
                d, backend=b, shards=args.shards, executor=args.executor
            )
        )
    runner = WorkloadRunner(db, factories)
    queries = QueryWorkload(
        sequences, n_queries=args.queries, seed=args.seed
    ).queries()
    try:
        summary = runner.run(queries, args.epsilon)
    finally:
        for method in runner.methods:
            if isinstance(method, EngineMethod):
                method.close()
    rows = []
    for name in summary.methods():
        agg = summary[name]
        rows.append(
            [
                name,
                agg.mean_answers,
                agg.mean_candidates,
                agg.mean_cpu,
                agg.mean_io,
                agg.mean_elapsed,
            ]
        )
    print(
        format_table(
            ["method", "answers", "candidates", "cpu s", "sim-io s", "elapsed s"],
            rows,
            title=(
                f"{len(db)} sequences, {len(queries)} queries, "
                f"eps={args.epsilon}"
            ),
        )
    )
    if args.cascade:
        stage_rows = []
        for name in summary.methods():
            agg = summary[name]
            for stage, ratio in agg.stage_survival().items():
                stage_rows.append([name, stage, ratio])
        if stage_rows:
            print()
            print(
                format_table(
                    ["method", "stage", "survival ratio"],
                    stage_rows,
                    title="per-stage pruning (survivors / entrants)",
                )
            )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = _EXPERIMENTS[args.id]()
    print(result.render())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .analysis import cluster_by_similarity, suggest_epsilon
    from .analysis.clustering import medoid

    if args.input:
        sequences = load_stock_csv(args.input).sequences
    else:
        sequences = synthetic_sp500(120, 60, seed=args.seed).sequences
    arrays = [np.asarray(seq.values) for seq in sequences]
    labels = [seq.label or f"seq{i}" for i, seq in enumerate(sequences)]
    if args.epsilon is not None:
        epsilon = args.epsilon
    else:
        epsilon = suggest_epsilon(
            arrays, args.selectivity, seed=args.seed
        )
        print(f"calibrated tolerance: eps = {epsilon:.4g}")
    clustering = cluster_by_similarity(arrays, epsilon)
    groups = clustering.non_trivial()
    print(
        f"{len(sequences)} sequences -> {clustering.n_clusters} cluster(s), "
        f"{len(groups)} with >= 2 members"
    )
    for rank, members in enumerate(groups[:10], 1):
        archetype = medoid(arrays, members)
        names = ", ".join(labels[i] for i in members[:6])
        extra = " ..." if len(members) > 6 else ""
        print(
            f"  #{rank}: {len(members)} member(s), medoid {labels[archetype]}: "
            f"{names}{extra}"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .distance.alignment import render_alignment

    db = SequenceDatabase.load(args.db)
    query = _parse_query(args.query)
    stored = db.fetch(args.seq)
    print(f"alignment of seq {args.seq} (len {len(stored)}) vs query "
          f"(len {query.size}):")
    print(render_alignment(stored.values, query))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import generate_report

    report = generate_report(
        include_stock=not args.skip_stock,
        include_scale=not args.skip_scale,
        include_ablations=not args.skip_ablations,
    )
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote report to {args.out}")
    else:
        print(report)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        DEFAULT_BASELINE_DIR,
        DEFAULT_WALL_TOLERANCE,
        WORKLOADS,
        bench_filename,
        compare_against_baselines,
        iter_specs,
        run_spec,
        save_baseline,
        write_bench_result,
    )
    from .perf.runner import to_experiment_result
    from .perf.spec import BenchResult, load_bench_file

    if not (args.list or args.run or args.compare or args.update_baselines):
        raise ValidationError(
            "nothing to do: pass --list, --run NAME, --compare, or "
            "--update-baselines"
        )
    baseline_dir = args.baseline_dir or str(DEFAULT_BASELINE_DIR)
    if args.list:
        name_w = max(len(name) for name in WORKLOADS)
        for name, spec in sorted(WORKLOADS.items()):
            print(f"{name:<{name_w}}  [{spec.kind}]  {spec.title}")
        if not (args.run or args.compare or args.update_baselines):
            return 0

    results: list[BenchResult] = []
    if args.run:
        out_dir = Path(args.out)
        for spec in iter_specs(args.run):
            result = run_spec(spec, smoke=args.smoke)
            path = write_bench_result(result, out_dir)
            summary = ", ".join(
                f"{series}={values[-1]:.4g}s"
                for series, values in sorted(result.series.items())
            )
            print(f"{spec.name}: wrote {path} ({summary})")
        # refresh after writing so --compare reads what --run produced
        results = [
            load_bench_file(out_dir / bench_filename(spec.name))
            for spec in iter_specs(args.run)
        ]
    elif args.compare or args.update_baselines:
        found = sorted(Path(args.out).glob("BENCH_*.json"))
        if not found:
            print(
                f"error: no BENCH_*.json files in {args.out!r} "
                "(produce some with --run)",
                file=sys.stderr,
            )
            return 1
        results = [load_bench_file(p) for p in found]
        print(f"loaded {len(results)} result(s) from {args.out}")

    if args.update_baselines:
        for result in results:
            path = save_baseline(result, baseline_dir=baseline_dir)
            tier = "smoke" if result.smoke else "full"
            print(f"{result.name}: baseline ({tier}) -> {path}")
        return 0

    if args.compare:
        report = compare_against_baselines(
            results,
            baseline_dir=baseline_dir,
            wall_tolerance=(
                args.wall_tolerance
                if args.wall_tolerance is not None
                else DEFAULT_WALL_TOLERANCE
            ),
            strict_wall=args.strict_wall,
        )
        print()
        print(report.render())
        return report.exit_code
    # keep the human-readable rendering available from the CLI too
    if args.run and not args.compare:
        for result in results:
            print()
            print(to_experiment_result(result).render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.validate:
        records = load_querylog(args.validate)
        kinds: dict[str, int] = {}
        for record in records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        detail = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        suffix = f" ({detail})" if detail else ""
        print(f"{args.validate}: {len(records)} valid record(s){suffix}")
        return 0
    if args.shards < 1:
        raise ValidationError(f"shards must be >= 1, got {args.shards}")
    if args.db:
        storage = SequenceDatabase.load(args.db)
        sequences = [storage.fetch(i) for i in storage.ids()]
    else:
        sequences = synthetic_sp500(60, 40, seed=args.seed).sequences
        storage = SequenceDatabase()
        storage.insert_many(sequences)
    queries = QueryWorkload(
        sequences, n_queries=args.queries, seed=args.seed
    ).queries()
    tracer = Tracer()
    writer = _querylog_writer(args)
    total_matches = 0
    with ExitStack() as scopes:
        scopes.enter_context(use_tracer(tracer))
        if writer is not None:
            scopes.enter_context(use_querylog(writer))
        facade = scopes.enter_context(
            TimeWarpingDatabase.from_storage(
                storage,
                backend=args.backend,
                shards=args.shards,
                executor=args.executor,
            )
        )
        for query in queries:
            total_matches += len(facade.search(query, args.epsilon))
    roots = tracer.roots
    print(
        f"profiled {len(queries)} query(ies) at eps={args.epsilon}: "
        f"{total_matches} total match(es), {len(roots)} root span(s)"
    )
    print()
    print("span timeline:")
    print(render_span_timeline(roots))
    if args.folded:
        folded = Path(args.folded)
        folded.parent.mkdir(parents=True, exist_ok=True)
        folded.write_text(spans_to_folded(roots) + "\n")
        print(f"wrote folded stacks to {args.folded}")
    if args.svg:
        svg = Path(args.svg)
        svg.parent.mkdir(parents=True, exist_ok=True)
        svg.write_text(render_flamegraph_svg(roots))
        print(f"wrote flamegraph SVG to {args.svg}")
    _report_querylog(writer)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import apply_suppressions, prune_suppressions, run_lint

    rules = None
    if args.rules:
        rules = [code.strip() for code in args.rules.split(",") if code.strip()]
    root = Path(args.project_root) if args.project_root else None
    report = run_lint(
        [Path(p) for p in args.paths],
        rules=rules,
        root=root,
        want_graph=args.graph is not None,
    )
    if args.graph is not None:
        from .lint.semantics import render_dot, render_json

        out = Path(args.graph)
        render = render_dot if out.suffix == ".dot" else render_json
        assert report.graph is not None
        out.write_text(render(report.graph))
        print(f"wrote call graph to {out}")
    if args.fix_suppressions:
        changed = apply_suppressions(report)
        for path in changed:
            print(f"suppressed: {path}")
        print(
            f"added suppressions for {len(report.violations)} violation(s) "
            f"across {len(changed)} file(s)"
        )
        return 0
    if args.prune_suppressions:
        changed = prune_suppressions(report)
        for path in changed:
            print(f"pruned: {path}")
        print(
            f"removed {len(report.stale)} stale waiver(s) "
            f"across {len(changed)} file(s)"
        )
        return 0
    if args.fmt == "json":
        print(report.to_json())
    else:
        print(report.render())
    return report.exit_code


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "info": _cmd_info,
    "query": _cmd_query,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "cluster": _cmd_cluster,
    "explain": _cmd_explain,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "lint": _cmd_lint,
}


def _emit_observability(
    args: argparse.Namespace,
    registry: MetricsRegistry | None,
    tracer: Tracer | None,
) -> None:
    """Print/write whatever --metrics/--trace flags asked for."""
    if registry is not None:
        snapshot = registry.snapshot()
        if args.metrics_out:
            Path(args.metrics_out).write_text(snapshot_to_json(snapshot))
            print(f"wrote metrics snapshot to {args.metrics_out}")
        if args.metrics:
            print()
            print(render_metrics_table(snapshot))
    if tracer is not None:
        roots = tracer.roots
        if args.trace_out:
            Path(args.trace_out).write_text(spans_to_json(roots))
            print(f"wrote {len(roots)} trace span(s) to {args.trace_out}")
        if args.trace:
            print()
            print(render_span_tree(roots))


def main(argv: TypingSequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = (
        MetricsRegistry() if (args.metrics or args.metrics_out) else None
    )
    tracer = Tracer() if (args.trace or args.trace_out) else None
    try:
        with ExitStack() as scopes:
            if registry is not None:
                scopes.enter_context(use_registry(registry))
            if tracer is not None:
                scopes.enter_context(use_tracer(tracer))
            code = _COMMANDS[args.command](args)
        _emit_observability(args, registry, tracer)
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
