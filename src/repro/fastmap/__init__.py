"""FastMap (Faloutsos & Lin, SIGMOD 1995) — substrate for the FastMap baseline.

Maps objects into a ``k``-dimensional Euclidean space given only a
distance function.  Yi et al. used it to embed sequences under the
time-warping distance and index the images; because DTW is not a metric,
the embedding cannot guarantee contractiveness and the resulting method
suffers **false dismissal** — the deficiency that motivates the paper.
"""

from .fastmap import FastMap

__all__ = ["FastMap"]
