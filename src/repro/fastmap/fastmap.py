"""The FastMap embedding algorithm.

For each of ``k`` target dimensions FastMap:

1. Picks two distant *pivot* objects ``a, b`` with a constant number of
   farthest-point sweeps.
2. Projects every object ``i`` onto the line through the pivots using
   the cosine law::

       x_i = (d(a,i)^2 + d(a,b)^2 - d(b,i)^2) / (2 d(a,b))

3. Recurses on the *residual* distance
   ``d'(i,j)^2 = d(i,j)^2 - (x_i - x_j)^2`` for the next dimension.

With a metric distance the residuals stay non-negative and the embedded
Euclidean distance lower-bounds the original, so range queries in the
image are contractive.  With the time-warping distance neither holds —
residual squares can turn negative (clamped at 0 here, as in practice)
and image distances can exceed true distances, producing the false
dismissals the FastMap baseline exhibits.

Query objects are projected with the same pivots
(:meth:`FastMap.project`), requiring ``2k`` distance evaluations.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence as TypingSequence, TypeVar

import numpy as np

from ..exceptions import ValidationError

__all__ = ["FastMap"]

T = TypeVar("T")

DistanceFunction = Callable[[T, T], float]


class FastMap:
    """FastMap embedding of arbitrary objects into ``R^k``.

    Parameters
    ----------
    distance:
        The pairwise distance function (the paper's case: DTW).
    k:
        Target dimensionality.
    seed:
        Seed for the random pivot-sweep starting points.
    pivot_sweeps:
        Farthest-point iterations when choosing pivots (FastMap's
        classic heuristic uses a small constant).
    """

    def __init__(
        self,
        distance: DistanceFunction,
        k: int,
        *,
        seed: int = 0,
        pivot_sweeps: int = 5,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if pivot_sweeps < 1:
            raise ValidationError(f"pivot_sweeps must be >= 1, got {pivot_sweeps}")
        self._distance = distance
        self._k = k
        self._rng = random.Random(seed)
        self._sweeps = pivot_sweeps
        self._objects: list[T] | None = None
        self._coords: np.ndarray | None = None
        self._pivots: list[tuple[int, int, float]] = []  # (a, b, d(a,b))
        self.distance_calls = 0

    # -- fitting -------------------------------------------------------------

    @property
    def k(self) -> int:
        """Target dimensionality."""
        return self._k

    @property
    def is_fitted(self) -> bool:
        """True after :meth:`fit`."""
        return self._coords is not None

    @property
    def coordinates(self) -> np.ndarray:
        """The ``(n, k)`` embedded coordinates of the fitted objects."""
        if self._coords is None:
            raise ValidationError("FastMap must be fitted first")
        return self._coords

    def fit(self, objects: TypingSequence[T]) -> np.ndarray:
        """Embed *objects*; returns (and stores) the ``(n, k)`` coordinates."""
        if len(objects) < 2:
            raise ValidationError("FastMap requires at least two objects")
        self._objects = list(objects)
        n = len(self._objects)
        coords = np.zeros((n, self._k), dtype=np.float64)
        self._pivots = []

        for dim in range(self._k):
            a, b = self._choose_pivots(coords, dim)
            d_ab = self._residual(a, b, coords, dim)
            self._pivots.append((a, b, d_ab))
            if d_ab == 0.0:
                # All residual distances are zero; remaining coords stay 0.
                continue
            d_a = np.array(
                [self._residual(a, i, coords, dim) for i in range(n)]
            )
            d_b = np.array(
                [self._residual(b, i, coords, dim) for i in range(n)]
            )
            coords[:, dim] = (d_a**2 + d_ab**2 - d_b**2) / (2.0 * d_ab)

        self._coords = coords
        return coords

    def _choose_pivots(self, coords: np.ndarray, dim: int) -> tuple[int, int]:
        assert self._objects is not None
        n = len(self._objects)
        b = self._rng.randrange(n)
        a = b
        for _ in range(self._sweeps):
            a = max(
                range(n), key=lambda i: self._residual(b, i, coords, dim)
            )
            if a == b:
                break
            a, b = b, a
        return (a, b) if a != b else (0, min(1, n - 1))

    def _residual(self, i: int, j: int, coords: np.ndarray, dim: int) -> float:
        """Residual distance after removing the first *dim* coordinates."""
        if i == j:
            return 0.0
        assert self._objects is not None
        self.distance_calls += 1
        d2 = self._distance(self._objects[i], self._objects[j]) ** 2
        for h in range(dim):
            d2 -= (coords[i, h] - coords[j, h]) ** 2
        return math.sqrt(d2) if d2 > 0.0 else 0.0

    # -- projecting new objects -----------------------------------------------

    def project(self, obj: T) -> np.ndarray:
        """Embed a new object (e.g. a query) with the fitted pivots."""
        if self._coords is None or self._objects is None:
            raise ValidationError("FastMap must be fitted first")
        point = np.zeros(self._k, dtype=np.float64)
        for dim, (a, b, d_ab) in enumerate(self._pivots):
            if d_ab == 0.0:
                continue
            d_a = self._residual_to(obj, a, point, dim)
            d_b = self._residual_to(obj, b, point, dim)
            point[dim] = (d_a**2 + d_ab**2 - d_b**2) / (2.0 * d_ab)
        return point

    def _residual_to(
        self, obj: T, j: int, point: np.ndarray, dim: int
    ) -> float:
        assert self._objects is not None and self._coords is not None
        self.distance_calls += 1
        d2 = self._distance(obj, self._objects[j]) ** 2
        for h in range(dim):
            d2 -= (point[h] - self._coords[j, h]) ** 2
        return math.sqrt(d2) if d2 > 0.0 else 0.0
