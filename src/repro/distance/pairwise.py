"""Pairwise time-warping distance matrices with lower-bound pruning.

Data-mining workloads (clustering, kNN graphs) need many pairwise DTW
distances.  :func:`pairwise_dtw` computes the full symmetric matrix;
:func:`pairwise_dtw_within` computes only the entries within a
tolerance, pruning with ``D_tw-lb`` first — the matrix-shaped analogue
of the paper's filter-and-verify pipeline.
"""

from __future__ import annotations

import math
from typing import Sequence as TypingSequence

import numpy as np

from ..core.features import extract_feature
from ..core.lower_bound import dtw_lb_features
from ..exceptions import ValidationError
from ..types import SequenceLike, as_array
from .dtw import dtw_max, dtw_max_early_abandon

__all__ = ["pairwise_dtw", "pairwise_dtw_within"]


def _prepare(sequences: TypingSequence[SequenceLike]) -> list[np.ndarray]:
    if not sequences:
        raise ValidationError("pairwise distances require at least one sequence")
    return [as_array(seq, allow_empty=False) for seq in sequences]


def pairwise_dtw(sequences: TypingSequence[SequenceLike]) -> np.ndarray:
    """The full symmetric ``(n, n)`` matrix of Definition-2 distances.

    The diagonal is zero; only the upper triangle is computed and then
    mirrored.  ``O(n^2)`` DTW evaluations — use
    :func:`pairwise_dtw_within` when only close pairs matter.
    """
    arrays = _prepare(sequences)
    n = len(arrays)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            distance = dtw_max(arrays[i], arrays[j])
            matrix[i, j] = distance
            matrix[j, i] = distance
    return matrix


def pairwise_dtw_within(
    sequences: TypingSequence[SequenceLike], epsilon: float
) -> np.ndarray:
    """The distance matrix with entries above *epsilon* set to ``inf``.

    Pairs are pruned with ``D_tw-lb`` before any DTW runs, and the DTW
    itself early-abandons at the tolerance — the same two-stage filter
    Algorithm 1 uses, applied to the self-join's matrix form.
    """
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    arrays = _prepare(sequences)
    features = [extract_feature(arr) for arr in arrays]
    n = len(arrays)
    matrix = np.full((n, n), math.inf)
    np.fill_diagonal(matrix, 0.0)
    for i in range(n):
        for j in range(i + 1, n):
            if dtw_lb_features(features[i], features[j]) > epsilon:
                continue
            distance = dtw_max_early_abandon(arrays[i], arrays[j], epsilon)
            matrix[i, j] = distance
            matrix[j, i] = distance
    return matrix
