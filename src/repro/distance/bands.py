"""Global warping-path constraints (extension to the paper).

The paper uses *unconstrained* time warping.  Later work (Sakoe–Chiba,
Itakura; popularized for indexing by LB_Keogh) restricts the warping path
to a band around the diagonal.  We implement the two classical windows so
that the DTW engine and the LB_Keogh bound can be exercised under
constraints, and so the lower-bound ablation (bench A5) can compare the
paper's LB_Kim against constrained-DTW bounds.

A *window* is represented as a list ``rows`` of ``(lo, hi)`` column
bounds, one per row ``i`` (0-based): cell ``(i, j)`` is admissible iff
``lo <= j < hi``.  All generators guarantee that the window is
contiguous per row, monotone, and includes ``(0, 0)`` and ``(n-1, m-1)``
so a warping path always exists.
"""

from __future__ import annotations

from ..exceptions import ValidationError

__all__ = ["full_window", "sakoe_chiba_window", "itakura_window", "Window"]

#: Per-row ``(lo, hi)`` half-open column bounds.
Window = list[tuple[int, int]]


def _validate_dims(n: int, m: int) -> None:
    if n <= 0 or m <= 0:
        raise ValidationError(f"window requires positive dimensions, got {n}x{m}")


def full_window(n: int, m: int) -> Window:
    """The unconstrained window: every cell of the ``n x m`` grid."""
    _validate_dims(n, m)
    return [(0, m)] * n


def sakoe_chiba_window(n: int, m: int, radius: int) -> Window:
    """Sakoe–Chiba band of the given *radius* around the (resampled) diagonal.

    For sequences of different lengths the band follows the line
    ``j = i * (m-1)/(n-1)``; *radius* is measured in columns.  A radius of
    ``max(n, m)`` or more degenerates to the full window.
    """
    _validate_dims(n, m)
    if radius < 0:
        raise ValidationError(f"radius must be non-negative, got {radius}")
    if n == 1:
        return [(0, m)]
    rows: Window = []
    slope = (m - 1) / (n - 1)
    for i in range(n):
        center = i * slope
        lo = max(0, int(center - radius))
        hi = min(m, int(center + radius) + 1)
        rows.append((lo, hi))
    return _make_contiguous(rows, m)


def itakura_window(n: int, m: int, max_slope: float = 2.0) -> Window:
    """Itakura parallelogram with the given maximum local slope.

    The admissible region is bounded by lines of slope ``max_slope`` and
    ``1/max_slope`` through both corners, forming a parallelogram from
    ``(0, 0)`` to ``(n-1, m-1)``.
    """
    _validate_dims(n, m)
    if max_slope < 1.0:
        raise ValidationError(f"max_slope must be >= 1, got {max_slope}")
    if n == 1:
        return [(0, m)]
    min_slope = 1.0 / max_slope
    rows: Window = []
    for i in range(n):
        # Lower bound: must still be reachable from (0,0) slowly and
        # able to reach (n-1, m-1) quickly.
        lo = max(min_slope * i, (m - 1) - max_slope * (n - 1 - i))
        # Upper bound: symmetric.
        hi = min(max_slope * i, (m - 1) - min_slope * (n - 1 - i))
        lo_i = max(0, int(lo + 0.5) if lo > 0 else 0)
        hi_i = min(m, int(hi + 0.5) + 1)
        rows.append((lo_i, hi_i))
    return _make_contiguous(rows, m)


def _make_contiguous(rows: Window, m: int) -> Window:
    """Repair a window so each row is non-empty and rows overlap.

    Guarantees a monotone staircase of admissible cells connecting
    ``(0, 0)`` to the last cell, which DTW requires for a path to exist.
    """
    n = len(rows)
    fixed: Window = []
    prev_lo, prev_hi = 0, 1
    for i, (lo, hi) in enumerate(rows):
        lo = max(0, min(lo, m - 1))
        hi = max(lo + 1, min(hi, m))
        # Each row must touch or overlap the previous row's span so the
        # path can step (diagonal or vertical) without gaps.
        if lo > prev_hi:
            lo = prev_hi
        if hi <= prev_lo:
            hi = prev_lo + 1
        fixed.append((lo, hi))
        prev_lo, prev_hi = lo, hi
    # Endpoints must be admissible.
    lo0, hi0 = fixed[0]
    fixed[0] = (0, hi0)
    lo_n, hi_n = fixed[-1]
    fixed[-1] = (min(lo_n, m - 1), m)
    return fixed
