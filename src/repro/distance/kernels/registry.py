"""The DTW kernel registry — interchangeable fills, one contract.

A *kernel* is one implementation of the low-level DTW computations the
public functions in :mod:`repro.distance.dtw` dispatch to: the additive
two-row accumulation (Definition 1), the full-matrix fills (for warping
path recovery), and the minimax reachability pass (Definition 2).

Kernels are registered under a short name in :data:`KERNELS` and
selected process-wide via :func:`set_kernel`, per-scope via
:func:`use_kernel`, or through the ``REPRO_DTW_KERNEL`` environment
variable (read lazily on first use; an explicit :func:`set_kernel`
always wins).  The default is the ``vectorized`` kernel.

The exactness contract
----------------------
Every registered kernel must be **bit-identical** to the ``reference``
kernel: same distances, same accumulated matrices (hence same warping
paths), and — because the kernels return structured outcomes instead of
charging metrics themselves — identical ``dtw.cells`` /
``dtw.early_abandons`` / ``dtw.abandon_depth`` charges by construction
(the wrappers in :mod:`repro.distance.dtw` do all charging from the
outcome).  The contract is enforced three ways:

* the hypothesis differential suite ``tests/distance/test_kernel_parity.py``
  runs generated sequence pairs through every registered kernel and
  asserts bit-exact agreement with ``reference``;
* every registration must appear in the kernel-parity manifest
  ``tests/distance/kernel_manifest.py`` (lint rule RL009 checks the
  mapping statically, the suite checks it for staleness at run time);
* the committed ``BENCH_*.json`` baselines gate the exact work counters
  in CI, so a kernel that drifted would fail the bench compare.

Kernel outcome conventions
--------------------------
``additive_total`` returns ``(total, abandoned_rows)`` where *total* is
the raw accumulated corner value (squared costs for the ``L_2`` base)
and *abandoned_rows* is the number of DP rows processed when the
reference early-abandon condition fired, or ``None`` for a completed
fill.  ``reachable`` returns ``(reachable, cells, abandon_depth)``
mirroring the reference pass's charge: *cells* of grid work and, when
the pass gave up before the last row, the fraction of rows completed.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Protocol

import numpy as np

from ...exceptions import ValidationError

if TYPE_CHECKING:
    from ..bands import Window

__all__ = [
    "KERNELS",
    "OPTIONAL_KERNELS",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "DtwKernel",
    "register_kernel",
    "available_kernels",
    "get_kernel",
    "set_kernel",
    "active_kernel",
    "use_kernel",
]

#: Environment variable naming the kernel to use when none was set
#: programmatically (``REPRO_DTW_KERNEL=reference repro bench ...``).
KERNEL_ENV_VAR = "REPRO_DTW_KERNEL"

#: The kernel used when neither :func:`set_kernel` nor the environment
#: chose one.
DEFAULT_KERNEL = "vectorized"

#: Kernel names whose registration is conditional on an optional
#: dependency being importable.  The parity manifest may (and should)
#: carry entries for these even on machines where they never register.
OPTIONAL_KERNELS = frozenset({"numba"})


class DtwKernel(Protocol):
    """The kernel contract every registry entry implements.

    All array arguments are validated, non-empty, contiguous float64
    1-d arrays (the wrappers in :mod:`repro.distance.dtw` handle
    coercion, boundary cases and window-shape validation before
    dispatching).
    """

    #: Registry name; must match the registration key.
    name: str

    def additive_total(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: "Window | None",
        cutoff: float | None,
    ) -> tuple[float, int | None]:
        """Two-row additive DP: ``(raw corner total, abandoned rows | None)``."""
        ...

    def additive_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: "Window | None",
    ) -> np.ndarray:
        """The full additive accumulated-cost matrix (inadmissible: inf)."""
        ...

    def max_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        window: "Window | None",
    ) -> np.ndarray:
        """The full max-recurrence accumulated matrix (Definition 2)."""
        ...

    def reachable(
        self, s_arr: np.ndarray, q_arr: np.ndarray, t: float
    ) -> tuple[bool, int, float | None]:
        """Minimax reachability: ``(reachable, cells charged, abandon depth)``."""
        ...


#: Every registered kernel, keyed by name.  Mutate only through
#: :func:`register_kernel`; lint rule RL009 cross-checks each
#: registration against the kernel-parity manifest.
KERNELS: dict[str, DtwKernel] = {}

_lock = threading.Lock()
_active_name: str | None = None


def register_kernel(name: str, kernel: DtwKernel) -> DtwKernel:
    """Register *kernel* under *name*; returns the kernel.

    Every call site must keep *name* a string literal so RL009 can
    statically tie the registration to its parity-manifest entry.
    """
    if kernel.name != name:
        raise ValidationError(
            f"kernel name mismatch: registering {name!r} but kernel "
            f"declares {kernel.name!r}"
        )
    with _lock:
        KERNELS[name] = kernel
    return kernel


def available_kernels() -> tuple[str, ...]:
    """The registered kernel names, sorted."""
    return tuple(sorted(KERNELS))


def get_kernel(name: str) -> DtwKernel:
    """The registered kernel called *name* (raises on unknown names)."""
    try:
        return KERNELS[name]
    except KeyError:
        known = ", ".join(available_kernels())
        raise ValidationError(
            f"unknown DTW kernel {name!r}; registered: {known}"
        ) from None


def _resolve_default() -> str:
    env = os.environ.get(KERNEL_ENV_VAR, "").strip()
    if env:
        get_kernel(env)  # validate eagerly so a typo fails loudly
        return env
    return DEFAULT_KERNEL


def set_kernel(name: str) -> str:
    """Select the process-wide kernel; returns the previous selection."""
    global _active_name
    get_kernel(name)
    with _lock:
        previous = _active_name if _active_name is not None else _resolve_default()
        _active_name = name
    return previous


def active_kernel() -> DtwKernel:
    """The currently selected kernel (set > environment > default)."""
    name = _active_name
    if name is None:
        name = _resolve_default()
    return get_kernel(name)


@contextmanager
def use_kernel(name: str) -> Iterator[DtwKernel]:
    """Scope the kernel selection: ``with use_kernel("reference"): ...``."""
    global _active_name
    kernel = get_kernel(name)
    with _lock:
        previous = _active_name
        _active_name = name
    try:
        yield kernel
    finally:
        with _lock:
            _active_name = previous
