"""The ``reference`` kernel — the library's original DTW fills.

This is the semantics oracle every other kernel is pinned to: the
per-cell two-row additive DP and full-matrix fills exactly as they
shipped before the registry existed, plus the vectorized minimax
reachability pass for the Definition-2 distance.  Nothing here charges
metrics — kernels return structured outcomes and the wrappers in
:mod:`repro.distance.dtw` translate them into identical ``dtw.*``
charges for every kernel.
"""

from __future__ import annotations

import math

import numpy as np

from ..bands import Window
from .registry import register_kernel

__all__ = ["ReferenceKernel"]

_INF = math.inf


class ReferenceKernel:
    """Per-cell Python DP fills — slow, simple, and the parity oracle."""

    name = "reference"

    # -- Definition 1: additive accumulation ---------------------------------

    def additive_total(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: Window | None,
        cutoff: float | None,
    ) -> tuple[float, int | None]:
        """Memory-efficient two-row DP; see the wrapper for semantics.

        Returns ``(raw corner total, None)`` for a completed fill, or
        ``(inf, i + 1)`` when every cell of row ``i`` exceeded *cutoff*
        (or was unreachable) — the early-abandon condition, sound for
        additive accumulation because costs only grow along a path.
        """
        n, m = s_arr.size, q_arr.size
        q_list = q_arr.tolist()
        prev: list[float] = [_INF] * m
        curr: list[float] = [_INF] * m
        for i in range(n):
            s_i = float(s_arr[i])
            lo, hi = window[i] if window is not None else (0, m)
            row_min = _INF
            for j in range(m):
                curr[j] = _INF
            for j in range(lo, hi):
                if i == 0 and j == 0:
                    best = 0.0
                else:
                    best = prev[j]
                    if j > 0:
                        if prev[j - 1] < best:
                            best = prev[j - 1]
                        if curr[j - 1] < best:
                            best = curr[j - 1]
                if best == _INF:
                    continue
                d = abs(s_i - q_list[j])
                cell = best + (d * d if power == 2.0 else d)
                if cutoff is None or cell <= cutoff:
                    curr[j] = cell
                    if cell < row_min:
                        row_min = cell
            if row_min == _INF and not (i == 0 and lo > 0):
                return _INF, i + 1
            prev, curr = curr, prev
        return prev[m - 1], None

    def additive_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: Window | None,
    ) -> np.ndarray:
        """Full additive accumulated-cost matrix (inadmissible cells: inf)."""
        n, m = s_arr.size, q_arr.size
        cost = np.abs(s_arr[:, None] - q_arr[None, :])
        if power != 1.0:
            cost = cost**power
        acc = np.full((n, m), _INF)
        for i in range(n):
            lo, hi = window[i] if window is not None else (0, m)
            row_cost = cost[i]
            prev = acc[i - 1] if i > 0 else None
            acc_row = acc[i]
            for j in range(lo, hi):
                if i == 0 and j == 0:
                    best = 0.0
                else:
                    best = _INF
                    if prev is not None:
                        up = prev[j]
                        if up < best:
                            best = up
                        if j > 0:
                            diag = prev[j - 1]
                            if diag < best:
                                best = diag
                    if j > 0:
                        left = acc_row[j - 1]
                        if left < best:
                            best = left
                acc_row[j] = row_cost[j] + best
        return acc

    # -- Definition 2: max accumulation --------------------------------------

    def max_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        window: Window | None,
    ) -> np.ndarray:
        """Full max-recurrence matrix:
        ``acc[i, j] = max(|s_i - q_j|, min(up, left, diag))``.
        """
        n, m = s_arr.size, q_arr.size
        cost = np.abs(s_arr[:, None] - q_arr[None, :])
        acc = np.full((n, m), _INF)
        for i in range(n):
            lo, hi = window[i] if window is not None else (0, m)
            row_cost = cost[i]
            prev = acc[i - 1] if i > 0 else None
            acc_row = acc[i]
            for j in range(lo, hi):
                if i == 0 and j == 0:
                    reach = 0.0
                else:
                    reach = _INF
                    if prev is not None:
                        if prev[j] < reach:
                            reach = prev[j]
                        if j > 0 and prev[j - 1] < reach:
                            reach = prev[j - 1]
                    if j > 0 and acc_row[j - 1] < reach:
                        reach = acc_row[j - 1]
                c = row_cost[j]
                acc_row[j] = c if c > reach else reach
        return acc

    def reachable(
        self, s_arr: np.ndarray, q_arr: np.ndarray, t: float
    ) -> tuple[bool, int, float | None]:
        """Can a warping path connect the corners using only cells with
        ``|s_i - q_j| <= t``?

        Steps allowed: right, down, diagonal — the DTW path moves.  Works
        row by row with ``O(|Q|)`` memory, computing each row of the
        admissibility grid on the fly: within each maximal run of
        admissible cells, reachability propagates rightward from any cell
        seeded by the previous row.

        Returns ``(reachable, cells evaluated, abandon depth)``; the
        depth is the fraction of rows completed when an early exit gave
        up, or ``None`` for a full pass.
        """
        n, m = s_arr.size, q_arr.size
        # Both corners lie on every warping path; reject in O(1) when
        # either is inadmissible (this is the early-abandon fast path).
        if abs(s_arr[0] - q_arr[0]) > t or abs(s_arr[-1] - q_arr[-1]) > t:
            return False, 2, 0.0
        idx = np.arange(m)
        # Row 0: reachable prefix of admissible cells.
        ok_row = np.abs(s_arr[0] - q_arr) <= t
        reach = ok_row & (np.cumsum(~ok_row) == 0)
        shifted = np.empty(m, dtype=bool)
        for i in range(1, n):
            ok_row = np.abs(s_arr[i] - q_arr) <= t
            # Cells seeded directly from row i-1 (down or diagonal step).
            shifted[0] = False
            shifted[1:] = reach[:-1]
            seed = ok_row & (reach | shifted)
            if not seed.any():
                return False, (i + 1) * m, (i + 1) / n
            # Propagate right within runs: cell j is reachable iff some
            # seed at k <= j has no inadmissible cell in (k, j].  A seed
            # position is itself admissible, so ``last_seed > last_block``
            # holds exactly at and after a seed within its run.
            last_block = np.maximum.accumulate(np.where(~ok_row, idx, -1))
            last_seed = np.maximum.accumulate(np.where(seed, idx, -1))
            reach = ok_row & (last_seed > last_block)
        return bool(reach[m - 1]), n * m, None


register_kernel("reference", ReferenceKernel())
