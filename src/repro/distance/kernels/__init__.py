"""Interchangeable DTW computation kernels.

See :mod:`repro.distance.kernels.registry` for the selection API and
the exactness contract every kernel is held to.  Importing this package
registers the built-in kernels:

========== ============================================================
``reference``  the original per-cell python DP fills (the parity oracle)
``vectorized`` anti-diagonal numpy wavefront fills (the default)
``numba``      JIT two-row additive DP — only where numba is installed
========== ============================================================
"""

from .registry import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    KERNELS,
    OPTIONAL_KERNELS,
    DtwKernel,
    active_kernel,
    available_kernels,
    get_kernel,
    register_kernel,
    set_kernel,
    use_kernel,
)
from .reference import ReferenceKernel
from .vectorized import VectorizedKernel
from .numba_backend import NUMBA_AVAILABLE, NumbaKernel

__all__ = [
    "KERNELS",
    "OPTIONAL_KERNELS",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "NUMBA_AVAILABLE",
    "DtwKernel",
    "ReferenceKernel",
    "VectorizedKernel",
    "NumbaKernel",
    "register_kernel",
    "available_kernels",
    "get_kernel",
    "set_kernel",
    "active_kernel",
    "use_kernel",
]
