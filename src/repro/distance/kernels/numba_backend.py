"""The optional ``numba`` kernel — JIT-compiled two-row additive DP.

Registered only when :mod:`numba` is importable; on machines without it
this module imports cleanly and registers nothing (the kernel still has
a parity-manifest entry — see ``OPTIONAL_KERNELS``).  The JIT function
mirrors the reference two-row DP statement for statement: every per-cell
operation is the same IEEE-754 double ``abs``/``sub``/``mul``/``add``
and comparison, so results and early-abandon outcomes are bit-identical.
The matrix fills and the reachability pass are inherited from the
vectorized kernel, which is itself pinned bit-exact to reference.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..bands import Window
from .registry import register_kernel
from .vectorized import VectorizedKernel

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the common case in this image
    _numba = None

__all__ = ["NUMBA_AVAILABLE", "NumbaKernel"]

#: True when the optional numba dependency was importable and the
#: ``numba`` kernel registered itself.
NUMBA_AVAILABLE = _numba is not None


def _py_additive_total(
    s_arr: np.ndarray,
    q_arr: np.ndarray,
    power: float,
    lo: np.ndarray,
    hi: np.ndarray,
    cutoff: float,
) -> tuple[float, int]:
    """Two-row DP, numba-compilable.  ``cutoff=inf`` disables abandoning
    by value (an all-inf row can still abandon, exactly as in reference);
    the second return value is the abandoned row count, 0 for none.
    """
    inf = np.inf
    n = s_arr.shape[0]
    m = q_arr.shape[0]
    prev = np.full(m, inf)
    curr = np.full(m, inf)
    for i in range(n):
        s_i = s_arr[i]
        lo_i = lo[i]
        hi_i = hi[i]
        row_min = inf
        for j in range(m):
            curr[j] = inf
        for j in range(lo_i, hi_i):
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = prev[j]
                if j > 0:
                    if prev[j - 1] < best:
                        best = prev[j - 1]
                    if curr[j - 1] < best:
                        best = curr[j - 1]
            if best == inf:
                continue
            d = abs(s_i - q_arr[j])
            cell = best + (d * d if power == 2.0 else d)
            if cell <= cutoff:
                curr[j] = cell
                if cell < row_min:
                    row_min = cell
        if row_min == inf and not (i == 0 and lo_i > 0):
            return inf, i + 1
        prev, curr = curr, prev
    return prev[m - 1], 0


_jit_additive_total: Any = (
    _numba.njit(cache=True, fastmath=False)(_py_additive_total)
    if NUMBA_AVAILABLE  # pragma: no cover - compiled only where numba exists
    else _py_additive_total
)


class NumbaKernel(VectorizedKernel):
    """JIT two-row additive DP; vectorized fills for everything else."""

    name = "numba"

    def additive_total(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: Window | None,
        cutoff: float | None,
    ) -> tuple[float, int | None]:
        n, m = s_arr.size, q_arr.size
        if window is not None:
            bounds = np.asarray(window, dtype=np.int64)
            lo, hi = bounds[:, 0], bounds[:, 1]
        else:
            lo = np.zeros(n, dtype=np.int64)
            hi = np.full(n, m, dtype=np.int64)
        total, abandoned = _jit_additive_total(
            s_arr,
            q_arr,
            power,
            lo,
            hi,
            np.inf if cutoff is None else cutoff,
        )
        return float(total), int(abandoned) or None


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba exists
    register_kernel("numba", NumbaKernel())
