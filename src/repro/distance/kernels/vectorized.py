"""The ``vectorized`` kernel — anti-diagonal wavefront fills in numpy.

Cells on an anti-diagonal ``i + j = d`` depend only on diagonals
``d - 1`` (up / left) and ``d - 2`` (diagonal step), so the DP fills in
``n + m - 1`` python iterations, each a handful of vectorized numpy
operations over one diagonal — versus the reference kernel's
``O(n * m)`` per-cell interpreter steps.

Bit-exactness with the reference kernel holds by construction: per cell
the same IEEE-754 double operations run in the same combination
(``abs``/``sub``/``mul``/``add`` and exact ``min``/``max``), and the
early-abandon decision is re-evaluated row-by-row in completion order
(row ``i`` completes on diagonal ``i + m - 1``), reproducing the
reference's first-all-inf-row abandonment — including its charge — even
though later rows are already partially filled.

Banded windows get a genuinely banded fill: for monotone windows (all
generators in :mod:`repro.distance.bands` produce these) the admissible
cells of a diagonal form one contiguous run located by binary search, so
a Sakoe–Chiba band of width ``w`` costs ``O((n + m) * w)`` element work
instead of ``O((n + m) * min(n, m))``.  Arbitrary windows fall back to
masking the full diagonal.
"""

from __future__ import annotations

import math

import numpy as np

from ..bands import Window
from .reference import ReferenceKernel
from .registry import register_kernel

__all__ = ["VectorizedKernel"]

_INF = math.inf

#: Below this grid size the per-diagonal numpy dispatch overhead costs
#: more than it saves and the reference per-cell loop wins (measured
#: crossover ~1.6-2k cells); small fills delegate to the reference DP,
#: which is bit-exact with itself by definition.
_WAVEFRONT_MIN_CELLS = 2048


class _Band:
    """Per-diagonal admissibility bounds for a ``Window``.

    ``clip(d, i0, i1)`` returns the sub-range of rows ``[ia, ib]`` within
    ``[i0, i1]`` whose cell on diagonal *d* is admissible, plus a flag
    telling whether masking is still required (non-monotone windows).
    """

    def __init__(self, window: Window, n: int) -> None:
        bounds = np.asarray(window, dtype=np.intp)
        rows = np.arange(n, dtype=np.intp)
        self.lo = bounds[:, 0]
        self.hi = bounds[:, 1]
        # j = d - i is admissible iff lo[i] + i <= d < hi[i] + i.  When
        # both sums are nondecreasing in i the admissible rows of any
        # diagonal form one contiguous run findable by binary search.
        self.lo_plus = self.lo + rows
        self.hi_plus = self.hi + rows
        self.monotone = bool(
            np.all(np.diff(self.lo_plus) >= 0)
            and np.all(np.diff(self.hi_plus) >= 0)
        )

    def clip(self, d: int, i0: int, i1: int) -> tuple[int, int, bool]:
        if not self.monotone:
            return i0, i1, True
        ia = int(np.searchsorted(self.hi_plus, d, side="right"))
        ib = int(np.searchsorted(self.lo_plus, d, side="right")) - 1
        return max(ia, i0), min(ib, i1), False

    def mask(self, d: int, i0: int, i1: int) -> np.ndarray:
        j = d - np.arange(i0, i1 + 1, dtype=np.intp)
        in_band: np.ndarray = (j >= self.lo[i0 : i1 + 1]) & (
            j < self.hi[i0 : i1 + 1]
        )
        return in_band


class VectorizedKernel(ReferenceKernel):
    """Anti-diagonal numpy wavefront; inherits the reachability pass."""

    name = "vectorized"

    def additive_total(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: Window | None,
        cutoff: float | None,
    ) -> tuple[float, int | None]:
        n, m = s_arr.size, q_arr.size
        if n * m < _WAVEFRONT_MIN_CELLS:
            return super().additive_total(
                s_arr, q_arr, power=power, window=window, cutoff=cutoff
            )
        qr = np.ascontiguousarray(q_arr[::-1])
        # The reference two-row DP overflows to inf silently (python
        # float semantics); match that rather than warning per diagonal.
        with np.errstate(over="ignore"):
            if window is None and cutoff is None and self._overflow_free(
                s_arr, q_arr, power
            ):
                return self._additive_wavefront_lean(s_arr, qr, power)
            band = _Band(window, n) if window is not None else None
            lo0 = int(band.lo[0]) if band is not None else 0
            row_finite = np.zeros(n, dtype=bool)
            return self._additive_wavefront(
                s_arr, qr, power, cutoff, band, lo0, row_finite
            )

    @staticmethod
    def _overflow_free(
        s_arr: np.ndarray, q_arr: np.ndarray, power: float
    ) -> bool:
        """True when no accumulated cell can overflow to inf.

        Any warping path visits fewer than ``n + m`` cells, each costing
        at most ``(max|s| + max|q|) ** power``, so a finite product
        bounds every partial sum — ruling out the overflow-to-inf rows
        that make even the unconstrained reference DP abandon.
        """
        peak = float(np.abs(s_arr).max()) + float(np.abs(q_arr).max())
        if power == 2.0:
            peak = peak * peak
        return math.isfinite(peak * (s_arr.size + q_arr.size))

    def _additive_wavefront_lean(
        self, s_arr: np.ndarray, qr: np.ndarray, power: float
    ) -> tuple[float, int | None]:
        """The unconstrained overflow-free fill: no abandon can happen.

        Every in-grid cell has at least one finite predecessor and a
        finite cost (callers prove this via :meth:`_overflow_free`),
        hence stays finite — the abandon bookkeeping of the general
        wavefront is dead weight here.  Instead of re-initialising the whole
        ``curr`` buffer each diagonal, two sentinel writes suffice: the
        admissible row range ``[i0, i1]`` moves by at most one per
        diagonal, so the only stale slots later diagonals can read are
        ``i0`` (below the written run) and ``i1 + 2`` (above it).
        """
        n, m = s_arr.size, qr.size
        prev2 = np.full(n + 1, _INF)
        prev1 = np.full(n + 1, _INF)
        curr = np.full(n + 1, _INF)
        for d in range(n + m - 1):
            i0 = d - m + 1 if d >= m else 0
            i1 = d if d < n else n - 1
            cost = np.abs(s_arr[i0 : i1 + 1] - qr[m - 1 - d + i0 : m - d + i1])
            if power == 2.0:
                cost = cost * cost
            if d == 0:
                curr[1] = cost[0]  # the (0, 0) corner: best is 0.0
            else:
                best = np.minimum(prev1[i0 : i1 + 1], prev1[i0 + 1 : i1 + 2])
                np.minimum(best, prev2[i0 : i1 + 1], out=best)
                best += cost
                curr[i0 + 1 : i1 + 2] = best
            curr[i0] = _INF
            if i1 + 2 <= n:
                curr[i1 + 2] = _INF
            prev2, prev1, curr = prev1, curr, prev2
        return float(prev1[n]), None

    def _additive_wavefront(
        self,
        s_arr: np.ndarray,
        qr: np.ndarray,
        power: float,
        cutoff: float | None,
        band: _Band | None,
        lo0: int,
        row_finite: np.ndarray,
    ) -> tuple[float, int | None]:
        n, m = s_arr.size, qr.size
        # Diagonal buffers indexed by row + 1; slot 0 is an inf sentinel
        # standing in for the out-of-grid row -1.
        prev2 = np.full(n + 1, _INF)
        prev1 = np.full(n + 1, _INF)
        curr = np.full(n + 1, _INF)
        for d in range(n + m - 1):
            i0 = d - m + 1 if d >= m else 0
            i1 = d if d < n else n - 1
            curr[:] = _INF
            ia, ib, need_mask = (
                band.clip(d, i0, i1) if band is not None else (i0, i1, False)
            )
            if ia <= ib:
                cost = np.abs(s_arr[ia : ib + 1] - qr[m - 1 - d + ia : m - d + ib])
                if power == 2.0:
                    cost = cost * cost
                if d == 0:
                    cell = cost  # the (0, 0) corner: best is 0.0
                else:
                    best = np.minimum(
                        np.minimum(prev1[ia : ib + 1], prev1[ia + 1 : ib + 2]),
                        prev2[ia : ib + 1],
                    )
                    cell = best + cost
                if cutoff is not None:
                    cell[cell > cutoff] = _INF
                if need_mask and band is not None:
                    cell[~band.mask(d, ia, ib)] = _INF
                curr[ia + 1 : ib + 2] = cell
                row_finite[ia : ib + 1] |= np.isfinite(cell)
            # Row i completes once diagonal i + m - 1 is filled; checking
            # in completion order reproduces the reference early abandon.
            completed = d - m + 1
            if (
                completed >= 0
                and not row_finite[completed]
                and not (completed == 0 and lo0 > 0)
            ):
                return _INF, completed + 1
            prev2, prev1, curr = prev1, curr, prev2
        return float(prev1[n]), None

    def additive_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        power: float,
        window: Window | None,
    ) -> np.ndarray:
        if s_arr.size * q_arr.size < _WAVEFRONT_MIN_CELLS:
            return super().additive_matrix(
                s_arr, q_arr, power=power, window=window
            )
        cost = np.abs(s_arr[:, None] - q_arr[None, :])
        if power != 1.0:
            cost = cost**power
        return self._wavefront_matrix(cost, window, additive=True)

    def max_matrix(
        self,
        s_arr: np.ndarray,
        q_arr: np.ndarray,
        *,
        window: Window | None,
    ) -> np.ndarray:
        if s_arr.size * q_arr.size < _WAVEFRONT_MIN_CELLS:
            return super().max_matrix(s_arr, q_arr, window=window)
        cost = np.abs(s_arr[:, None] - q_arr[None, :])
        return self._wavefront_matrix(cost, window, additive=False)

    def _wavefront_matrix(
        self, cost: np.ndarray, window: Window | None, *, additive: bool
    ) -> np.ndarray:
        """Fill the full accumulated matrix one anti-diagonal at a time.

        ``additive=True`` accumulates ``best + cost`` (Definition 1,
        *cost* already raised to the base power); ``additive=False``
        accumulates ``max(cost, best)`` (Definition 2).
        """
        n, m = cost.shape
        acc = np.full((n, m), _INF)
        band = _Band(window, n) if window is not None else None
        rows = np.arange(n, dtype=np.intp)
        prev2 = np.full(n + 1, _INF)
        prev1 = np.full(n + 1, _INF)
        curr = np.full(n + 1, _INF)
        for d in range(n + m - 1):
            i0 = d - m + 1 if d >= m else 0
            i1 = d if d < n else n - 1
            curr[:] = _INF
            ia, ib, need_mask = (
                band.clip(d, i0, i1) if band is not None else (i0, i1, False)
            )
            if ia <= ib:
                i_idx = rows[ia : ib + 1]
                j_idx = d - i_idx
                c = cost[i_idx, j_idx]
                if d == 0:
                    # The (0, 0) corner: best is 0.0 and cost >= 0, so
                    # both recurrences reduce to the cost itself.
                    cell = c
                else:
                    best = np.minimum(
                        np.minimum(prev1[ia : ib + 1], prev1[ia + 1 : ib + 2]),
                        prev2[ia : ib + 1],
                    )
                    cell = best + c if additive else np.maximum(c, best)
                if need_mask and band is not None:
                    # Masked cells become inf — writing them back into
                    # ``acc`` is a no-op against its inf initialisation.
                    cell[~band.mask(d, ia, ib)] = _INF
                acc[i_idx, j_idx] = cell
                curr[ia + 1 : ib + 2] = cell
            prev2, prev1, curr = prev1, curr, prev2
        return acc


register_kernel("vectorized", VectorizedKernel())
