"""The time-warping distance ``D_tw`` (paper Definitions 1 and 2).

Two formulations are implemented:

* :func:`dtw_additive` — Definition 1: per-element costs are accumulated
  *additively* along the warping path (``L_1`` base sums absolute
  differences, ``L_2`` base sums squares and takes a final root).  This
  is the classical DTW of Berndt & Clifford and of Yi et al.
* :func:`dtw_max` — Definition 2: the paper's similarity model, where
  the path cost is the *maximum* element difference along the path
  (``L_inf`` accumulation).  ``D_tw(S, Q) = max_h |m_h|`` over the best
  element mapping ``M``.

Both obey the boundary conditions ``D_tw(<>, <>) = 0`` and
``D_tw(S, <>) = D_tw(<>, Q) = inf``.

Performance notes
-----------------
The DP fills are delegated to an interchangeable *kernel* selected from
:mod:`repro.distance.kernels` (``set_kernel`` / ``use_kernel`` /
``REPRO_DTW_KERNEL``); every registered kernel is held bit-identical to
the ``reference`` kernel, so the choice affects wall time only — never
distances, paths, or the charged ``dtw.*`` metrics.  The full-matrix
entry points (:func:`dtw_additive_matrix`, :func:`dtw_max_matrix`) cost
``O(|S| x |Q|)`` time and memory and support warping-path recovery and
global constraint windows.  For the max recurrence we additionally
exploit a classical minimax-path identity: ``dtw_max(S, Q) <= t`` iff
the cell ``(|S|-1, |Q|-1)`` is reachable from ``(0, 0)`` through cells
with ``|s_i - q_j| <= t`` using (right / down / diagonal) steps.
Reachability is computed row-by-row with vectorized numpy, and the exact
distance is found by binary search over the ``O(|S| x |Q|)`` candidate
difference values — in practice an order of magnitude faster than the
Python DP loop.  :func:`dtw_max_early_abandon` runs a single
reachability pass at the query tolerance and gives the early-exit
behaviour the paper relies on in its post-processing step (section 4.1:
with ``L_inf``, a sequence can be discarded the moment no admissible
path remains).

Metric charging happens here, in the wrappers, from the structured
outcome a kernel returns — never inside a kernel.  That makes the
``dtw.cells`` / ``dtw.early_abandons`` / ``dtw.abandon_depth`` charges
identical across kernels by construction, which is what lets the
bit-exact BENCH counter gate keep working no matter which kernel ran.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ValidationError
from ..obs.metrics import active_registry
from ..types import SequenceLike, as_array
from .bands import Window
from .base import BaseDistance, LINF
from .kernels import active_kernel

__all__ = [
    "DtwResult",
    "dtw_distance",
    "dtw_additive",
    "dtw_additive_matrix",
    "dtw_max",
    "dtw_max_matrix",
    "dtw_max_early_abandon",
    "dtw_max_within",
    "warping_path",
]

_INF = math.inf


@dataclass(frozen=True)
class DtwResult:
    """Outcome of a DTW computation with the full matrix retained.

    Attributes
    ----------
    distance:
        The time-warping distance.
    matrix:
        The ``|S| x |Q|`` accumulated-cost matrix.  Inadmissible cells
        (outside the constraint window) hold ``inf``.
    base:
        The accumulation rule used (:class:`BaseDistance`).
    """

    distance: float
    matrix: np.ndarray
    base: BaseDistance

    def path(self) -> list[tuple[int, int]]:
        """Recover one optimal warping path (see :func:`warping_path`)."""
        return warping_path(self.matrix, base=self.base)


def _check_operands(
    s: SequenceLike, q: SequenceLike
) -> tuple[np.ndarray, np.ndarray]:
    return as_array(s), as_array(q)


def _empty_case(n: int, m: int) -> Optional[float]:
    """Boundary conditions of Definitions 1 and 2, or None if both non-empty."""
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return _INF
    return None


# ----------------------------------------------------------------------
# Definition 1: additive accumulation (L1 / L2 base)
# ----------------------------------------------------------------------


def dtw_additive_matrix(
    s: SequenceLike,
    q: SequenceLike,
    *,
    base: BaseDistance = BaseDistance.L1,
    window: Window | None = None,
) -> DtwResult:
    """Full-matrix additive DTW (Definition 1) with optional window.

    Returns a :class:`DtwResult` whose matrix supports path recovery.
    For the ``L_2`` base, the matrix stores accumulated *squared* costs;
    the returned distance is the square root of the bottom-right cell.
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return DtwResult(boundary, np.zeros((n, m)), base)
    if base is BaseDistance.LINF:
        raise ValidationError(
            "use dtw_max / dtw_max_matrix for the L_inf accumulation rule"
        )
    if window is not None and len(window) != n:
        raise ValidationError(
            f"window has {len(window)} rows but |S| = {n}"
        )

    power = 2.0 if base is BaseDistance.L2 else 1.0
    acc = active_kernel().additive_matrix(
        s_arr, q_arr, power=power, window=window
    )
    _charge_cells(n * m)
    total = float(acc[n - 1, m - 1])
    distance = total ** (1.0 / power) if power != 1.0 else total
    return DtwResult(distance, acc, base)


def dtw_additive(
    s: SequenceLike,
    q: SequenceLike,
    *,
    base: BaseDistance = BaseDistance.L1,
    window: Window | None = None,
    threshold: float | None = None,
) -> float:
    """Additive time-warping distance (Definition 1).

    Memory-efficient two-row DP.  If *threshold* is given, computation
    abandons early and returns ``inf`` as soon as every cell of a row
    exceeds it (sound for additive accumulation because costs only grow
    along a path).
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return boundary
    if base is BaseDistance.LINF:
        raise ValidationError("use dtw_max for the L_inf accumulation rule")
    if window is not None and len(window) != n:
        raise ValidationError(f"window has {len(window)} rows but |S| = {n}")

    power = 2.0 if base is BaseDistance.L2 else 1.0
    cutoff = None
    if threshold is not None:
        if threshold < 0:
            raise ValidationError(f"threshold must be non-negative, got {threshold}")
        cutoff = threshold**power if power != 1.0 else threshold

    total, abandoned = active_kernel().additive_total(
        s_arr, q_arr, power=power, window=window, cutoff=cutoff
    )
    if abandoned is not None:
        _charge_cells(abandoned * m, abandon_depth=abandoned / n)
        return _INF
    _charge_cells(n * m)
    if total == _INF:
        return _INF
    return total ** (1.0 / power) if power != 1.0 else total


# ----------------------------------------------------------------------
# Definition 2: max accumulation (L_inf base) — the paper's model
# ----------------------------------------------------------------------


def dtw_max_matrix(
    s: SequenceLike,
    q: SequenceLike,
    *,
    window: Window | None = None,
) -> DtwResult:
    """Full-matrix DTW under the max recurrence (Definition 2).

    ``acc[i, j] = max(|s_i - q_j|, min(acc[i-1, j], acc[i, j-1],
    acc[i-1, j-1]))`` with ``acc[0, 0] = |s_0 - q_0|``.
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return DtwResult(boundary, np.zeros((n, m)), LINF)
    if window is not None and len(window) != n:
        raise ValidationError(f"window has {len(window)} rows but |S| = {n}")

    acc = active_kernel().max_matrix(s_arr, q_arr, window=window)
    _charge_cells(n * m)
    return DtwResult(float(acc[n - 1, m - 1]), acc, LINF)


def _charge_cells(cells: int, *, abandon_depth: float | None = None) -> None:
    """Charge *cells* of DP work (and an early abandon) to the ambient
    registry; a no-op when observability is off."""
    registry = active_registry()
    if registry is None:
        return
    registry.count("dtw.cells", cells)
    if abandon_depth is not None:
        registry.count("dtw.early_abandons")
        registry.observe("dtw.abandon_depth", abandon_depth)


def _reachable(s_arr: np.ndarray, q_arr: np.ndarray, t: float) -> bool:
    """Can a warping path connect the corners using only cells with
    ``|s_i - q_j| <= t``?

    Steps allowed: right, down, diagonal — the DTW path moves.  Works
    row by row with ``O(|Q|)`` memory, computing each row of the
    admissibility grid on the fly: within each maximal run of admissible
    cells, reachability propagates rightward from any cell seeded by the
    previous row.

    Instrumentation: ``dtw.cells`` counts grid cells whose admissibility
    was evaluated; an exit before the last row also charges
    ``dtw.early_abandons`` and observes ``dtw.abandon_depth`` (fraction
    of rows completed when the pass gave up).
    """
    ok, cells, depth = active_kernel().reachable(s_arr, q_arr, t)
    _charge_cells(cells, abandon_depth=depth)
    return ok


#: Above this many grid cells, exact value refinement switches from a
#: discrete search over all pairwise differences to a bounded bisection
#: (results then carry a ~1e-12 relative tolerance).
_DENSE_CELL_LIMIT = 4_000_000

#: Bisection iterations for the large-input refinement path.
_BISECT_ITERATIONS = 100


def _refine_exact(
    s_arr: np.ndarray, q_arr: np.ndarray, upper: float
) -> float:
    """Exact minimax value given that a path exists at threshold *upper*.

    Binary-searches the sorted set of pairwise differences not
    exceeding *upper* — the answer is always one of them (the path's
    bottleneck pair).
    """
    diff = np.abs(s_arr[:, None] - q_arr[None, :])
    candidates = np.unique(diff[diff <= upper])
    lo, hi = 0, candidates.size - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if _reachable(s_arr, q_arr, float(candidates[mid])):
            hi = mid
        else:
            lo = mid + 1
    return float(candidates[lo])


def _refine_bisect(
    s_arr: np.ndarray, q_arr: np.ndarray, lower: float, upper: float
) -> float:
    """Bisection refinement for inputs too large to enumerate differences."""
    for _ in range(_BISECT_ITERATIONS):
        mid = 0.5 * (lower + upper)
        if mid == lower or mid == upper:
            break
        if _reachable(s_arr, q_arr, mid):
            upper = mid
        else:
            lower = mid
    return upper


def _refine(s_arr: np.ndarray, q_arr: np.ndarray, upper: float) -> float:
    """Dispatch between exact and bisection refinement by grid size."""
    if s_arr.size * q_arr.size <= _DENSE_CELL_LIMIT:
        return _refine_exact(s_arr, q_arr, upper)
    lower = max(
        abs(float(s_arr[0]) - float(q_arr[0])),
        abs(float(s_arr[-1]) - float(q_arr[-1])),
    )
    return _refine_bisect(s_arr, q_arr, lower, upper)


def dtw_max_within(
    s: SequenceLike, q: SequenceLike, epsilon: float
) -> bool:
    """Decision procedure: is ``dtw_max(S, Q) <= epsilon``?

    Runs a single vectorized reachability pass over the boolean grid
    ``|s_i - q_j| <= epsilon``; this is the minimax-path characterization
    of the Definition-2 distance.
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return boundary <= epsilon
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    return _reachable(s_arr, q_arr, epsilon)


def dtw_max(s: SequenceLike, q: SequenceLike) -> float:
    """The paper's time-warping distance (Definition 2, exact value).

    Computed by binary search over pairwise element differences using
    the minimax-path reachability test; equals the bottom-right cell of
    :func:`dtw_max_matrix` but is much faster for long sequences.  For
    very large inputs (beyond ``_DENSE_CELL_LIMIT`` grid cells) the
    refinement bisects on a continuous interval instead and the result
    carries a ~1e-12 relative tolerance.
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return boundary
    # The answer is one of the pairwise differences (the path
    # bottleneck); the largest possible difference always admits a path.
    upper = max(
        abs(float(s_arr.max()) - float(q_arr.min())),
        abs(float(q_arr.max()) - float(s_arr.min())),
    )
    return _refine(s_arr, q_arr, upper)


def dtw_max_early_abandon(
    s: SequenceLike, q: SequenceLike, epsilon: float
) -> float:
    """Exact Definition-2 distance if it is ``<= epsilon``, else ``inf``.

    This is the verification primitive every search method uses in its
    post-processing step: a single cheap reachability pass rejects
    non-qualifying sequences (the ``L_inf`` early-abandon advantage the
    paper describes in section 4.1), and only survivors pay for the
    exact-value refinement.
    """
    s_arr, q_arr = _check_operands(s, q)
    n, m = s_arr.size, q_arr.size
    boundary = _empty_case(n, m)
    if boundary is not None:
        return boundary if boundary <= epsilon else _INF
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    if not _reachable(s_arr, q_arr, epsilon):
        return _INF
    return _refine(s_arr, q_arr, epsilon)


def dtw_distance(
    s: SequenceLike,
    q: SequenceLike,
    *,
    base: BaseDistance = LINF,
    window: Window | None = None,
    threshold: float | None = None,
) -> float:
    """Unified entry point for the time-warping distance.

    Dispatches on the accumulation rule: :attr:`BaseDistance.LINF`
    (the paper's Definition 2) uses the fast minimax algorithm, ``L1`` /
    ``L2`` (Definition 1) use the additive DP.  *threshold* enables
    early abandoning: the result is ``inf`` whenever the true distance
    exceeds it.
    """
    if base is LINF:
        if window is not None:
            result = dtw_max_matrix(s, q, window=window).distance
            if threshold is not None and result > threshold:
                return _INF
            return result
        if threshold is not None:
            return dtw_max_early_abandon(s, q, threshold)
        return dtw_max(s, q)
    return dtw_additive(s, q, base=base, window=window, threshold=threshold)


def warping_path(
    matrix: np.ndarray, *, base: BaseDistance = LINF
) -> list[tuple[int, int]]:
    """Recover one optimal warping path from an accumulated-cost matrix.

    Walks from the bottom-right cell back to ``(0, 0)`` choosing, among
    the admissible predecessors (up, left, diagonal), one whose
    accumulated cost is consistent with the current cell.  Diagonal
    moves are preferred on ties to yield the shortest of the optimal
    paths.  Returns the path in forward order as ``(i, j)`` index pairs.
    """
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValidationError("path recovery requires a non-empty 2-d matrix")
    n, m = matrix.shape
    if not math.isfinite(matrix[n - 1, m - 1]):
        raise ValidationError("no admissible warping path (matrix ends at inf)")
    path = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while (i, j) != (0, 0):
        best: tuple[float, int, int] | None = None
        for di, dj in ((-1, -1), (-1, 0), (0, -1)):  # diagonal preferred
            pi, pj = i + di, j + dj
            if pi < 0 or pj < 0:
                continue
            val = matrix[pi, pj]
            if not math.isfinite(val):
                continue
            if best is None or val < best[0]:
                best = (float(val), pi, pj)
        if best is None:
            raise ValidationError("matrix is not a valid DTW accumulation matrix")
        i, j = best[1], best[2]
        path.append((i, j))
    path.reverse()
    return path
