"""The ``L_p`` distance family (paper section 2).

Two related roles are covered here:

1. **Whole-sequence distance** between equal-length sequences:
   ``L_p(S, Q) = (sum_i |s_i - q_i|^p)^(1/p)``, with ``L_inf`` as the
   limit ``max_i |s_i - q_i|``.
2. **Element base distance** ``D_base`` inside the time-warping
   recurrence, which compares two scalars.  For scalars every ``L_p``
   collapses to ``|x - y|``; what differs is how per-element costs are
   *accumulated* along a warping path: ``L_1`` sums them, ``L_inf``
   takes the maximum.  The :class:`BaseDistance` enum captures that
   accumulation rule and is consumed by :mod:`repro.distance.dtw`.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from ..exceptions import LengthMismatchError, ValidationError
from ..types import SequenceLike, as_array

__all__ = [
    "BaseDistance",
    "L1",
    "L2",
    "LINF",
    "LpDistance",
    "lp_distance",
    "manhattan",
    "euclidean",
    "maximum",
]


class BaseDistance(enum.Enum):
    """Accumulation rule for per-element costs along a warping path.

    ``L1`` sums absolute differences (classical DTW), ``L2`` sums squared
    differences and takes a square root at the end, and ``LINF`` — the
    paper's choice (Definition 2) — takes the maximum absolute
    difference over the path.
    """

    L1 = "L1"
    L2 = "L2"
    LINF = "Linf"

    @property
    def p(self) -> float:
        """The ``p`` exponent; ``inf`` for :attr:`LINF`."""
        if self is BaseDistance.L1:
            return 1.0
        if self is BaseDistance.L2:
            return 2.0
        return math.inf


#: Convenience aliases.
L1 = BaseDistance.L1
L2 = BaseDistance.L2
LINF = BaseDistance.LINF


class LpDistance:
    """A whole-sequence ``L_p`` distance for a fixed ``p``.

    ``p`` may be any real number ``>= 1`` or ``math.inf``.  Instances are
    callable: ``LpDistance(2)(s, q)`` is the Euclidean distance.
    """

    __slots__ = ("_p",)

    def __init__(self, p: float) -> None:
        if not (p >= 1.0):  # also rejects NaN
            raise ValidationError(f"L_p requires p >= 1, got {p!r}")
        self._p = float(p)

    @property
    def p(self) -> float:
        """The exponent of this distance."""
        return self._p

    def __call__(self, s: SequenceLike, q: SequenceLike) -> float:
        return lp_distance(s, q, p=self._p)

    def __repr__(self) -> str:
        return f"LpDistance(p={self._p:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LpDistance):
            return NotImplemented
        return self._p == other._p

    def __hash__(self) -> int:
        return hash(("LpDistance", self._p))


def lp_distance(s: SequenceLike, q: SequenceLike, *, p: float = 2.0) -> float:
    """``L_p`` distance between two equal-length sequences.

    Raises :class:`LengthMismatchError` when ``|S| != |Q|`` — the paper
    stresses that this restriction is exactly why time warping is needed
    for databases of variable-length sequences.
    """
    s_arr = as_array(s)
    q_arr = as_array(q)
    if s_arr.size != q_arr.size:
        raise LengthMismatchError(
            f"L_p requires equal lengths, got {s_arr.size} and {q_arr.size}"
        )
    if not (p >= 1.0):
        raise ValidationError(f"L_p requires p >= 1, got {p!r}")
    if s_arr.size == 0:
        return 0.0
    diff = np.abs(s_arr - q_arr)
    if math.isinf(p):
        return float(diff.max())
    if p == 1.0:
        return float(diff.sum())
    if p == 2.0:
        return float(np.sqrt(np.square(diff).sum()))
    return float(np.power(np.power(diff, p).sum(), 1.0 / p))


def manhattan(s: SequenceLike, q: SequenceLike) -> float:
    """``L_1`` (Manhattan) distance between equal-length sequences."""
    return lp_distance(s, q, p=1.0)


def euclidean(s: SequenceLike, q: SequenceLike) -> float:
    """``L_2`` (Euclidean) distance between equal-length sequences."""
    return lp_distance(s, q, p=2.0)


def maximum(s: SequenceLike, q: SequenceLike) -> float:
    """``L_inf`` (maximum / Chebyshev) distance between equal-length sequences."""
    return lp_distance(s, q, p=math.inf)
