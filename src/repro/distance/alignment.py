"""Warping-alignment inspection: *why* two sequences match (or don't).

A search result under DTW is opaque — "distance 0.42" — until you see
which elements were matched to which.  :func:`explain_alignment`
recovers the optimal Definition-2 warping and reports the element
mapping ``M`` of the paper's section 4.1: every matched pair, its cost,
the bottleneck pair realizing the distance, and how much each sequence
was stretched.  :func:`render_alignment` draws the mapping as text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..types import SequenceLike, as_array
from .dtw import dtw_max_matrix

__all__ = ["AlignmentReport", "explain_alignment", "render_alignment"]


@dataclass(frozen=True)
class AlignmentReport:
    """The element mapping behind a Definition-2 distance.

    Attributes
    ----------
    distance:
        ``D_tw(S, Q)`` — equals the largest pair cost.
    pairs:
        The warping path as ``(i, j)`` index pairs (the mapping ``M``).
    costs:
        ``|s_i - q_j|`` per pair, aligned with :attr:`pairs`.
    bottleneck:
        The ``(i, j)`` pair realizing the distance (first of them).
    s_stretch, q_stretch:
        Path length over each sequence's length — 1.0 means no
        replication; 2.0 means elements matched twice on average.
    """

    distance: float
    pairs: list[tuple[int, int]]
    costs: list[float]
    bottleneck: tuple[int, int]
    s_stretch: float
    q_stretch: float

    def matched_queries_of(self, i: int) -> list[int]:
        """Query indexes matched to data element *i*."""
        return [j for (a, j) in self.pairs if a == i]

    def matched_elements_of(self, j: int) -> list[int]:
        """Data indexes matched to query element *j*."""
        return [i for (i, b) in self.pairs if b == j]


def explain_alignment(s: SequenceLike, q: SequenceLike) -> AlignmentReport:
    """Compute the optimal warping of *s* onto *q* and describe it."""
    s_arr = as_array(s, allow_empty=False)
    q_arr = as_array(q, allow_empty=False)
    result = dtw_max_matrix(s_arr, q_arr)
    pairs = result.path()
    costs = [float(abs(s_arr[i] - q_arr[j])) for i, j in pairs]
    worst = int(np.argmax(costs))
    return AlignmentReport(
        distance=result.distance,
        pairs=pairs,
        costs=costs,
        bottleneck=pairs[worst],
        s_stretch=len(pairs) / s_arr.size,
        q_stretch=len(pairs) / q_arr.size,
    )


def render_alignment(
    s: SequenceLike,
    q: SequenceLike,
    *,
    max_rows: int = 40,
    value_format: str = "{:.3g}",
) -> str:
    """A text table of the optimal warping between *s* and *q*.

    One row per matched pair: indexes, values, cost, and a marker on
    the bottleneck pair.  Long alignments are elided in the middle.
    """
    if max_rows < 3:
        raise ValidationError(f"max_rows must be >= 3, got {max_rows}")
    s_arr = as_array(s, allow_empty=False)
    q_arr = as_array(q, allow_empty=False)
    report = explain_alignment(s_arr, q_arr)

    lines = [
        f"D_tw = {value_format.format(report.distance)}  "
        f"(bottleneck pair s[{report.bottleneck[0]}] ~ "
        f"q[{report.bottleneck[1]}]; stretch s x{report.s_stretch:.2f}, "
        f"q x{report.q_stretch:.2f})",
        f"{'s idx':>6} {'s val':>10}   {'q idx':>6} {'q val':>10} {'cost':>10}",
    ]

    rows = list(zip(report.pairs, report.costs))
    elided = len(rows) > max_rows
    if elided:
        head = rows[: max_rows // 2]
        tail = rows[-(max_rows - max_rows // 2) :]
        shown: list = head + [None] + tail
    else:
        shown = list(rows)

    for item in shown:
        if item is None:
            lines.append(f"{'...':>6}")
            continue
        (i, j), cost = item
        marker = "  <- bottleneck" if (i, j) == report.bottleneck else ""
        lines.append(
            f"{i:>6} {value_format.format(float(s_arr[i])):>10}   "
            f"{j:>6} {value_format.format(float(q_arr[j])):>10} "
            f"{value_format.format(cost):>10}{marker}"
        )
    return "\n".join(lines)
