"""Distance substrate: Lp distances, DTW, global constraints, lower bounds.

This package implements every distance the paper touches:

* :mod:`repro.distance.base` — the ``L_p`` family used both as whole-
  sequence distances and as the ``D_base`` element distance inside DTW.
* :mod:`repro.distance.dtw` — the time-warping distance, in the paper's
  two formulations: Definition 1 (additive, any ``L_p`` base) and
  Definition 2 (the ``L_inf``/max recurrence the paper adopts).
* :mod:`repro.distance.bands` — Sakoe–Chiba / Itakura global constraints
  (extension; the paper uses unconstrained warping).
* :mod:`repro.distance.lb_yi` — the Yi–Jagadish–Faloutsos lower bound
  used by the LB-Scan baseline.
* :mod:`repro.distance.lb_keogh` — the LB_Keogh envelope bound
  (extension, for the lower-bound tightness ablation).
"""

from .alignment import AlignmentReport, explain_alignment, render_alignment
from .base import (
    BaseDistance,
    L1,
    L2,
    LINF,
    LpDistance,
    euclidean,
    manhattan,
    maximum,
    lp_distance,
)
from .bands import full_window, itakura_window, sakoe_chiba_window
from .dtw import (
    DtwResult,
    dtw_additive,
    dtw_additive_matrix,
    dtw_distance,
    dtw_max,
    dtw_max_early_abandon,
    dtw_max_matrix,
    warping_path,
)
from .kernels import (
    KERNELS,
    DtwKernel,
    available_kernels,
    get_kernel,
    set_kernel,
    use_kernel,
)
from .lb_keogh import lb_keogh, warping_envelope
from .lb_yi import lb_yi
from .pairwise import pairwise_dtw, pairwise_dtw_within

__all__ = [
    "AlignmentReport",
    "explain_alignment",
    "render_alignment",
    "BaseDistance",
    "L1",
    "L2",
    "LINF",
    "LpDistance",
    "euclidean",
    "manhattan",
    "maximum",
    "lp_distance",
    "full_window",
    "itakura_window",
    "sakoe_chiba_window",
    "DtwResult",
    "dtw_additive",
    "dtw_additive_matrix",
    "dtw_distance",
    "dtw_max",
    "dtw_max_early_abandon",
    "dtw_max_matrix",
    "warping_path",
    "KERNELS",
    "DtwKernel",
    "available_kernels",
    "get_kernel",
    "set_kernel",
    "use_kernel",
    "lb_keogh",
    "warping_envelope",
    "lb_yi",
    "pairwise_dtw",
    "pairwise_dtw_within",
]
