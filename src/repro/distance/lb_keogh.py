"""LB_Keogh — envelope lower bound for *band-constrained* DTW (extension).

Not part of the ICDE 2001 paper (it post-dates it by a year); included
because the lower-bound tightness ablation (bench A5) compares the
paper's LB_Kim against the bound that ultimately superseded it.

Given a query ``Q`` and a Sakoe–Chiba radius ``r``, the *warping
envelope* is::

    U_i = max(q_{i-r} .. q_{i+r})      L_i = min(q_{i-r} .. q_{i+r})

Any warping path admissible under the band matches ``s_i`` only to
elements within ``[L_i, U_i]``, so the element contributes at least its
distance to that interval.  Accumulating those contributions under the
chosen rule (sum for ``L1``, sum-of-squares for ``L2``, max for the
paper's ``LINF``) lower-bounds the band-constrained DTW.  Requires
``|S| == |Q|`` (the classical setting of the bound).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import LengthMismatchError, ValidationError
from ..types import SequenceLike, as_array
from .base import BaseDistance, LINF

__all__ = ["warping_envelope", "lb_keogh"]


def warping_envelope(
    q: SequenceLike, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Upper and lower warping envelopes of *q* for a Sakoe–Chiba band.

    Returns ``(upper, lower)`` arrays of the same length as *q* where
    ``upper[i] = max(q[i-radius : i+radius+1])`` (clipped to the array
    bounds) and ``lower[i]`` is the corresponding minimum.
    """
    arr = as_array(q, allow_empty=False)
    if radius < 0:
        raise ValidationError(f"radius must be non-negative, got {radius}")
    n = arr.size
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - radius)
        hi = min(n, i + radius + 1)
        window = arr[lo:hi]
        upper[i] = window.max()
        lower[i] = window.min()
    return upper, lower


def lb_keogh(
    s: SequenceLike,
    q: SequenceLike,
    *,
    radius: int,
    base: BaseDistance = LINF,
) -> float:
    """LB_Keogh lower bound of band-constrained DTW between *s* and *q*.

    *radius* is the Sakoe–Chiba band radius the DTW is constrained to;
    *base* is the accumulation rule of the bounded DTW.  The envelope is
    built over *q* (the query) and *s* plays the data-sequence role, the
    standard orientation for index-time use.
    """
    s_arr = as_array(s, allow_empty=False)
    q_arr = as_array(q, allow_empty=False)
    if s_arr.size != q_arr.size:
        raise LengthMismatchError(
            f"LB_Keogh requires equal lengths, got {s_arr.size} and {q_arr.size}"
        )
    upper, lower = warping_envelope(q_arr, radius)
    above = np.clip(s_arr - upper, 0.0, None)
    below = np.clip(lower - s_arr, 0.0, None)
    excess = above + below  # at most one of the two is non-zero per element
    if base is LINF:
        return float(excess.max())
    if base is BaseDistance.L1:
        return float(excess.sum())
    if base is BaseDistance.L2:
        return float(np.sqrt(np.square(excess).sum()))
    raise ValidationError(f"unsupported base distance {base}")
