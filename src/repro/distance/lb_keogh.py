"""LB_Keogh — envelope lower bound for *band-constrained* DTW (extension).

Not part of the ICDE 2001 paper (it post-dates it by a year); included
because the lower-bound tightness ablation (bench A5) compares the
paper's LB_Kim against the bound that ultimately superseded it.

Given a query ``Q`` and a Sakoe–Chiba radius ``r``, the *warping
envelope* is::

    U_i = max(q_{i-r} .. q_{i+r})      L_i = min(q_{i-r} .. q_{i+r})

Any warping path admissible under the band matches ``s_i`` only to
elements within ``[L_i, U_i]``, so the element contributes at least its
distance to that interval.  Accumulating those contributions under the
chosen rule (sum for ``L1``, sum-of-squares for ``L2``, max for the
paper's ``LINF``) lower-bounds the band-constrained DTW.  Requires
``|S| == |Q|`` (the classical setting of the bound).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import LengthMismatchError, ValidationError
from ..types import SequenceLike, as_array
from .base import BaseDistance, LINF

__all__ = ["warping_envelope", "lb_keogh", "lb_keogh_batch"]


def warping_envelope(
    q: SequenceLike, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Upper and lower warping envelopes of *q* for a Sakoe–Chiba band.

    Returns ``(upper, lower)`` arrays of the same length as *q* where
    ``upper[i] = max(q[i-radius : i+radius+1])`` (clipped to the array
    bounds) and ``lower[i]`` is the corresponding minimum.
    """
    arr = as_array(q, allow_empty=False)
    if radius < 0:
        raise ValidationError(f"radius must be non-negative, got {radius}")
    n = arr.size
    # Beyond n-1 every window already spans the whole array.
    r = min(radius, n - 1)
    if r == 0:
        return arr.copy(), arr.copy()
    window = 2 * r + 1
    padded_max = np.pad(arr, r, constant_values=-np.inf)
    padded_min = np.pad(arr, r, constant_values=np.inf)
    upper = np.lib.stride_tricks.sliding_window_view(padded_max, window).max(axis=1)
    lower = np.lib.stride_tricks.sliding_window_view(padded_min, window).min(axis=1)
    return upper, lower


def lb_keogh_batch(
    values: np.ndarray,
    upper: np.ndarray,
    lower: np.ndarray,
    *,
    base: BaseDistance = LINF,
) -> np.ndarray:
    """LB_Keogh from one query envelope to many equal-length sequences.

    *values* is a ``(k, n)`` matrix of data sequences (one per row) and
    ``(upper, lower)`` the query's length-``n`` envelope from
    :func:`warping_envelope`.  Returns a length-``k`` array of bounds —
    the whole-database form the filter cascade evaluates as a single
    matrix operation.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValidationError(
            f"values must be a (k, n) matrix, got shape {values.shape}"
        )
    if values.shape[1] != upper.shape[0] or upper.shape != lower.shape:
        raise LengthMismatchError(
            f"envelope length {upper.shape[0]} does not match "
            f"sequence length {values.shape[1]}"
        )
    excess = np.clip(values - upper, 0.0, None) + np.clip(lower - values, 0.0, None)
    if base is LINF:
        return excess.max(axis=1)
    if base is BaseDistance.L1:
        return excess.sum(axis=1)
    if base is BaseDistance.L2:
        return np.sqrt(np.square(excess).sum(axis=1))
    raise ValidationError(f"unsupported base distance {base}")


def lb_keogh(
    s: SequenceLike,
    q: SequenceLike,
    *,
    radius: int,
    base: BaseDistance = LINF,
) -> float:
    """LB_Keogh lower bound of band-constrained DTW between *s* and *q*.

    *radius* is the Sakoe–Chiba band radius the DTW is constrained to;
    *base* is the accumulation rule of the bounded DTW.  The envelope is
    built over *q* (the query) and *s* plays the data-sequence role, the
    standard orientation for index-time use.
    """
    s_arr = as_array(s, allow_empty=False)
    q_arr = as_array(q, allow_empty=False)
    if s_arr.size != q_arr.size:
        raise LengthMismatchError(
            f"LB_Keogh requires equal lengths, got {s_arr.size} and {q_arr.size}"
        )
    upper, lower = warping_envelope(q_arr, radius)
    above = np.clip(s_arr - upper, 0.0, None)
    below = np.clip(lower - s_arr, 0.0, None)
    excess = above + below  # at most one of the two is non-zero per element
    if base is LINF:
        return float(excess.max())
    if base is BaseDistance.L1:
        return float(excess.sum())
    if base is BaseDistance.L2:
        return float(np.sqrt(np.square(excess).sum()))
    raise ValidationError(f"unsupported base distance {base}")
