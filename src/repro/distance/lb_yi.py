"""The Yi–Jagadish–Faloutsos lower bound ``D_lb`` (used by LB-Scan).

Yi et al. (ICDE 1998) observed that under time warping every element of
``S`` must be matched to at least one element of ``Q`` and vice versa,
so any element that lies *outside the value range* of the other sequence
contributes at least its distance to that range.

For the additive (``L_1``) time-warping distance the bound is the larger
of the two one-sided sums::

    LB_S = sum_i max(0, s_i - max(Q), min(Q) - s_i)
    LB_Q = sum_j max(0, q_j - max(S), min(S) - q_j)
    D_lb = max(LB_S, LB_Q)

(The two sums cannot simply be added: when the value ranges are disjoint
the same matched pair would be double-counted and the "bound" could
exceed the true distance.)

For the paper's ``L_inf`` accumulation (Definition 2) the same argument
gives a max instead of a sum, which collapses to::

    D_lb = max(|Greatest(S) - Greatest(Q)|, |Smallest(S) - Smallest(Q)|)

— i.e. exactly the Greatest/Smallest half of the paper's ``D_tw-lb``.
This is why LB-Scan's filtering in Figure 2 is strictly weaker than
TW-Sim-Search's: the paper's bound adds the First/Last components.
Complexity is ``O(|S| + |Q|)`` either way.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ValidationError
from ..types import SequenceLike, as_array
from .base import BaseDistance, LINF

__all__ = ["lb_yi", "lb_yi_from_features"]


def lb_yi_from_features(features: np.ndarray, query_feature) -> np.ndarray:
    """Vectorized ``D_lb`` (``L_inf`` base) from stored feature vectors.

    Under the paper's Definition-2 distance the Yi et al. bound depends
    only on the Greatest/Smallest features, so one ``(n, 4)`` feature
    matrix in paper column order (first, last, greatest, smallest — as
    produced by :func:`repro.core.features.feature_array`) yields the
    bound to every stored sequence in a single matrix operation.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[1] != 4:
        raise ValidationError(
            f"features must have shape (n, 4), got {features.shape}"
        )
    q = np.asarray(tuple(query_feature), dtype=np.float64)
    if q.shape != (4,):
        raise ValidationError(f"query feature must have 4 components, got {q.shape}")
    return np.abs(features[:, 2:4] - q[2:4]).max(axis=1)


def lb_yi(
    s: SequenceLike, q: SequenceLike, *, base: BaseDistance = LINF
) -> float:
    """Yi et al.'s lower bound of the time-warping distance.

    *base* selects the accumulation rule of the DTW being bounded:
    :attr:`BaseDistance.L1` for Definition-1 DTW (the original setting
    of Yi et al.) or :attr:`BaseDistance.LINF` for the paper's
    Definition-2 DTW.  ``L2`` is not supported — Yi et al. defined the
    bound for additive absolute costs only.
    """
    s_arr = as_array(s)
    q_arr = as_array(q)
    if s_arr.size == 0 and q_arr.size == 0:
        return 0.0
    if s_arr.size == 0 or q_arr.size == 0:
        return math.inf

    s_max, s_min = float(s_arr.max()), float(s_arr.min())
    q_max, q_min = float(q_arr.max()), float(q_arr.min())

    if base is LINF:
        return max(abs(s_max - q_max), abs(s_min - q_min))
    if base is BaseDistance.L1:
        above_s = np.clip(s_arr - q_max, 0.0, None).sum()
        below_s = np.clip(q_min - s_arr, 0.0, None).sum()
        above_q = np.clip(q_arr - s_max, 0.0, None).sum()
        below_q = np.clip(s_min - q_arr, 0.0, None).sum()
        return float(max(above_s + below_s, above_q + below_q))
    raise ValidationError(f"lb_yi supports L1 and LINF bases, got {base}")
