"""Hierarchical metrics registry — the single measurement plane.

Every cost the experiments report — candidate-set sizes after each
cascade tier, index node reads, DTW cell work, simulated disk seconds —
used to live in four incompatible ad-hoc structures (``CascadeStats``,
backend ``AccessStats``, the storage ``IOStats`` charges and per-method
cost dataclasses).  This module provides the one registry they all
charge through:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` / :class:`Timer`
  instruments behind a thread-safe :class:`MetricsRegistry`, addressed
  by hierarchical dotted names (``cascade.lb_kim.pruned``,
  ``index.rtree.node_reads``, ``dtw.cells``).
* :class:`MetricsSnapshot` — an immutable point-in-time view supporting
  deterministic, bit-exact merging (integer counters sum exactly;
  merges applied in a fixed order are reproducible for floats too),
  which is what makes per-shard aggregation equal single-shard totals.
* An *ambient* registry carried in a :mod:`contextvars` variable so the
  low layers (DTW kernels, tree traversals, page charges) can report
  without threading a registry argument through every signature.  When
  no registry is active, :func:`count` / :func:`observe` are a context
  variable read and a ``None`` check — the null-sink fast path.

The legacy views (``CascadeStats``, ``IOStats``, ``AccessStats``,
``MethodStats``) survive as thin read-models; their numbers are charged
here first.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "Timer",
    "MetricsSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SnapshotHook",
    "active_registry",
    "use_registry",
    "count",
    "observe",
    "set_gauge",
    "timed",
    "merge_snapshots",
    "bucket_index",
    "bucket_upper_bound",
    "NONPOSITIVE_BUCKET",
    "BUCKETS_PER_OCTAVE",
]

#: Legal instrument names: dotted lowercase segments, digits, ``_``,
#: ``-`` and ``[]`` (used by per-shard labels like ``shard[2]``).
_NAME_RE = re.compile(r"^[a-z0-9_\-\[\]]+(\.[a-z0-9_\-\[\]]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValidationError(
            f"invalid metric name {name!r}: use dotted lowercase segments"
        )
    return name


class Counter:
    """A monotonically increasing sum (integer or float)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._value: float = 0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The accumulated sum (an ``int`` while every increment was)."""
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._value: float = 0
        self._lock = lock

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._value


#: Log-bucket resolution: each power-of-two octave is split into this
#: many sub-buckets, giving boundaries at ``2 ** (i / 4)`` — a ~19%
#: relative width, tight enough for latency/work quantiles while the
#: integer bucket counts stay bit-exact under N-shard merging.
BUCKETS_PER_OCTAVE = 4

#: Bucket index collecting every non-positive observation.  Real
#: ``frexp`` exponents are bounded by the float range (|index| < 5000),
#: so this sentinel can never collide with a value-derived index.
NONPOSITIVE_BUCKET = -(1 << 20)

#: Mantissa-doubling thresholds ``2 ** (i / 4)`` for i in 1..3; a
#: normalised mantissa in ``[1, 2)`` is compared against these to pick
#: the sub-bucket within its octave.
_SUB_BOUNDS = tuple(2.0 ** (i / BUCKETS_PER_OCTAVE) for i in range(1, BUCKETS_PER_OCTAVE))


def bucket_index(value: float) -> int:
    """The fixed log-bucket index covering *value*.

    Bucket ``i`` covers ``[2**(i/4), 2**((i+1)/4))``; non-positive
    values (and NaN) fall into :data:`NONPOSITIVE_BUCKET`.  The mapping
    uses only ``frexp`` and exact boundary comparisons, so it is
    bit-stable across platforms and partitionings.
    """
    if not value > 0.0:  # catches 0, negatives and NaN
        return NONPOSITIVE_BUCKET
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    doubled = mantissa * 2.0  # in [1, 2)
    sub = 0
    for bound in _SUB_BOUNDS:
        if doubled >= bound:
            sub += 1
    return (exponent - 1) * BUCKETS_PER_OCTAVE + sub


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper boundary of bucket *index* (0.0 for the sentinel)."""
    if index == NONPOSITIVE_BUCKET:
        return 0.0
    return 2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE)


@dataclass(frozen=True)
class HistogramSummary:
    """Immutable summary of one histogram's observations.

    ``buckets`` is a sorted tuple of ``(bucket_index, count)`` pairs
    over the fixed log-bucket grid (see :func:`bucket_index`).  Because
    the per-bucket counts are integers, merging N per-shard summaries
    sums them exactly — the merged bucket vector, and therefore every
    quantile read from it, is identical however the work was
    partitioned.
    """

    count: int
    total: float
    minimum: float
    maximum: float
    buckets: tuple[tuple[int, int], ...] = ()

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The *q*-quantile estimated from the bucket vector.

        Walks the cumulative bucket counts to the bucket holding the
        ceil(q * count)-th observation and reports that bucket's upper
        boundary clamped into ``[minimum, maximum]`` — a deterministic
        function of (buckets, minimum, maximum), hence partition
        invariant.  Falls back to the exact extrema when the summary
        predates bucket tracking (empty ``buckets``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile fraction must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if not self.buckets:
            return self.maximum if q >= 0.5 else self.minimum
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in self.buckets:
            cumulative += bucket_count
            if cumulative >= target:
                estimate = bucket_upper_bound(index)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    @property
    def p50(self) -> float:
        """Median estimate (see :meth:`quantile`)."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile estimate (see :meth:`quantile`)."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile estimate (see :meth:`quantile`)."""
        return self.quantile(0.99)

    def merged(self, other: "HistogramSummary") -> "HistogramSummary":
        """Combine two summaries (counts/totals/buckets sum, extrema widen).

        Merging an empty summary (count 0) is an identity in either
        order — its 0.0 min/max sentinels never reach the result.
        """
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        merged_buckets: dict[int, int] = dict(self.buckets)
        for index, bucket_count in other.buckets:
            merged_buckets[index] = merged_buckets.get(index, 0) + bucket_count
        return HistogramSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            buckets=tuple(sorted(merged_buckets.items())),
        )


class Histogram:
    """Streaming count/total/min/max plus fixed log-bucket counts."""

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_buckets", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._buckets: dict[int, int] = {}
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bucket_index(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def summary(self) -> HistogramSummary:
        """The current :class:`HistogramSummary`."""
        with self._lock:
            if self._count == 0:
                return HistogramSummary(0, 0.0, 0.0, 0.0)
            return HistogramSummary(
                self._count,
                self._total,
                self._min,
                self._max,
                tuple(sorted(self._buckets.items())),
            )


class Timer:
    """Context manager observing elapsed wall seconds into a histogram.

    With no histogram attached (the null-sink path) the clock is never
    read, keeping disabled-observability overhead at a branch.

    >>> registry = MetricsRegistry()
    >>> with registry.timer("engine.search.seconds"):
    ...     pass
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram | None) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        if self._histogram is not None:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._histogram is not None:
            self._histogram.observe(time.perf_counter() - self._start)


@dataclass(frozen=True)
class MetricsSnapshot(Mapping[str, float]):
    """An immutable point-in-time view of a registry's instruments.

    Behaves as a mapping over counter and gauge values; histogram
    summaries live under :attr:`histograms`.  Merging is deterministic:
    integer counters sum exactly (the bit-identical shard-merge
    guarantee), gauges take the right operand, histograms combine.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    def __getitem__(self, name: str) -> float:
        if name in self.counters:
            return self.counters[name]
        return self.gauges[name]

    def __iter__(self) -> Iterator[str]:
        yield from self.counters
        yield from self.gauges

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges)

    def counter(self, name: str, default: float = 0) -> float:
        """Counter value, or *default* when never charged."""
        return self.counters.get(name, default)

    def group(self, prefix: str) -> dict[str, float]:
        """All counters under ``prefix.`` (name -> value, sorted)."""
        head = prefix + "."
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith(head)
        }

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot with *other* folded in (see class docs)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = summary if mine is None else mine.merged(summary)
        return MetricsSnapshot(counters, gauges, histograms)


def merge_snapshots(snapshots: "list[MetricsSnapshot]") -> MetricsSnapshot:
    """Left-to-right fold of *snapshots* (deterministic order)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merged(snapshot)
    return merged


#: Callback invoked with every snapshot a registry takes — the
#: profiling-hook API (see :mod:`repro.obs.export` for ready-made hooks).
SnapshotHook = Callable[[MetricsSnapshot], None]


class MetricsRegistry:
    """Thread-safe home of named instruments.

    Instruments are created on first use and live for the registry's
    lifetime; one re-entrant lock serializes all mutation, so concurrent
    shard threads can charge the same registry without losing updates.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._hooks: list[SnapshotHook] = []

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = Counter(_check_name(name), self._lock)
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = Gauge(_check_name(name), self._lock)
                    self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = Histogram(_check_name(name), self._lock)
                    self._histograms[name] = instrument
        return instrument

    def timer(self, name: str) -> Timer:
        """A context manager timing into the histogram *name*."""
        return Timer(self.histogram(name))

    # -- convenience charging ------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment the counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into the histogram *name*."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        self.gauge(name).set(value)

    # -- lifecycle -----------------------------------------------------------

    def add_hook(self, hook: SnapshotHook) -> None:
        """Invoke *hook* with every snapshot this registry takes."""
        with self._lock:
            self._hooks.append(hook)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of every instrument's current value."""
        with self._lock:
            snapshot = MetricsSnapshot(
                counters={
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                gauges={
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                histograms={
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            )
            hooks = list(self._hooks)
        for hook in hooks:
            hook(snapshot)
        return snapshot

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's values into this registry's instruments.

        Used to accumulate per-query registries into an engine- or
        shard-level cumulative registry; integer counters stay exact.
        """
        with self._lock:
            for name, value in snapshot.counters.items():
                self.counter(name).inc(value)
            for name, value in snapshot.gauges.items():
                self.gauge(name).set(value)
            for name, summary in snapshot.histograms.items():
                histogram = self.histogram(name)
                if summary.count:
                    histogram._count += summary.count
                    histogram._total += summary.total
                    if summary.minimum < histogram._min:
                        histogram._min = summary.minimum
                    if summary.maximum > histogram._max:
                        histogram._max = summary.maximum
                    buckets = histogram._buckets
                    for index, bucket_count in summary.buckets:
                        buckets[index] = buckets.get(index, 0) + bucket_count

    def reset(self) -> None:
        """Drop every instrument (names are forgotten, not zeroed)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the explicit null sink.

    Instruments are still handed out (shared no-op singletons are not
    needed: the mutators themselves no-op), so code holding a registry
    reference never branches.
    """

    def count(self, name: str, amount: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def timer(self, name: str) -> Timer:
        return Timer(None)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        return None

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()


#: Shared null sink: activate with ``use_registry(NULL_REGISTRY)`` to
#: exercise the instrumented code paths without recording anything.
NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# Ambient registry (contextvars)
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def active_registry() -> MetricsRegistry | None:
    """The registry charges currently flow to (None = observability off)."""
    return _ACTIVE.get()


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Make *registry* the ambient charge target for the with-block.

    Context-local: concurrent threads and shard workers given a copied
    context each see their own activation, which is what isolates
    per-query registries from one another.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def count(name: str, amount: float = 1) -> None:
    """Charge *amount* to counter *name* on the ambient registry.

    The instrumentation call every hot path uses: when no registry is
    active this is one context-variable read and a ``None`` check.
    """
    registry = _ACTIVE.get()
    if registry is not None:
        registry.count(name, amount)


def observe(name: str, value: float) -> None:
    """Record *value* into histogram *name* on the ambient registry."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* on the ambient registry."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.set_gauge(name, value)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time the with-block into histogram *name* on the ambient registry.

    The wall-clock entry point instrumented code uses: when no registry
    is active (or the null sink is) the clock is never read, so the
    disabled path stays a context-variable read and a ``None`` check.
    """
    registry = _ACTIVE.get()
    if registry is None:
        yield
        return
    with registry.timer(name):
        yield
