"""Lightweight trace spans that survive the shard thread pool.

A :class:`Span` is a named, timed, attributed node in a tree; a
:class:`Tracer` hands them out as context managers and keeps every
finished root.  The current span and the active tracer live in
:mod:`contextvars` variables, so

* nested ``with span(...)`` blocks parent correctly without any global
  mutable state, and
* :class:`~repro.core.sharding.ShardedDatabase` can hand each worker
  thread a *copy* of the submitting context (``contextvars.copy_context``)
  and the per-shard spans attach under the fan-out span of the query —
  the per-shard merge the multi-layer accounting needs.

When no tracer is active, :func:`maybe_span` yields ``None`` without
taking a timestamp — the same null-sink discipline the metrics layer
uses.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "AttrValue",
    "Span",
    "SpanGrafter",
    "Tracer",
    "SpanHook",
    "active_tracer",
    "use_tracer",
    "current_span",
    "attach_to",
    "maybe_span",
]

#: Attribute values a span may carry — the JSON-safe scalar types, so
#: exported traces (flamegraphs, query logs) serialize without surprises.
AttrValue = str | int | float | bool | None


def _coerce_attr(value: object) -> AttrValue:
    """Clamp *value* to :data:`AttrValue` (repr anything exotic)."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    return repr(value)


@dataclass
class Span:
    """One named, timed region of work.

    Attributes
    ----------
    name:
        Dotted region name (``sharded.search``, ``engine.search``).
    attributes:
        Small typed key/value payload (backend name, shard index,
        epsilon) — values are clamped to JSON-safe scalars.
    start / end:
        ``time.perf_counter`` stamps; *end* is ``None`` while open.
        Only meaningful relative to each other within one process.
    wall_start:
        ``time.time`` stamp taken when the span opened — comparable
        across processes, which is what lets worker span trees line up
        on one timeline after the process executor grafts them back.
    children:
        Spans opened (possibly on other threads) while this one was
        the context's current span.
    """

    name: str
    attributes: dict[str, AttrValue] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    wall_start: float = 0.0
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: object) -> None:
        """Attach *key* = *value* (clamped to a JSON-safe scalar)."""
        self.attributes[key] = _coerce_attr(value)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span in the subtree called *name*."""
        return [span for span in self.walk() if span.name == name]


#: Callback invoked with every *root* span a tracer finishes — the
#: span-side profiling-hook API.
SpanHook = Callable[[Span], None]


class Tracer:
    """Factory and sink for spans.

    One lock serializes tree mutation, so shard workers appending child
    spans to the same parent never lose siblings.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._hooks: list[SpanHook] = []

    @property
    def roots(self) -> list[Span]:
        """Finished top-level spans, completion order."""
        with self._lock:
            return list(self._roots)

    def add_hook(self, hook: SpanHook) -> None:
        """Invoke *hook* with every finished root span."""
        with self._lock:
            self._hooks.append(hook)

    def reset(self) -> None:
        """Forget every finished span (hooks are kept)."""
        with self._lock:
            self._roots.clear()

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span under the context's current span."""
        parent = _CURRENT_SPAN.get()
        span = Span(
            name=name,
            attributes={key: _coerce_attr(value) for key, value in attributes.items()},
        )
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        token = _CURRENT_SPAN.set(span)
        span.wall_start = time.time()
        span.start = time.perf_counter()
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            _CURRENT_SPAN.reset(token)
            if parent is None:
                with self._lock:
                    self._roots.append(span)
                    hooks = list(self._hooks)
                for hook in hooks:
                    hook(span)

    def __repr__(self) -> str:
        return f"Tracer({len(self._roots)} finished root span(s))"


_ACTIVE_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_obs_tracer", default=None
)
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_obs_span", default=None
)


def active_tracer() -> Tracer | None:
    """The tracer spans currently flow to (None = tracing off)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Make *tracer* the ambient span sink for the with-block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def maybe_span(name: str, **attributes: object) -> Iterator[Span | None]:
    """Open a span when a tracer is active; otherwise a free no-op."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attributes) as span:
        yield span


@contextmanager
def attach_to(span: Span | None) -> Iterator[None]:
    """Make *span* the context's current span for the with-block.

    The span is not timed or re-parented — this only redirects where
    child spans opened inside the block attach.  Passing ``None``
    detaches the block from any enclosing span.
    """
    token = _CURRENT_SPAN.set(span)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(token)


class SpanGrafter:
    """Deterministic shard-order grafting of fan-out span subtrees.

    Shard executors complete work in whatever order the pool schedules
    it; appending child spans at *open* time therefore interleaves
    nondeterministically.  A grafter instead hands each shard a
    detached holder span to parent under (via :func:`attach_to`), then
    :meth:`graft` re-attaches every collected subtree under the
    submitting context's current span strictly in shard order, tagging
    each subtree root with its ``shard`` index.
    """

    __slots__ = ("_parent", "_holders")

    def __init__(self, n_shards: int) -> None:
        self._parent = _CURRENT_SPAN.get()
        self._holders: list[Span] = [Span(name="detached") for _ in range(n_shards)]

    @property
    def enabled(self) -> bool:
        """Whether there is a fan-out span to graft under."""
        return self._parent is not None

    def holder(self, shard: int) -> Span | None:
        """The detached holder for *shard* (None when tracing is off)."""
        if self._parent is None:
            return None
        return self._holders[shard]

    def add(self, shard: int, spans: Iterator[Span] | list[Span]) -> None:
        """Record already-detached *spans* (e.g. worker replies) for *shard*."""
        if self._parent is not None:
            self._holders[shard].children.extend(spans)

    def graft(self) -> None:
        """Attach every collected subtree under the parent, shard order."""
        parent = self._parent
        if parent is None:
            return
        for shard, holder in enumerate(self._holders):
            for root in holder.children:
                root.attributes.setdefault("shard", shard)
                parent.children.append(root)
