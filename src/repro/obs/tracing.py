"""Lightweight trace spans that survive the shard thread pool.

A :class:`Span` is a named, timed, attributed node in a tree; a
:class:`Tracer` hands them out as context managers and keeps every
finished root.  The current span and the active tracer live in
:mod:`contextvars` variables, so

* nested ``with span(...)`` blocks parent correctly without any global
  mutable state, and
* :class:`~repro.core.sharding.ShardedDatabase` can hand each worker
  thread a *copy* of the submitting context (``contextvars.copy_context``)
  and the per-shard spans attach under the fan-out span of the query —
  the per-shard merge the multi-layer accounting needs.

When no tracer is active, :func:`maybe_span` yields ``None`` without
taking a timestamp — the same null-sink discipline the metrics layer
uses.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "SpanHook",
    "active_tracer",
    "use_tracer",
    "current_span",
    "maybe_span",
]


@dataclass
class Span:
    """One named, timed region of work.

    Attributes
    ----------
    name:
        Dotted region name (``sharded.search``, ``engine.search``).
    attributes:
        Small key/value payload (backend name, shard index, epsilon).
    start / end:
        ``time.perf_counter`` stamps; *end* is ``None`` while open.
    children:
        Spans opened (possibly on other threads) while this one was
        the context's current span.
    """

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span in the subtree called *name*."""
        return [span for span in self.walk() if span.name == name]


#: Callback invoked with every *root* span a tracer finishes — the
#: span-side profiling-hook API.
SpanHook = Callable[[Span], None]


class Tracer:
    """Factory and sink for spans.

    One lock serializes tree mutation, so shard workers appending child
    spans to the same parent never lose siblings.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._hooks: list[SpanHook] = []

    @property
    def roots(self) -> list[Span]:
        """Finished top-level spans, completion order."""
        with self._lock:
            return list(self._roots)

    def add_hook(self, hook: SpanHook) -> None:
        """Invoke *hook* with every finished root span."""
        with self._lock:
            self._hooks.append(hook)

    def reset(self) -> None:
        """Forget every finished span (hooks are kept)."""
        with self._lock:
            self._roots.clear()

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span under the context's current span."""
        parent = _CURRENT_SPAN.get()
        span = Span(name=name, attributes=dict(attributes))
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        token = _CURRENT_SPAN.set(span)
        span.start = time.perf_counter()
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            _CURRENT_SPAN.reset(token)
            if parent is None:
                with self._lock:
                    self._roots.append(span)
                    hooks = list(self._hooks)
                for hook in hooks:
                    hook(span)

    def __repr__(self) -> str:
        return f"Tracer({len(self._roots)} finished root span(s))"


_ACTIVE_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_obs_tracer", default=None
)
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_obs_span", default=None
)


def active_tracer() -> Tracer | None:
    """The tracer spans currently flow to (None = tracing off)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Make *tracer* the ambient span sink for the with-block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def maybe_span(name: str, **attributes: object) -> Iterator[Span | None]:
    """Open a span when a tracer is active; otherwise a free no-op."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attributes) as span:
        yield span
