"""Exporters for metrics snapshots and span trees.

Three output shapes cover the consumers the repo already has:

* JSON — the CI artifact and anything programmatic,
* CSV — spreadsheets / the eval harness' result tables,
* pretty tables / trees — the CLI ``--metrics`` / ``--trace`` flags.

Plus the profiling-hook constructors: :func:`json_file_hook` and
:func:`span_json_file_hook` return callables suitable for
``MetricsRegistry.add_hook`` / ``Tracer.add_hook`` that persist every
snapshot / finished root span to disk.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from pathlib import Path

from .metrics import MetricsSnapshot, SnapshotHook
from .tracing import Span, SpanHook

__all__ = [
    "snapshot_to_dict",
    "snapshot_to_json",
    "snapshot_to_csv",
    "render_table",
    "render_metrics_table",
    "render_pruning_waterfall",
    "span_to_dict",
    "spans_to_json",
    "render_span_tree",
    "json_file_hook",
    "span_json_file_hook",
]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict[str, object]:
    """A plain-data form of *snapshot* (JSON-ready)."""
    return {
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": dict(sorted(snapshot.gauges.items())),
        "histograms": {
            name: {
                "count": summary.count,
                "total": summary.total,
                "min": summary.minimum,
                "max": summary.maximum,
                "mean": summary.mean,
            }
            for name, summary in sorted(snapshot.histograms.items())
        },
    }


def snapshot_to_json(snapshot: MetricsSnapshot, *, indent: int = 2) -> str:
    """*snapshot* as a JSON document."""
    return json.dumps(snapshot_to_dict(snapshot), indent=indent, sort_keys=True)


def snapshot_to_csv(snapshot: MetricsSnapshot) -> str:
    """*snapshot* as ``kind,name,value`` CSV rows (histograms -> mean)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "value"])
    for name, value in sorted(snapshot.counters.items()):
        writer.writerow(["counter", name, value])
    for name, value in sorted(snapshot.gauges.items()):
        writer.writerow(["gauge", name, value])
    for name, summary in sorted(snapshot.histograms.items()):
        writer.writerow(["histogram", name, summary.mean])
    return buffer.getvalue()


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.6g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A generic fixed-width text table (headers, dashed rule, rows).

    The shared renderer behind the metrics table and the lint report:
    column widths fit the widest cell, the last column is not padded.
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    ).rstrip()
    lines: list[str] = []
    if title is not None:
        lines.append(title)
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def render_metrics_table(snapshot: MetricsSnapshot) -> str:
    """A fixed-width table of every instrument, grouped and sorted."""
    rows: list[tuple[str, str, str]] = []
    for name, value in sorted(snapshot.counters.items()):
        rows.append(("counter", name, _format_value(value)))
    for name, value in sorted(snapshot.gauges.items()):
        rows.append(("gauge", name, _format_value(value)))
    for name, summary in sorted(snapshot.histograms.items()):
        detail = (
            f"n={summary.count} mean={summary.mean:.6g} "
            f"min={summary.minimum:.6g} max={summary.maximum:.6g}"
        )
        rows.append(("histogram", name, detail))
    if not rows:
        return "(no metrics recorded)"
    return render_table(("kind", "name", "value"), rows)


def render_pruning_waterfall(
    stages: Sequence[tuple[str, int, int]],
    snapshot: MetricsSnapshot,
) -> str:
    """One query's pruning waterfall: per-tier survival plus work cost.

    *stages* are ordered ``(name, candidates_in, candidates_out)``
    triples (e.g. from ``CascadeStats``); *snapshot* is the same query's
    metrics snapshot, mined for the work each surviving candidate cost —
    index node reads, DTW cells, early-abandon depth, storage pages.
    The function takes plain data, not core types, so it renders any
    layer's counters without an import cycle.
    """
    lines: list[str] = []
    if stages:
        name_w = max(len("stage"), max(len(name) for name, _, _ in stages))
        header = (
            f"{'stage':<{name_w}}  {'in':>8}  {'out':>8}  "
            f"{'pruned':>8}  kept"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, n_in, n_out in stages:
            pruned = n_in - n_out
            kept = f"{n_out / n_in:7.1%}" if n_in else "      -"
            lines.append(
                f"{name:<{name_w}}  {n_in:>8,}  {n_out:>8,}  "
                f"{pruned:>8,}  {kept}"
            )
    else:
        lines.append("(no cascade stages recorded)")

    counters = snapshot.counters
    node_reads = sum(
        value
        for name, value in counters.items()
        if name.startswith("index.") and name.endswith(".node_reads")
    )
    cost_rows: list[tuple[str, str]] = []
    if node_reads:
        cost_rows.append(("index node reads", _format_value(node_reads)))
    for label, counter in (
        ("DTW cells computed", "dtw.cells"),
        ("DTW verifications", "dtw.verifications"),
        ("early abandons", "dtw.early_abandons"),
        ("storage pages (random)", "storage.random_pages"),
        ("storage pages (sequential)", "storage.sequential_pages"),
    ):
        value = counters.get(counter)
        if value:
            cost_rows.append((label, _format_value(value)))
    depth = snapshot.histograms.get("dtw.abandon_depth")
    if depth is not None and depth.count:
        cost_rows.append(
            (
                "early-abandon depth",
                f"mean {depth.mean:.1f} rows "
                f"(min {depth.minimum:.0f}, max {depth.maximum:.0f}, "
                f"n={depth.count})",
            )
        )
    if cost_rows:
        lines.append("")
        label_w = max(len(label) for label, _ in cost_rows)
        for label, value in cost_rows:
            lines.append(f"{label:<{label_w}}  {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


def span_to_dict(span: Span) -> dict[str, object]:
    """A plain-data form of *span* and its subtree (JSON-ready)."""
    return {
        "name": span.name,
        "attributes": dict(span.attributes),
        "duration_seconds": span.duration,
        "children": [span_to_dict(child) for child in span.children],
    }


def spans_to_json(spans: list[Span], *, indent: int = 2) -> str:
    """A list of root spans as a JSON document."""
    return json.dumps(
        [span_to_dict(span) for span in spans], indent=indent, sort_keys=True
    )


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attributes:
        joined = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        attrs = f"  [{joined}]"
    lines.append(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f} ms{attrs}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_tree(spans: list[Span]) -> str:
    """Indented text tree of *spans* with millisecond durations."""
    if not spans:
        return "(no spans recorded)"
    lines: list[str] = []
    for span in spans:
        _render_span(span, 0, lines)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------


def json_file_hook(path: str | Path) -> SnapshotHook:
    """A snapshot hook that (re)writes *path* with the latest snapshot."""
    target = Path(path)

    def hook(snapshot: MetricsSnapshot) -> None:
        target.write_text(snapshot_to_json(snapshot) + "\n")

    return hook


def span_json_file_hook(path: str | Path) -> SpanHook:
    """A span hook appending each finished root span to *path* (JSONL)."""
    target = Path(path)

    def hook(span: Span) -> None:
        with target.open("a") as handle:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True) + "\n")

    return hook
