"""Exporters for metrics snapshots and span trees.

Three output shapes cover the consumers the repo already has:

* JSON — the CI artifact and anything programmatic,
* CSV — spreadsheets / the eval harness' result tables,
* pretty tables / trees — the CLI ``--metrics`` / ``--trace`` flags.

Plus the profiling-hook constructors: :func:`json_file_hook` and
:func:`span_json_file_hook` return callables suitable for
``MetricsRegistry.add_hook`` / ``Tracer.add_hook`` that persist every
snapshot / finished root span to disk.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from pathlib import Path

from .metrics import MetricsSnapshot, SnapshotHook
from .tracing import Span, SpanHook

__all__ = [
    "snapshot_to_dict",
    "snapshot_to_json",
    "snapshot_to_csv",
    "render_table",
    "render_metrics_table",
    "render_pruning_waterfall",
    "span_to_dict",
    "spans_to_json",
    "render_span_tree",
    "render_span_timeline",
    "spans_to_folded",
    "render_flamegraph_svg",
    "json_file_hook",
    "span_json_file_hook",
]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict[str, object]:
    """A plain-data form of *snapshot* (JSON-ready)."""
    return {
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": dict(sorted(snapshot.gauges.items())),
        "histograms": {
            name: {
                "count": summary.count,
                "total": summary.total,
                "min": summary.minimum,
                "max": summary.maximum,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
                "buckets": [list(pair) for pair in summary.buckets],
            }
            for name, summary in sorted(snapshot.histograms.items())
        },
    }


def snapshot_to_json(snapshot: MetricsSnapshot, *, indent: int = 2) -> str:
    """*snapshot* as a JSON document."""
    return json.dumps(snapshot_to_dict(snapshot), indent=indent, sort_keys=True)


def snapshot_to_csv(snapshot: MetricsSnapshot) -> str:
    """*snapshot* as ``kind,name,value`` CSV rows (histograms -> mean)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "value"])
    for name, value in sorted(snapshot.counters.items()):
        writer.writerow(["counter", name, value])
    for name, value in sorted(snapshot.gauges.items()):
        writer.writerow(["gauge", name, value])
    for name, summary in sorted(snapshot.histograms.items()):
        writer.writerow(["histogram", name, summary.mean])
    return buffer.getvalue()


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.6g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A generic fixed-width text table (headers, dashed rule, rows).

    The shared renderer behind the metrics table and the lint report:
    column widths fit the widest cell, the last column is not padded.
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    ).rstrip()
    lines: list[str] = []
    if title is not None:
        lines.append(title)
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def render_metrics_table(snapshot: MetricsSnapshot) -> str:
    """A fixed-width table of every instrument, grouped and sorted."""
    rows: list[tuple[str, str, str]] = []
    for name, value in sorted(snapshot.counters.items()):
        rows.append(("counter", name, _format_value(value)))
    for name, value in sorted(snapshot.gauges.items()):
        rows.append(("gauge", name, _format_value(value)))
    for name, summary in sorted(snapshot.histograms.items()):
        detail = (
            f"n={summary.count} mean={summary.mean:.6g} "
            f"min={summary.minimum:.6g} max={summary.maximum:.6g} "
            f"p50={summary.p50:.6g} p95={summary.p95:.6g} "
            f"p99={summary.p99:.6g}"
        )
        rows.append(("histogram", name, detail))
    if not rows:
        return "(no metrics recorded)"
    return render_table(("kind", "name", "value"), rows)


def render_pruning_waterfall(
    stages: Sequence[tuple[str, int, int]],
    snapshot: MetricsSnapshot,
) -> str:
    """One query's pruning waterfall: per-tier survival plus work cost.

    *stages* are ordered ``(name, candidates_in, candidates_out)``
    triples (e.g. from ``CascadeStats``); *snapshot* is the same query's
    metrics snapshot, mined for the work each surviving candidate cost —
    index node reads, DTW cells, early-abandon depth, storage pages.
    The function takes plain data, not core types, so it renders any
    layer's counters without an import cycle.
    """
    lines: list[str] = []
    if stages:
        name_w = max(len("stage"), max(len(name) for name, _, _ in stages))
        header = (
            f"{'stage':<{name_w}}  {'in':>8}  {'out':>8}  "
            f"{'pruned':>8}  kept"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, n_in, n_out in stages:
            pruned = n_in - n_out
            kept = f"{n_out / n_in:7.1%}" if n_in else "      -"
            lines.append(
                f"{name:<{name_w}}  {n_in:>8,}  {n_out:>8,}  "
                f"{pruned:>8,}  {kept}"
            )
    else:
        lines.append("(no cascade stages recorded)")

    counters = snapshot.counters
    node_reads = sum(
        value
        for name, value in counters.items()
        if name.startswith("index.") and name.endswith(".node_reads")
    )
    cost_rows: list[tuple[str, str]] = []
    if node_reads:
        cost_rows.append(("index node reads", _format_value(node_reads)))
    for label, counter in (
        ("DTW cells computed", "dtw.cells"),
        ("DTW verifications", "dtw.verifications"),
        ("early abandons", "dtw.early_abandons"),
        ("storage pages (random)", "storage.random_pages"),
        ("storage pages (sequential)", "storage.sequential_pages"),
    ):
        value = counters.get(counter)
        if value:
            cost_rows.append((label, _format_value(value)))
    depth = snapshot.histograms.get("dtw.abandon_depth")
    if depth is not None and depth.count:
        cost_rows.append(
            (
                "early-abandon depth",
                f"mean {depth.mean:.1f} rows "
                f"(min {depth.minimum:.0f}, max {depth.maximum:.0f}, "
                f"n={depth.count})",
            )
        )
    if cost_rows:
        lines.append("")
        label_w = max(len(label) for label, _ in cost_rows)
        for label, value in cost_rows:
            lines.append(f"{label:<{label_w}}  {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


def span_to_dict(span: Span) -> dict[str, object]:
    """A plain-data form of *span* and its subtree (JSON-ready)."""
    return {
        "name": span.name,
        "attributes": dict(span.attributes),
        "wall_start": span.wall_start,
        "duration_seconds": span.duration,
        "children": [span_to_dict(child) for child in span.children],
    }


def spans_to_json(spans: list[Span], *, indent: int = 2) -> str:
    """A list of root spans as a JSON document."""
    return json.dumps(
        [span_to_dict(span) for span in spans], indent=indent, sort_keys=True
    )


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attributes:
        joined = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        attrs = f"  [{joined}]"
    lines.append(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f} ms{attrs}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_tree(spans: list[Span]) -> str:
    """Indented text tree of *spans* with millisecond durations."""
    if not spans:
        return "(no spans recorded)"
    lines: list[str] = []
    for span in spans:
        _render_span(span, 0, lines)
    return "\n".join(lines)


def render_span_timeline(spans: list[Span], *, width: int = 48) -> str:
    """A wall-clock-aligned text timeline of *spans* (one row per span).

    Bars are positioned by each span's ``wall_start`` relative to the
    earliest stamped span and scaled to the overall wall extent, so
    subtrees grafted back from worker processes line up on the same
    axis as the router's fan-out span.  Spans that were never stamped
    (hand-built trees) sit at the left edge.
    """
    if not spans:
        return "(no spans recorded)"
    flat: list[tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        flat.append((depth, span))
        for child in span.children:
            visit(child, depth + 1)

    for span in spans:
        visit(span, 0)
    stamped = [span.wall_start for _, span in flat if span.wall_start > 0.0]
    base = min(stamped) if stamped else 0.0
    extent = max(
        (
            (span.wall_start - base if span.wall_start > 0.0 else 0.0)
            + span.duration
        )
        for _, span in flat
    )
    extent = extent or 1.0
    label_w = max(len("  " * depth + span.name) for depth, span in flat)
    lines: list[str] = []
    for depth, span in flat:
        offset_s = span.wall_start - base if span.wall_start > 0.0 else 0.0
        start = min(width - 1, int(offset_s / extent * width))
        length = max(1, int(round(span.duration / extent * width)))
        length = min(length, width - start)
        bar = " " * start + "#" * length
        label = ("  " * depth + span.name).ljust(label_w)
        lines.append(
            f"{label}  {span.duration * 1e3:9.3f} ms  |{bar.ljust(width)}|"
        )
    return "\n".join(lines)


def _self_seconds(span: Span) -> float:
    """Span time not accounted to children (clamped non-negative)."""
    return max(0.0, span.duration - sum(c.duration for c in span.children))


def spans_to_folded(spans: list[Span]) -> str:
    """Folded-stack lines (``root;child value``) for flamegraph tools.

    The classic Brendan Gregg collapse format: one line per unique
    root-to-frame path, the value being that frame's *self* time in
    integer microseconds, aggregated over every occurrence.  Feed the
    output to any ``flamegraph.pl``-compatible renderer, or to
    :func:`render_flamegraph_svg` for the built-in one.
    """
    aggregated: dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        aggregated[path] = aggregated.get(path, 0) + int(
            round(_self_seconds(span) * 1e6)
        )
        for child in span.children:
            visit(child, path)

    for span in spans:
        visit(span, "")
    return "\n".join(
        f"{path} {value}" for path, value in sorted(aggregated.items())
    )


_FRAME_H = 18
_SVG_MARGIN = 4


def _frame_color(name: str) -> str:
    """A deterministic warm fill for *name* (stable across runs)."""
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) % 1000003
    red = 205 + digest % 50
    green = 90 + (digest // 50) % 120
    blue = 40 + (digest // 6000) % 60
    return f"rgb({red},{green},{blue})"


def _svg_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_flamegraph_svg(spans: list[Span], *, width: int = 1200) -> str:
    """A self-contained SVG flamegraph of *spans* (no JS, no deps).

    Frames are laid out icicle-style (roots on top), horizontally
    scaled by wall duration; each carries a ``<title>`` tooltip with
    its name, duration and attributes.  Deterministic: layout and
    colors are pure functions of the span tree.
    """
    if not spans:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{_FRAME_H}"><text x="4" y="13" font-size="11">'
            "no spans recorded</text></svg>"
        )
    total = sum(span.duration for span in spans)
    rects: list[str] = []
    max_depth = 0

    def visit(span: Span, x: float, frame_w: float, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        y = _SVG_MARGIN + depth * _FRAME_H
        label = span.name
        attrs = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        tooltip = f"{label} — {span.duration * 1e3:.3f} ms"
        if attrs:
            tooltip += f" ({attrs})"
        rects.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{max(frame_w, 0.5):.2f}" '
            f'height="{_FRAME_H - 1}" fill="{_frame_color(label)}" '
            f'rx="1"><title>{_svg_escape(tooltip)}</title></rect>'
            + (
                f'<text x="{x + 3:.2f}" y="{y + _FRAME_H - 6}" '
                f'font-size="11" font-family="monospace">'
                f"{_svg_escape(label[: max(0, int(frame_w // 7))])}</text>"
                if frame_w > 20
                else ""
            )
            + "</g>"
        )
        child_total = sum(c.duration for c in span.children)
        scale = (
            frame_w / span.duration
            if span.duration > 0
            else (frame_w / child_total if child_total > 0 else 0.0)
        )
        cursor = x
        for child in span.children:
            child_w = child.duration * scale
            visit(child, cursor, child_w, depth + 1)
            cursor += child_w

    usable = width - 2 * _SVG_MARGIN
    cursor = float(_SVG_MARGIN)
    for span in spans:
        frame_w = (
            usable * (span.duration / total) if total > 0 else usable / len(spans)
        )
        visit(span, cursor, frame_w, 0)
        cursor += frame_w
    height = _SVG_MARGIN * 2 + (max_depth + 1) * _FRAME_H
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="{width}" height="{height}" fill="#fdf6ec"/>'
        + "".join(rects)
        + "</svg>"
    )


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------


def json_file_hook(path: str | Path) -> SnapshotHook:
    """A snapshot hook that (re)writes *path* with the latest snapshot."""
    target = Path(path)

    def hook(snapshot: MetricsSnapshot) -> None:
        target.write_text(snapshot_to_json(snapshot) + "\n")

    return hook


def span_json_file_hook(path: str | Path) -> SpanHook:
    """A span hook appending each finished root span to *path* (JSONL)."""
    target = Path(path)

    def hook(span: Span) -> None:
        with target.open("a") as handle:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True) + "\n")

    return hook
