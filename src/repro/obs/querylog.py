"""Structured per-query JSONL log — the serving-layer accounting record.

Every query the engine answers can emit one :class:`QueryRecord`: a
schema-versioned, JSON-serializable account of what was asked (epsilon
/ k, backend, executor, store, shard count), what the cascade did
(per-tier candidate counts, the full counter charge set) and what it
cost (a wall-seconds latency breakdown read from the per-query timing
histograms).  Records stream to a :class:`QueryLogWriter` — a
size-rotated JSONL sink with an optional slow-query threshold — and
load back through :func:`load_querylog`, which validates each line the
way the bench loader validates ``BENCH_*.json`` documents and raises
:class:`~repro.exceptions.QueryLogSchemaError` on malformed input.

The writer is ambient, like the metrics registry and the tracer: code
calls :func:`record_query` and when no writer is active the call is a
context-variable read and a ``None`` check.  Shard executors suppress
the ambient writer in workers (alongside the ambient registry), so a
sharded query emits exactly one record — at the router.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from ..exceptions import QueryLogSchemaError, ValidationError
from .metrics import MetricsSnapshot

__all__ = [
    "SCHEMA_VERSION",
    "QueryRecord",
    "QueryLogWriter",
    "load_querylog",
    "latency_breakdown",
    "record_query",
    "active_querylog",
    "use_querylog",
]

#: Version stamped into every record; bump on incompatible field changes.
SCHEMA_VERSION = 1

#: Default rotation threshold (bytes) for :class:`QueryLogWriter`.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

_QUERY_SEQ = itertools.count()


@dataclass(frozen=True)
class QueryRecord:
    """One query's structured accounting record (JSONL line).

    Every field declared here must appear in the schema manifest
    (``tests/obs/querylog_manifest.py``) mapping it to the test that
    exercises it — lint rule RL012 enforces the link.
    """

    schema_version: int
    query_id: str
    timestamp: float
    kind: str
    epsilon: float | None
    k: int | None
    backend: str
    executor: str
    store: str
    shards: int
    n_queries: int
    stages: tuple[dict[str, object], ...]
    charges: dict[str, float]
    latency: dict[str, float]
    result_count: int

    @property
    def total_seconds(self) -> float:
        """End-to-end wall seconds (0.0 when the breakdown is empty)."""
        return self.latency.get("total_seconds", 0.0)

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready plain-dict view (stages become lists)."""
        payload = asdict(self)
        payload["stages"] = [dict(stage) for stage in self.stages]
        return payload


#: Field names a valid record must carry, derived from the dataclass.
REQUIRED_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(QueryRecord))


class QueryLogWriter:
    """Append-only JSONL sink with size rotation and a slow-query filter.

    Parameters
    ----------
    path:
        The live log file; rotated generations get ``.1``, ``.2``, …
        suffixes (``.1`` is the most recent).
    max_bytes:
        Rotate before a write that would push the live file past this
        size.  ``None`` disables rotation.
    backups:
        Rotated generations to keep; older ones are deleted.
    slow_threshold_seconds:
        When set, only records whose end-to-end latency reaches the
        threshold are written — the slow-query log discipline.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        backups: int = 3,
        slow_threshold_seconds: float | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValidationError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValidationError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.slow_threshold_seconds = slow_threshold_seconds
        self._lock = threading.Lock()
        self._written = 0
        self._skipped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def written(self) -> int:
        """Records written since this writer was created."""
        return self._written

    @property
    def skipped(self) -> int:
        """Records dropped by the slow-query threshold."""
        return self._skipped

    def write(self, record: QueryRecord) -> bool:
        """Append *record*; returns False when the slow filter drops it."""
        threshold = self.slow_threshold_seconds
        if threshold is not None and record.total_seconds < threshold:
            with self._lock:
                self._skipped += 1
            return False
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            self._maybe_rotate(len(data))
            with self.path.open("ab") as sink:
                sink.write(data)
            self._written += 1
        return True

    def _maybe_rotate(self, incoming: int) -> None:
        if self.max_bytes is None:
            return
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0 or size + incoming <= self.max_bytes:
            return
        oldest = self.path.with_name(self.path.name + f".{self.backups}")
        oldest.unlink(missing_ok=True)
        for generation in range(self.backups - 1, 0, -1):
            source = self.path.with_name(self.path.name + f".{generation}")
            if source.exists():
                source.rename(
                    self.path.with_name(self.path.name + f".{generation + 1}")
                )
        if self.backups > 0:
            self.path.rename(self.path.with_name(self.path.name + ".1"))
        else:
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "QueryLogWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def __repr__(self) -> str:
        return (
            f"QueryLogWriter({str(self.path)!r}, written={self._written}, "
            f"skipped={self._skipped})"
        )


def _validate_payload(payload: object, where: str) -> dict[str, object]:
    if not isinstance(payload, dict):
        raise QueryLogSchemaError(f"{where}: record is not a JSON object")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise QueryLogSchemaError(
            f"{where}: unsupported schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    missing = [name for name in REQUIRED_FIELDS if name not in payload]
    if missing:
        raise QueryLogSchemaError(
            f"{where}: record is missing field(s) {', '.join(sorted(missing))}"
        )
    return payload


def _record_from_payload(payload: dict[str, object]) -> QueryRecord:
    known = {name: payload[name] for name in REQUIRED_FIELDS}
    stages = known["stages"]
    if not isinstance(stages, (list, tuple)):
        raise QueryLogSchemaError("record field 'stages' must be a list")
    known["stages"] = tuple(dict(stage) for stage in stages)
    return QueryRecord(**known)  # type: ignore[arg-type]


def load_querylog(
    path: str | os.PathLike[str], *, strict: bool = True
) -> list[QueryRecord]:
    """Load and validate a JSONL query log.

    With ``strict=True`` (the default) any unparsable or schema-invalid
    line raises :class:`~repro.exceptions.QueryLogSchemaError` naming
    the offending line; with ``strict=False`` bad lines are skipped and
    every valid record is returned — the post-crash recovery mode.
    """
    records: list[QueryRecord] = []
    with Path(path).open("r", encoding="utf-8") as source:
        for lineno, line in enumerate(source, start=1):
            if not line.strip():
                continue
            where = f"{os.fspath(path)}:{lineno}"
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                if strict:
                    raise QueryLogSchemaError(
                        f"{where}: invalid JSON ({error.msg})"
                    ) from error
                continue
            try:
                records.append(
                    _record_from_payload(_validate_payload(payload, where))
                )
            except QueryLogSchemaError:
                if strict:
                    raise
    return records


def latency_breakdown(snapshot: MetricsSnapshot) -> dict[str, float]:
    """Wall-seconds totals of every timing histogram in *snapshot*.

    Timing histograms carry ``seconds`` in their dotted name by
    convention; their totals are the per-phase latency breakdown a
    record ships.
    """
    return {
        name: summary.total
        for name, summary in sorted(snapshot.histograms.items())
        if "seconds" in name.split(".")
    }


# ----------------------------------------------------------------------
# Ambient writer (contextvars)
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[QueryLogWriter | None] = ContextVar(
    "repro_obs_querylog", default=None
)


def active_querylog() -> QueryLogWriter | None:
    """The writer records currently flow to (None = logging off)."""
    return _ACTIVE.get()


@contextmanager
def use_querylog(writer: QueryLogWriter | None) -> Iterator[QueryLogWriter | None]:
    """Make *writer* the ambient query-record sink for the with-block."""
    token = _ACTIVE.set(writer)
    try:
        yield writer
    finally:
        _ACTIVE.reset(token)


def record_query(
    *,
    kind: str,
    backend: str,
    executor: str,
    store: str,
    shards: int,
    stages: Sequence[tuple[str, int, int]],
    snapshot: MetricsSnapshot,
    result_count: int,
    total_metric: str,
    epsilon: float | None = None,
    k: int | None = None,
    n_queries: int = 1,
) -> QueryRecord | None:
    """Build one :class:`QueryRecord` and emit it on the ambient writer.

    The query-pipeline entry point: when no writer is active this is a
    context-variable read and a ``None`` check — nothing is built.
    *stages* are ``(name, n_in, n_out)`` triples from the cascade
    stats; *total_metric* names the end-to-end timing histogram whose
    total becomes ``latency["total_seconds"]``.
    """
    writer = _ACTIVE.get()
    if writer is None:
        return None
    latency = latency_breakdown(snapshot)
    total = snapshot.histograms.get(total_metric)
    latency["total_seconds"] = total.total if total is not None else 0.0
    record = QueryRecord(
        schema_version=SCHEMA_VERSION,
        query_id=f"q{next(_QUERY_SEQ):08d}-{os.getpid()}",
        timestamp=time.time(),
        kind=kind,
        epsilon=epsilon,
        k=k,
        backend=backend,
        executor=executor,
        store=store,
        shards=shards,
        n_queries=n_queries,
        stages=tuple(
            {"name": name, "n_in": n_in, "n_out": n_out}
            for name, n_in, n_out in stages
        ),
        charges=dict(snapshot.counters),
        latency=latency,
        result_count=result_count,
    )
    writer.write(record)
    return record
