"""Unified observability plane: metrics registry, trace spans, exporters.

See DESIGN.md §9 for the counter-naming scheme and the layer-by-layer
charging map.
"""

from .export import (
    json_file_hook,
    render_metrics_table,
    render_span_tree,
    snapshot_to_csv,
    snapshot_to_dict,
    snapshot_to_json,
    span_json_file_hook,
    span_to_dict,
    spans_to_json,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    SnapshotHook,
    Timer,
    active_registry,
    count,
    merge_snapshots,
    observe,
    set_gauge,
    use_registry,
)
from .tracing import (
    Span,
    SpanHook,
    Tracer,
    active_tracer,
    current_span,
    maybe_span,
    use_tracer,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "Timer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
    "SnapshotHook",
    "active_registry",
    "use_registry",
    "count",
    "observe",
    "set_gauge",
    "merge_snapshots",
    # tracing
    "Span",
    "SpanHook",
    "Tracer",
    "active_tracer",
    "current_span",
    "use_tracer",
    "maybe_span",
    # export
    "snapshot_to_dict",
    "snapshot_to_json",
    "snapshot_to_csv",
    "render_metrics_table",
    "span_to_dict",
    "spans_to_json",
    "render_span_tree",
    "json_file_hook",
    "span_json_file_hook",
]
