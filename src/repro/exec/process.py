"""The process executor: spawn-based shard workers, shared feature memory.

Each shard gets one spawned worker process owning a *replica*
:class:`~repro.core.query_engine.QueryEngine` (the shard's storage and
index backend pickle over at spawn time), while the shard's feature
store is published once into a :mod:`multiprocessing.shared_memory`
segment and attached zero-copy by the worker — cascade filtering and
DTW verification read sequence values straight from shared memory,
off the GIL.

Protocol (one duplex pipe per worker, strictly FIFO, parent drives):

``("call", method, args, kwargs, trace)``
    Run ``engine.<method>(*args, **kwargs)``; reply
    ``("ok", result, spans)`` where *spans* are the worker-side root
    trace spans (empty unless *trace*), or ``("err", exc, ())``.
``("mirror", method, args)``
    Replay a mutation the parent already applied to its authoritative
    engines, keeping the replica's storage/index/buffer state in
    lockstep; synchronous ``("ok", None, ())`` ack.
``("close",)``
    Acknowledge and exit the worker loop.

Bit-exactness: the worker builds its cascade through a factory that
charges the same ``db.scan()`` the in-process engines charge, then
adopts the shared store when it still mirrors the replica database
(after mirrored mutations it falls back to a locally rebuilt store,
exactly like the in-process lazy rebuild).  Query charges travel back
on the pickled ``QueryResult``/``BatchResult`` snapshots and merge in
shard order, so counters are bit-identical to the serial executor.

One caveat is inherent to replication: parent-side reads *outside* the
executor (``ShardedDatabase.get``) touch only the parent's buffer
pool.  With the default ``buffer_pages=0`` there is no cached state
and parity is unconditional; with a warm buffer pool, interleaving
parent-side ``get`` calls between queries can make hit/miss counters
diverge from the serial executor (documented in DESIGN.md §13).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any, Callable

from ..exceptions import ExecutorError
from ..obs.metrics import use_registry
from ..obs.tracing import Span, SpanGrafter, Tracer, active_tracer, use_tracer
from .base import ShardExecutor, register_executor
from .shm import (
    MmapStoreHandle,
    SharedStoreHandle,
    attach_store,
    publish_mmap,
    publish_store,
)

if TYPE_CHECKING:
    from multiprocessing.context import SpawnContext
    from multiprocessing.process import BaseProcess
    from multiprocessing.shared_memory import SharedMemory

    from ..core.query_engine import QueryEngine
    from ..index.backend import IndexBackend
    from ..storage.database import SequenceDatabase

__all__ = ["ProcessExecutor"]

#: Seconds a graceful shutdown waits before terminating a worker.
_JOIN_TIMEOUT = 5.0


@dataclass
class _WorkerInit:
    """Everything a worker needs to rebuild its shard engine (picklable)."""

    shard: int
    database: "SequenceDatabase"
    backend: "IndexBackend"
    store: SharedStoreHandle | MmapStoreHandle | None


def _shared_cascade_factory(
    handle: SharedStoreHandle | MmapStoreHandle | None,
) -> "Callable[[SequenceDatabase], Any]":
    """A cascade factory that adopts the shared store when still valid.

    Charges one ``db.scan()`` exactly like
    :meth:`FilterCascade.from_database`, so the first query's counters
    match the in-process executors bit-for-bit.  The attachment —
    shared-memory segment or read-only file map, depending on the
    handle — happens once and is cached (a ``SharedMemory`` object, if
    any, must outlive the store views).
    """
    from ..core.cascade import FeatureStore, FilterCascade

    cache: dict[str, Any] = {}

    def factory(db: "SequenceDatabase") -> FilterCascade:
        scan = db.scan()  # the charged build pass, shared-store or not
        if handle is not None:
            if "store" not in cache:
                cache["segment"], cache["store"] = attach_store(handle)
            store = cache["store"]
            if store.matches(db):
                return FilterCascade(store)
        return FilterCascade(FeatureStore(scan))

    return factory


def _worker_main(conn: Connection, init: _WorkerInit) -> None:
    """Worker loop: serve call/mirror commands until closed."""
    from ..core.query_engine import QueryEngine

    engine = QueryEngine(
        init.database,
        init.backend,
        cascade_factory=_shared_cascade_factory(init.store),
    )
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message[0] == "close":
                conn.send(("ok", None, ()))
                break
            try:
                if message[0] == "call":
                    _, method, args, kwargs, trace = message
                    spans: tuple[Span, ...] = ()
                    with use_registry(None):
                        if trace:
                            tracer = Tracer()
                            with use_tracer(tracer):
                                result = getattr(engine, method)(
                                    *args, **kwargs
                                )
                            spans = tuple(tracer.roots)
                        else:
                            result = getattr(engine, method)(*args, **kwargs)
                    conn.send(("ok", result, spans))
                elif message[0] == "mirror":
                    _, method, args = message
                    with use_registry(None):
                        getattr(engine, method)(*args)
                    conn.send(("ok", None, ()))
                else:
                    raise ExecutorError(
                        f"unknown worker command {message[0]!r}"
                    )
            except Exception as exc:  # ship the failure, keep serving
                conn.send(("err", exc, ()))
    finally:
        conn.close()


def _release(
    conns: list[Connection],
    procs: list["BaseProcess"],
    segments: list["SharedMemory"],
) -> None:
    """Tear the worker fleet down; safe to call twice (finalizer path)."""
    for conn in conns:
        try:
            if not conn.closed:
                conn.send(("close",))
                if conn.poll(_JOIN_TIMEOUT):
                    conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=_JOIN_TIMEOUT)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT)
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


@register_executor
class ProcessExecutor(ShardExecutor):
    """One spawned worker per shard over shared feature arrays.

    Workers are spawned lazily on the first fan-out, pickling each
    shard's storage + backend as they are *at that moment*; later
    mutations are kept in lockstep via :meth:`mirror`.  The published
    shared store reflects spawn-time contents — after mutations the
    workers transparently rebuild local stores (the same lazy rebuild
    the in-process engines perform), trading the zero-copy read for
    unchanged answers and counters.
    """

    name = "process"

    def __init__(self, engines: list["QueryEngine"]) -> None:
        super().__init__(engines)
        self._ctx: "SpawnContext" = get_context("spawn")
        self._conns: list[Connection] | None = None
        self._procs: list["BaseProcess"] = []
        self._segments: list["SharedMemory"] = []
        self._finalizer: weakref.finalize | None = None

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> list[Connection]:
        with self._lifecycle_lock:
            self._require_open()
            if self._conns is not None:
                return self._conns
            from ..core.cascade import FeatureStore

            conns: list[Connection] = []
            procs: list["BaseProcess"] = []
            segments: list["SharedMemory"] = []
            try:
                for shard, engine in enumerate(self._engines):
                    # Publish the shard's feature state charge-free: the
                    # cost model only charges reads the query pipeline
                    # performs, and the worker charges its own build scan.
                    # A clean mmap-store shard publishes by file path —
                    # workers map the columnar data file read-only and no
                    # values are copied or pickled; otherwise fall back to
                    # copying the packed arrays into shared memory.
                    handle: SharedStoreHandle | MmapStoreHandle | None
                    handle = publish_mmap(engine.database)
                    if handle is None:
                        store = FeatureStore.from_contents(engine.database)
                        segment, handle = publish_store(store)
                        segments.append(segment)
                    parent_conn, child_conn = self._ctx.Pipe()
                    proc = self._ctx.Process(
                        target=_worker_main,
                        args=(
                            child_conn,
                            _WorkerInit(
                                shard, engine.database, engine.backend, handle
                            ),
                        ),
                        name=f"repro-shard-{shard}",
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    conns.append(parent_conn)
                    procs.append(proc)
            except BaseException:
                _release(conns, procs, segments)
                raise
            self._conns, self._procs, self._segments = conns, procs, segments
            self._finalizer = weakref.finalize(
                self, _release, conns, procs, segments
            )
            return conns

    def close(self) -> None:
        """Shut workers down and unlink the shared segments (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            finalizer = self._finalizer
        if finalizer is not None:
            finalizer()

    # -- execution -----------------------------------------------------------

    def _receive(self, shard: int, conn: Connection) -> tuple[Any, Any, Any]:
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise ExecutorError(
                f"shard {shard} worker died mid-query "
                f"(exitcode={self._procs[shard].exitcode})"
            ) from exc
        return reply

    def run(
        self,
        method: str,
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        conns = self._ensure_started()
        trace = active_tracer() is not None
        message = ("call", method, tuple(args), dict(kwargs or {}), trace)
        for conn in conns:
            conn.send(message)
        # Drain every shard before raising so one failed shard never
        # leaves stale replies in the other pipes.
        replies = [
            self._receive(shard, conn) for shard, conn in enumerate(conns)
        ]
        for status, payload, _ in replies:
            if status == "err":
                raise payload
        # Graft the workers' span trees under the fan-out span in shard
        # order with shard tags — the same deterministic shape the
        # serial and thread executors produce.
        grafter = SpanGrafter(len(conns))
        results: list[Any] = []
        for shard, (status, payload, spans) in enumerate(replies):
            if spans:
                grafter.add(shard, spans)
            results.append(payload)
        grafter.graft()
        return results

    def mirror(
        self, shard: int, method: str, args: tuple[Any, ...] = ()
    ) -> None:
        if self._conns is None:
            # Workers not spawned yet: they will pickle the already-
            # mutated parent state at spawn time.
            return
        conn = self._conns[shard]
        conn.send(("mirror", method, tuple(args)))
        status, payload, _ = self._receive(shard, conn)
        if status == "err":
            raise payload
