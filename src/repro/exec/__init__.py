"""The pluggable shard execution plane (see :mod:`repro.exec.base`).

Importing this package registers the three built-in executors —
``serial``, ``thread`` and ``process`` — with the
:data:`~repro.exec.base.EXECUTORS` registry.
"""

from .base import (
    DEFAULT_EXECUTOR,
    ENV_EXECUTOR,
    EXECUTORS,
    ShardExecutor,
    available_executors,
    make_executor,
    register_executor,
    resolve_executor_name,
)
from .process import ProcessExecutor
from .serial import SerialExecutor
from .shm import (
    ArraySpec,
    MmapStoreHandle,
    SharedStoreHandle,
    attach_store,
    publish_mmap,
    publish_store,
)
from .threaded import ThreadExecutor

__all__ = [
    "DEFAULT_EXECUTOR",
    "ENV_EXECUTOR",
    "EXECUTORS",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ArraySpec",
    "MmapStoreHandle",
    "SharedStoreHandle",
    "attach_store",
    "publish_mmap",
    "publish_store",
    "available_executors",
    "make_executor",
    "register_executor",
    "resolve_executor_name",
]
