"""The shard execution plane: how a query fans out across shards.

:class:`~repro.core.sharding.ShardedDatabase` owns the *routing* math —
gid/lid translation, round-robin placement, shard-order result merging.
*How* the per-shard engine calls actually run is a separate concern,
factored into a :class:`ShardExecutor`:

* ``serial`` — every shard runs inline in the calling thread, in shard
  order.  The old ``shards == 1`` short-circuit, generalized to any N.
* ``thread`` — a lazily-created, *persistent* thread pool (one worker
  per shard).  Each task runs in a copy of the submitting thread's
  :mod:`contextvars` context so trace spans parent correctly.
* ``process`` — spawn-based worker processes that own a replica of
  their shard's :class:`~repro.core.query_engine.QueryEngine`, reading
  the feature store zero-copy from a
  :mod:`multiprocessing.shared_memory` segment.  This is the executor
  that takes DTW verification off the GIL.

All three are registered here by name; selection order is the explicit
``executor=`` argument, then the ``REPRO_EXECUTOR`` environment
variable, then the ``thread`` default.  The contract every executor
must honour is *bit-exactness*: answers, distances, ordering,
``CascadeStats`` and merged metric counters of any workload are
identical across executors, because charges are suppressed in the
workers (``use_registry(None)``) and travel back on the per-shard
return values, which the router merges in shard order.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, ClassVar, TypeVar

from ..exceptions import ExecutorError, ValidationError

if TYPE_CHECKING:
    from ..core.query_engine import QueryEngine

__all__ = [
    "DEFAULT_EXECUTOR",
    "ENV_EXECUTOR",
    "EXECUTORS",
    "ShardExecutor",
    "available_executors",
    "make_executor",
    "register_executor",
    "resolve_executor_name",
]

#: The executor used when neither ``executor=`` nor the environment
#: variable selects one.
DEFAULT_EXECUTOR = "thread"

#: Environment variable consulted when no explicit executor is passed.
ENV_EXECUTOR = "REPRO_EXECUTOR"


class ShardExecutor(ABC):
    """Fan a method call out to every shard engine; results in shard order.

    Parameters
    ----------
    engines:
        The per-shard :class:`QueryEngine` instances, shard order.  The
        executor never reorders or filters them; result lists align
        index-for-index with this list.
    """

    #: Registry name of the executor (``serial``/``thread``/``process``).
    name: ClassVar[str]

    def __init__(self, engines: list["QueryEngine"]) -> None:
        if not engines:
            raise ValidationError("at least one shard engine is required")
        self._engines = list(engines)
        self._closed = False
        # Serializes lifecycle transitions (lazy start, close) against
        # concurrent callers; never held during query execution.
        self._lifecycle_lock = threading.Lock()

    # -- introspection -------------------------------------------------------

    @property
    def engines(self) -> list["QueryEngine"]:
        """The shard engines this executor fans out over (shard order)."""
        return list(self._engines)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ExecutorError(
                f"{self.name} executor is closed; create a new database "
                "or executor to keep querying"
            )

    # -- execution -----------------------------------------------------------

    @abstractmethod
    def run(
        self,
        method: str,
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Invoke ``engine.<method>(*args, **kwargs)`` on every shard.

        Returns the per-shard results **in shard order** regardless of
        completion order — the deterministic merge the bit-exactness
        guarantee needs.  The ambient metrics registry is suppressed
        inside the calls; charges travel on the return values.
        """

    def mirror(
        self, shard: int, method: str, args: tuple[Any, ...] = ()
    ) -> None:
        """Forward a mutation already applied to the parent's engines.

        The router applies every insert/bulk-load/delete to its own
        (authoritative) engines first, then calls ``mirror`` so an
        executor holding *replicas* — the process executor — can replay
        the same operation on its worker's copy, keeping storage,
        index and buffer-pool state in lockstep.  Executors that share
        the parent's engines (serial, thread) inherit this no-op.
        """

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (idempotent)."""
        with self._lifecycle_lock:
            self._closed = True

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_E = TypeVar("_E", bound=type[ShardExecutor])

#: Registered executor classes, keyed by :attr:`ShardExecutor.name`.
EXECUTORS: dict[str, type[ShardExecutor]] = {}


def register_executor(cls: _E) -> _E:
    """Class decorator adding *cls* to the :data:`EXECUTORS` registry."""
    EXECUTORS[cls.name] = cls
    return cls


def available_executors() -> tuple[str, ...]:
    """The registered executor names, sorted."""
    return tuple(sorted(EXECUTORS))


def resolve_executor_name(name: str | None = None) -> str:
    """Resolve the executor to use and validate it.

    Explicit *name* wins; ``None`` falls back to the ``REPRO_EXECUTOR``
    environment variable, then to :data:`DEFAULT_EXECUTOR`.
    """
    if name is None:
        name = os.environ.get(ENV_EXECUTOR) or DEFAULT_EXECUTOR
    if name not in EXECUTORS:
        known = ", ".join(available_executors())
        raise ValidationError(
            f"unknown executor {name!r}; registered: {known}"
        )
    return name


def make_executor(
    name: str | None, engines: list["QueryEngine"]
) -> ShardExecutor:
    """Construct the executor *name* (resolved per
    :func:`resolve_executor_name`) over *engines*."""
    return EXECUTORS[resolve_executor_name(name)](engines)
