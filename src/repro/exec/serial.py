"""The serial executor: every shard runs inline, in shard order.

This is the old ``shards == 1`` short-circuit generalized to any shard
count — no pool, no context copying, no worker isolation beyond the
ambient-registry suppression every executor applies.  It is the
reference implementation the parity suite measures the parallel
executors against, and the right choice for debugging and for
single-shard databases embedded in larger pipelines.
"""

from __future__ import annotations

from typing import Any

from ..obs.metrics import use_registry
from ..obs.querylog import use_querylog
from ..obs.tracing import SpanGrafter, attach_to
from .base import ShardExecutor, register_executor

__all__ = ["SerialExecutor"]


@register_executor
class SerialExecutor(ShardExecutor):
    """Run the per-shard calls one after another in the calling thread."""

    name = "serial"

    def run(
        self,
        method: str,
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        self._require_open()
        kwargs = kwargs or {}
        grafter = SpanGrafter(len(self._engines))
        results: list[Any] = []
        for shard, engine in enumerate(self._engines):
            # Charges travel on the return path only, like every executor;
            # the query record is emitted once at the router, and spans
            # collect under a detached holder to graft in shard order.
            with use_registry(None), use_querylog(None), attach_to(
                grafter.holder(shard)
            ):
                results.append(getattr(engine, method)(*args, **kwargs))
        grafter.graft()
        return results
