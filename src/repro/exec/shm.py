"""Publishing a packed :class:`FeatureStore` to worker processes.

Two transports, one attach entry point:

* **Shared memory** — the store is five flat arrays
  (:attr:`FeatureStore.PACKED_FIELDS`); :func:`publish_store` copies
  them back-to-back into one :mod:`multiprocessing.shared_memory`
  segment and returns a picklable :class:`SharedStoreHandle`
  describing the layout.
* **Memory-mapped file** — when the shard's database sits on the
  ``mmap`` columnar store in its clean state, :func:`publish_mmap`
  skips the copy entirely: the handle carries the data file's *path*
  plus the small id/length/offset arrays, and each worker maps the
  file read-only.  The OS page cache shares one physical copy across
  all processes and nothing per-publish is pickled or re-packed.

A worker process calls :func:`attach_store` with either handle and
gets a read-only, **zero-copy** store — every cascade tier and every
DTW verification in the worker reads sequence values straight out of
the shared segment or the mapped file.

Lifecycle: for shared memory, the *publisher* owns the segment — it
keeps the returned :class:`~multiprocessing.shared_memory.SharedMemory`
object and is responsible for ``close()`` + ``unlink()`` when the
executor shuts down.  Attachers only ``close()`` (implicitly, at
process exit).  Pre-3.13 Pythons register *attachments* with the
:mod:`multiprocessing.resource_tracker` as well; that is harmless
here because spawned workers share the publisher's tracker process,
whose name cache is a set — the duplicate register deduplicates and
the publisher's ``unlink()`` unregisters exactly once.  Mapped files
need no lifecycle at all: the store's own ``save``/``load`` owns the
file, and attachments are plain read-only maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from ..core.cascade import FeatureStore
from ..exceptions import StorageError

if TYPE_CHECKING:
    from ..storage.database import SequenceDatabase

__all__ = [
    "ArraySpec",
    "MmapStoreHandle",
    "SharedStoreHandle",
    "publish_mmap",
    "publish_store",
    "attach_store",
]


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one packed array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedStoreHandle:
    """A picklable description of a published feature store.

    Attributes
    ----------
    segment:
        The shared-memory segment name (attachable by any process).
    size:
        Segment size in bytes.
    arrays:
        Layout of the packed arrays, in :attr:`FeatureStore.PACKED_FIELDS`
        order.
    """

    segment: str
    size: int
    arrays: tuple[ArraySpec, ...]


@dataclass(frozen=True)
class MmapStoreHandle:
    """A picklable description of a store served from a mapped file.

    The heavyweight element buffer never crosses the pipe: workers
    ``numpy.memmap`` *path* read-only and rebuild the feature store
    over it with :meth:`FeatureStore.from_arrays`.  Only the small
    id/length/offset arrays travel in the handle.

    Attributes
    ----------
    path:
        The columnar store's contiguous float64 data file.
    n_values:
        Total float64 elements in the file.
    epoch:
        The store's save generation the handle was taken from.
    ids / lengths / offsets:
        The row directory (``(n,)``/``(n,)``/``(n + 1,)`` int64).
    """

    path: str
    n_values: int
    epoch: int
    ids: np.ndarray
    lengths: np.ndarray
    offsets: np.ndarray


def publish_mmap(db: "SequenceDatabase") -> MmapStoreHandle | None:
    """Describe *db*'s store as a mapped-file handle, if it can be.

    Returns ``None`` unless the database's sequence store advertises a
    clean on-disk value file (see
    :meth:`~repro.storage.store.SequenceStore.mmap_source`) — callers
    fall back to :func:`publish_store`.  No values are copied; the
    directory arrays are snapshotted so the handle does not pin the
    publisher's map.
    """
    source = db.mmap_source()
    if source is None:
        return None
    dense = db.dense_arrays()
    if dense is None:
        return None
    ids, lengths, offsets, _values = dense
    return MmapStoreHandle(
        path=source.path,
        n_values=source.n_values,
        epoch=source.epoch,
        ids=np.array(ids),
        lengths=np.array(lengths),
        offsets=np.array(offsets),
    )


def publish_store(
    store: FeatureStore,
) -> tuple[shared_memory.SharedMemory, SharedStoreHandle]:
    """Copy *store*'s packed arrays into a fresh shared segment.

    Returns the owning ``SharedMemory`` object (caller must ``close()``
    and ``unlink()`` it eventually) and the layout handle to ship to
    attachers.
    """
    packed = {
        name: np.ascontiguousarray(array)
        for name, array in store.packed().items()
    }
    specs: list[ArraySpec] = []
    offset = 0
    for name in FeatureStore.PACKED_FIELDS:
        array = packed[name]
        specs.append(
            ArraySpec(name, str(array.dtype), tuple(array.shape), offset)
        )
        offset += array.nbytes
    # Zero-byte segments are rejected by the OS; a store with no
    # sequences still publishes its (single-element) offsets array, but
    # guard anyway.
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for spec in specs:
        array = packed[spec.name]
        if array.nbytes == 0:
            continue
        view: np.ndarray = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view[...] = array
        del view  # keep no exported views: segment.close() must not block
    return segment, SharedStoreHandle(
        segment=segment.name, size=max(offset, 1), arrays=tuple(specs)
    )


def attach_store(
    handle: SharedStoreHandle | MmapStoreHandle,
) -> tuple[shared_memory.SharedMemory | None, FeatureStore]:
    """Attach to a published store, zero-copy and read-only.

    For a :class:`MmapStoreHandle` the data file is mapped read-only
    and the segment slot of the return value is ``None`` (there is no
    shared-memory lifecycle to manage).  For a
    :class:`SharedStoreHandle` the caller must keep the returned
    ``SharedMemory`` object alive as long as the store is in use (the
    store's arrays are views into its buffer).
    """
    if isinstance(handle, MmapStoreHandle):
        return None, _attach_mmap(handle)
    segment = shared_memory.SharedMemory(name=handle.segment, create=False)
    views: dict[str, np.ndarray] = {}
    for spec in handle.arrays:
        dtype = np.dtype(spec.dtype)
        count = int(np.prod(spec.shape, dtype=np.int64))
        if count == 0:
            view = np.empty(spec.shape, dtype=dtype)
        else:
            view = np.ndarray(
                spec.shape, dtype=dtype, buffer=segment.buf, offset=spec.offset
            )
        view.flags.writeable = False
        views[spec.name] = view
    return segment, FeatureStore.from_packed(**views)


def _attach_mmap(handle: MmapStoreHandle) -> FeatureStore:
    """Map the handle's data file read-only and re-host a store over it."""
    if handle.n_values == 0:
        values = np.empty(0, dtype=np.float64)
    else:
        try:
            values = np.memmap(
                handle.path, dtype="<f8", mode="r", shape=(handle.n_values,)
            )
        except (OSError, ValueError) as error:
            raise StorageError(
                f"cannot map store data file {handle.path}: {error}"
            ) from error
    return FeatureStore.from_arrays(
        handle.ids, handle.lengths, handle.offsets, values
    )
