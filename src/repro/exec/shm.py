"""Publishing a packed :class:`FeatureStore` into shared memory.

The store is five flat arrays (:attr:`FeatureStore.PACKED_FIELDS`);
:func:`publish_store` copies them back-to-back into one
:mod:`multiprocessing.shared_memory` segment and returns a picklable
:class:`SharedStoreHandle` describing the layout.  A worker process
calls :func:`attach_store` with the handle and gets a read-only,
**zero-copy** store — every cascade tier and every DTW verification in
the worker reads sequence values straight out of the shared segment,
so N workers share one copy of the database's feature state instead of
N pickled replicas.

Lifecycle: the *publisher* owns the segment — it keeps the returned
:class:`~multiprocessing.shared_memory.SharedMemory` object and is
responsible for ``close()`` + ``unlink()`` when the executor shuts
down.  Attachers only ``close()`` (implicitly, at process exit).
Pre-3.13 Pythons register *attachments* with the
:mod:`multiprocessing.resource_tracker` as well; that is harmless
here because spawned workers share the publisher's tracker process,
whose name cache is a set — the duplicate register deduplicates and
the publisher's ``unlink()`` unregisters exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.cascade import FeatureStore

__all__ = ["ArraySpec", "SharedStoreHandle", "publish_store", "attach_store"]


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one packed array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedStoreHandle:
    """A picklable description of a published feature store.

    Attributes
    ----------
    segment:
        The shared-memory segment name (attachable by any process).
    size:
        Segment size in bytes.
    arrays:
        Layout of the packed arrays, in :attr:`FeatureStore.PACKED_FIELDS`
        order.
    """

    segment: str
    size: int
    arrays: tuple[ArraySpec, ...]


def publish_store(
    store: FeatureStore,
) -> tuple[shared_memory.SharedMemory, SharedStoreHandle]:
    """Copy *store*'s packed arrays into a fresh shared segment.

    Returns the owning ``SharedMemory`` object (caller must ``close()``
    and ``unlink()`` it eventually) and the layout handle to ship to
    attachers.
    """
    packed = {
        name: np.ascontiguousarray(array)
        for name, array in store.packed().items()
    }
    specs: list[ArraySpec] = []
    offset = 0
    for name in FeatureStore.PACKED_FIELDS:
        array = packed[name]
        specs.append(
            ArraySpec(name, str(array.dtype), tuple(array.shape), offset)
        )
        offset += array.nbytes
    # Zero-byte segments are rejected by the OS; a store with no
    # sequences still publishes its (single-element) offsets array, but
    # guard anyway.
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for spec in specs:
        array = packed[spec.name]
        if array.nbytes == 0:
            continue
        view: np.ndarray = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view[...] = array
        del view  # keep no exported views: segment.close() must not block
    return segment, SharedStoreHandle(
        segment=segment.name, size=max(offset, 1), arrays=tuple(specs)
    )


def attach_store(
    handle: SharedStoreHandle,
) -> tuple[shared_memory.SharedMemory, FeatureStore]:
    """Attach to a published store, zero-copy and read-only.

    The caller must keep the returned ``SharedMemory`` object alive as
    long as the store is in use (the store's arrays are views into its
    buffer).
    """
    segment = shared_memory.SharedMemory(name=handle.segment, create=False)
    views: dict[str, np.ndarray] = {}
    for spec in handle.arrays:
        dtype = np.dtype(spec.dtype)
        count = int(np.prod(spec.shape, dtype=np.int64))
        if count == 0:
            view = np.empty(spec.shape, dtype=dtype)
        else:
            view = np.ndarray(
                spec.shape, dtype=dtype, buffer=segment.buf, offset=spec.offset
            )
        view.flags.writeable = False
        views[spec.name] = view
    return segment, FeatureStore.from_packed(**views)
