"""The thread executor: a persistent shard pool (one thread per shard).

Historically ``ShardedDatabase`` built a fresh
:class:`~concurrent.futures.ThreadPoolExecutor` inside every search
call, paying N thread spawns per query.  The pool is now created
lazily on the first multi-shard call and reused for the executor's
lifetime; :meth:`close` shuts it down idempotently.

Each task runs in a *copy* of the submitting thread's
:mod:`contextvars` context, so trace spans opened by the shard engines
parent correctly under the caller's fan-out span.  With a single
engine the call runs inline — no pool is ever created, preserving the
old single-shard fast path.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from ..obs.metrics import use_registry
from ..obs.querylog import use_querylog
from ..obs.tracing import Span, SpanGrafter, attach_to
from .base import ShardExecutor, register_executor

if TYPE_CHECKING:
    from ..core.query_engine import QueryEngine

__all__ = ["ThreadExecutor"]


@register_executor
class ThreadExecutor(ShardExecutor):
    """Fan out on a lazily-created, persistent thread pool."""

    name = "thread"

    def __init__(self, engines: list["QueryEngine"]) -> None:
        super().__init__(engines)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def active_pool(self) -> ThreadPoolExecutor | None:
        """The persistent pool, or ``None`` before the first fan-out.

        Exposed so the reuse regression test can assert two consecutive
        queries run on the *same* pool object.
        """
        return self._pool

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                self._require_open()
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=len(self._engines),
                        thread_name_prefix="repro-shard",
                    )
                    self._pool = pool
        return pool

    def run(
        self,
        method: str,
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        self._require_open()
        kwargs = kwargs or {}
        grafter = SpanGrafter(len(self._engines))

        def isolated(engine: "QueryEngine", holder: Span | None) -> Any:
            # Spans park under a detached per-shard holder; the grafter
            # re-attaches them in shard order after every future resolves,
            # so completion-order scheduling never leaks into the trace.
            with use_registry(None), use_querylog(None), attach_to(holder):
                return getattr(engine, method)(*args, **kwargs)

        if len(self._engines) == 1:
            results = [isolated(self._engines[0], grafter.holder(0))]
        else:
            pool = self._ensure_pool()
            contexts = [contextvars.copy_context() for _ in self._engines]
            futures = [
                pool.submit(context.run, isolated, engine, grafter.holder(shard))
                for shard, (context, engine) in enumerate(
                    zip(contexts, self._engines)
                )
            ]
            results = [future.result() for future in futures]
        grafter.graft()
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent; in-flight tasks finish)."""
        if self._closed:
            return
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
