"""Cylinder–Bell–Funnel (CBF) shape sequences.

The classic labelled synthetic benchmark for time-series similarity
(Saito 1994; used throughout the DTW literature).  Each class is a
characteristic shape over a noisy baseline, with a random onset and
duration — so instances of the same class align under time warping but
not under rigid, position-wise comparison.  Useful for examples and
tests that need *ground-truth classes*, which the paper's random walks
lack:

* **cylinder** — a plateau: the signal jumps to a level and holds it;
* **bell** — a linear ramp up to the level, then a drop;
* **funnel** — a jump to the level, then a linear decay.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence

__all__ = ["cbf_instance", "cbf_dataset", "CBF_CLASSES"]

#: The three class labels in canonical order.
CBF_CLASSES: tuple[str, str, str] = ("cylinder", "bell", "funnel")


def cbf_instance(
    kind: str,
    length: int = 128,
    *,
    rng: np.random.Generator | int = 0,
    noise: float = 0.35,
) -> Sequence:
    """One CBF sequence of the given class and length.

    The shape occupies a random window (onset uniform in the first
    third, duration at least a third of the sequence) at a random
    level ``~N(6, 1)``, over ``N(0, noise)`` baseline noise.
    """
    if kind not in CBF_CLASSES:
        raise ValidationError(f"kind must be one of {CBF_CLASSES}, got {kind!r}")
    if length < 8:
        raise ValidationError(f"length must be >= 8, got {length}")
    if noise < 0:
        raise ValidationError(f"noise must be non-negative, got {noise}")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    values = generator.normal(0.0, noise, size=length)
    onset = int(generator.integers(0, max(1, length // 3)))
    duration = int(generator.integers(length // 3, max(length // 3 + 1, 2 * length // 3)))
    end = min(length, onset + duration)
    level = float(generator.normal(6.0, 1.0))
    span = max(1, end - onset)
    ramp = np.linspace(0.0, 1.0, span)
    if kind == "cylinder":
        values[onset:end] += level
    elif kind == "bell":
        values[onset:end] += level * ramp
    else:  # funnel
        values[onset:end] += level * ramp[::-1]
    return Sequence(values, label=kind)


def cbf_dataset(
    n_per_class: int,
    length: int = 128,
    *,
    seed: int = 0,
    noise: float = 0.35,
) -> list[Sequence]:
    """A balanced CBF dataset: *n_per_class* instances of each class.

    Instances are interleaved class-by-class; each carries its class
    name as the label.
    """
    if n_per_class < 1:
        raise ValidationError(f"n_per_class must be >= 1, got {n_per_class}")
    generator = np.random.default_rng(seed)
    out: list[Sequence] = []
    for _ in range(n_per_class):
        for kind in CBF_CLASSES:
            out.append(cbf_instance(kind, length, rng=generator, noise=noise))
    return out
