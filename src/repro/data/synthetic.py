"""The paper's synthetic random-walk generator (section 5.1).

Each synthetic sequence ``S = <s_1, ..., s_n>`` follows::

    s_i = s_{i-1} + z_i

where ``z_i`` is IID uniform on ``[-0.1, 0.1]`` and the first element
``s_1`` is uniform on ``[1, 10]``.  The generator is seeded for
reproducibility and supports fixed or randomized lengths (the paper
fixes the average length per experiment).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence

__all__ = ["random_walk", "random_walk_dataset"]

#: The paper's step range for the IID increments.
STEP_RANGE: tuple[float, float] = (-0.1, 0.1)

#: The paper's range for the first element.
START_RANGE: tuple[float, float] = (1.0, 10.0)


def random_walk(
    length: int,
    *,
    rng: np.random.Generator | int = 0,
    step_range: tuple[float, float] = STEP_RANGE,
    start_range: tuple[float, float] = START_RANGE,
) -> Sequence:
    """One random-walk sequence of the given *length*."""
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    generator = _as_generator(rng)
    lo, hi = step_range
    if lo > hi:
        raise ValidationError(f"invalid step_range {step_range}")
    s_lo, s_hi = start_range
    if s_lo > s_hi:
        raise ValidationError(f"invalid start_range {start_range}")
    start = generator.uniform(s_lo, s_hi)
    steps = generator.uniform(lo, hi, size=length - 1)
    values = np.empty(length)
    values[0] = start
    if length > 1:
        np.cumsum(steps, out=values[1:])
        values[1:] += start
    return Sequence(values)


def random_walk_dataset(
    n_sequences: int,
    length: int,
    *,
    seed: int = 0,
    length_jitter: float = 0.0,
) -> list[Sequence]:
    """A dataset of *n_sequences* random walks of average *length*.

    ``length_jitter`` (0..1) draws each sequence's length uniformly
    from ``[length * (1 - jitter), length * (1 + jitter)]`` so databases
    of *different-length* sequences — time warping's raison d'être —
    can be generated; 0 reproduces the paper's fixed-length setting.
    """
    if n_sequences < 1:
        raise ValidationError(f"n_sequences must be >= 1, got {n_sequences}")
    if not 0.0 <= length_jitter < 1.0:
        raise ValidationError(
            f"length_jitter must be in [0, 1), got {length_jitter}"
        )
    rng = np.random.default_rng(seed)
    sequences = []
    for _ in range(n_sequences):
        if length_jitter > 0.0:
            lo = max(1, int(length * (1.0 - length_jitter)))
            hi = max(lo, int(length * (1.0 + length_jitter)))
            n = int(rng.integers(lo, hi + 1))
        else:
            n = length
        sequences.append(random_walk(n, rng=rng))
    return sequences


def _as_generator(
    rng: np.random.Generator | int,
) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
