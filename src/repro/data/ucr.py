"""UCR time-series archive format loader.

The UCR archive is the standard corpus for DTW evaluation; its files
are plain text with one sequence per line::

    <label><TAB or comma or spaces><v1> <v2> ... <vn>

The first field is the class label (often an integer).  This loader
accepts tab-, comma- and whitespace-separated variants, returns
labelled :class:`~repro.types.Sequence` objects, and can split into the
archive's conventional ``_TRAIN`` / ``_TEST`` pair when given the
dataset's directory and name.
"""

from __future__ import annotations

from pathlib import Path

from ..exceptions import ValidationError
from ..types import Sequence

__all__ = ["load_ucr_file", "load_ucr_dataset"]


def load_ucr_file(path: str | Path) -> list[Sequence]:
    """Load one UCR-format file: label-prefixed rows of values."""
    path = Path(path)
    sequences: list[Sequence] = []
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            for sep in ("\t", ","):
                if sep in line:
                    fields = [p for p in line.split(sep) if p.strip()]
                    break
            else:
                fields = line.split()
            if len(fields) < 2:
                raise ValidationError(
                    f"{path}:{line_no}: expected a label and at least one value"
                )
            label = fields[0].strip()
            try:
                values = [float(v) for v in fields[1:]]
            except ValueError as error:
                raise ValidationError(
                    f"{path}:{line_no}: non-numeric value ({error})"
                ) from None
            # UCR labels are usually numeric strings like "1.0"; trim.
            try:
                label = f"{float(label):g}"
            except ValueError:
                pass
            sequences.append(Sequence(values, label=label))
    if not sequences:
        raise ValidationError(f"{path} contained no sequences")
    return sequences


def load_ucr_dataset(
    directory: str | Path, name: str
) -> tuple[list[Sequence], list[Sequence]]:
    """Load a UCR dataset's ``<name>_TRAIN`` / ``<name>_TEST`` pair.

    Either plain or ``.tsv``-suffixed file names are accepted.
    """
    directory = Path(directory)
    splits = []
    for suffix in ("_TRAIN", "_TEST"):
        candidates = [
            directory / f"{name}{suffix}",
            directory / f"{name}{suffix}.tsv",
            directory / f"{name}{suffix}.txt",
        ]
        for candidate in candidates:
            if candidate.exists():
                splits.append(load_ucr_file(candidate))
                break
        else:
            raise ValidationError(
                f"no {name}{suffix} file found under {directory}"
            )
    return splits[0], splits[1]
