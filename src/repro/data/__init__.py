"""Data generators and query workloads (paper section 5.1).

* :mod:`repro.data.synthetic` — the paper's random-walk generator:
  ``s_i = s_{i-1} + z_i`` with ``z_i ~ U[-0.1, 0.1]`` and
  ``s_1 ~ U[1, 10]``.
* :mod:`repro.data.stocks` — an S&P-500-like ensemble standing in for
  the paper's real stock data (545 sequences, average length 231); also
  loads real CSV data when available.
* :mod:`repro.data.queries` — the paper's query workload: perturb a
  random database sequence element-wise by ``U[-std/2, +std/2]``.
"""

from .queries import QueryWorkload, perturb_sequence
from .shapes import CBF_CLASSES, cbf_dataset, cbf_instance
from .stocks import StockDataset, load_stock_csv, synthetic_sp500
from .synthetic import random_walk, random_walk_dataset
from .ucr import load_ucr_dataset, load_ucr_file

__all__ = [
    "QueryWorkload",
    "perturb_sequence",
    "CBF_CLASSES",
    "cbf_dataset",
    "cbf_instance",
    "load_ucr_dataset",
    "load_ucr_file",
    "StockDataset",
    "load_stock_csv",
    "synthetic_sp500",
    "random_walk",
    "random_walk_dataset",
]
