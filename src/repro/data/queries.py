"""Query workload generation (paper section 5.1).

"For each experiment, we performed 100 queries with query sequences
generated as follows: (1) select a random sequence from the database;
(2) take a random value from an appropriate range for every element;
and (3) add the value to the element."  The appropriate range is
``[-std/2, +std/2]`` where ``std`` is the standard deviation of the
selected sequence (the paper's footnote 2).
"""

from __future__ import annotations

from typing import Iterator, Sequence as TypingSequence

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence, SequenceLike, as_array

__all__ = ["perturb_sequence", "QueryWorkload"]


def perturb_sequence(
    sequence: SequenceLike,
    *,
    rng: np.random.Generator | int = 0,
) -> Sequence:
    """Apply the paper's element-wise perturbation to one sequence.

    Each element gets an independent uniform offset from
    ``[-std/2, +std/2]``, where ``std`` is the sequence's own standard
    deviation.  A constant sequence (std 0) is returned unchanged.
    """
    arr = as_array(sequence, allow_empty=False)
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    std = float(arr.std())
    if std == 0.0:
        return Sequence(arr.copy())
    offsets = generator.uniform(-std / 2.0, std / 2.0, size=arr.size)
    return Sequence(arr + offsets)


class QueryWorkload:
    """The paper's 100-query workload over a database of sequences.

    Parameters
    ----------
    sequences:
        The database contents queries are derived from.
    n_queries:
        Workload size (paper: 100).
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        sequences: TypingSequence[SequenceLike],
        *,
        n_queries: int = 100,
        seed: int = 7,
    ) -> None:
        if not sequences:
            raise ValidationError("workload requires a non-empty database")
        if n_queries < 1:
            raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
        self._sequences = list(sequences)
        self._n_queries = n_queries
        self._seed = seed

    @property
    def n_queries(self) -> int:
        """Number of queries generated per pass."""
        return self._n_queries

    def __len__(self) -> int:
        return self._n_queries

    def __iter__(self) -> Iterator[Sequence]:
        """Generate the queries (deterministic for a fixed seed)."""
        rng = np.random.default_rng(self._seed)
        for _ in range(self._n_queries):
            base = self._sequences[int(rng.integers(len(self._sequences)))]
            yield perturb_sequence(base, rng=rng)

    def queries(self) -> list[Sequence]:
        """Materialize the whole workload as a list."""
        return list(self)
