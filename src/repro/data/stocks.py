"""S&P-500-like stock sequences (substitution for the paper's real data).

The paper uses 545 daily-price sequences extracted from the USA S&P 500
(``biz.swcp.com/stocks``, long defunct) with an average length of 231.
That exact data is unavailable offline, so — per the substitution policy
in DESIGN.md — :func:`synthetic_sp500` generates a seeded ensemble with
the same aggregate properties the experiments exercise:

* 545 sequences whose lengths are distributed around 231 (different
  lengths, so time warping is actually needed);
* positive price levels spread over a realistic range (a few dollars to
  a few hundred), so the 4-d feature space has the spread that makes
  indexing meaningful;
* geometric-random-walk dynamics with per-ticker drift and volatility,
  giving the strong autocorrelation real price series have.

:func:`load_stock_csv` reads real data when the user has it: one CSV per
call with ``ticker,price`` rows or one-sequence-per-line layouts.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from ..types import Sequence

__all__ = ["StockDataset", "synthetic_sp500", "load_stock_csv"]

#: The paper's dataset shape.
PAPER_N_SEQUENCES = 545
PAPER_AVG_LENGTH = 231


@dataclass(frozen=True)
class StockDataset:
    """A named collection of stock price sequences.

    Attributes
    ----------
    sequences:
        The price sequences (labels carry ticker names).
    source:
        Provenance string ("synthetic-sp500" or the CSV path).
    """

    sequences: list[Sequence]
    source: str

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def average_length(self) -> float:
        """Mean sequence length."""
        return float(np.mean([len(s) for s in self.sequences]))

    def total_elements(self) -> int:
        """Total number of stored elements."""
        return sum(len(s) for s in self.sequences)


def synthetic_sp500(
    n_sequences: int = PAPER_N_SEQUENCES,
    avg_length: int = PAPER_AVG_LENGTH,
    *,
    seed: int = 42,
) -> StockDataset:
    """Generate the S&P-500 stand-in ensemble (see module docstring)."""
    if n_sequences < 1:
        raise ValidationError(f"n_sequences must be >= 1, got {n_sequences}")
    if avg_length < 2:
        raise ValidationError(f"avg_length must be >= 2, got {avg_length}")
    rng = np.random.default_rng(seed)
    sequences: list[Sequence] = []
    for i in range(n_sequences):
        # Length: truncated normal around the average (sd = 15% of mean).
        length = int(rng.normal(avg_length, 0.15 * avg_length))
        length = max(8, length)
        # Start price: log-uniform from ~$10 to ~$100 (a mid-cap-like
        # spread; keeps the global value range compatible with the
        # 100-category resolution ST-Filter is tuned for).
        start = float(np.exp(rng.uniform(np.log(10.0), np.log(100.0))))
        # Per-ticker annualized drift and volatility, converted to daily.
        drift = rng.normal(0.0003, 0.0005)
        volatility = float(np.exp(rng.uniform(np.log(0.006), np.log(0.02))))
        returns = rng.normal(drift, volatility, size=length - 1)
        prices = np.empty(length)
        prices[0] = start
        prices[1:] = start * np.exp(np.cumsum(returns))
        sequences.append(Sequence(prices, label=f"TICK{i:04d}"))
    return StockDataset(sequences=sequences, source="synthetic-sp500")


def load_stock_csv(path: str | Path) -> StockDataset:
    """Load real stock sequences from a CSV file.

    Two layouts are accepted:

    * **long**: rows of ``ticker,price`` (header optional); consecutive
      rows of the same ticker form its sequence in order;
    * **wide**: each line is one sequence of comma-separated prices,
      optionally prefixed by a non-numeric ticker field.
    """
    path = Path(path)
    groups: dict[str, list[float]] = {}
    order: list[str] = []
    wide_sequences: list[Sequence] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        for row_number, row in enumerate(reader):
            row = [cell.strip() for cell in row if cell.strip()]
            if not row:
                continue
            if len(row) == 2 and not _is_number(row[0]) and _is_number(row[1]):
                ticker, price = row
                if ticker not in groups:
                    groups[ticker] = []
                    order.append(ticker)
                groups[ticker].append(float(price))
                continue
            values = row[1:] if row and not _is_number(row[0]) else row
            label = row[0] if row and not _is_number(row[0]) else None
            if not values:
                continue
            if all(_is_number(v) for v in values):
                wide_sequences.append(
                    Sequence([float(v) for v in values], label=label)
                )
            elif row_number == 0:
                continue  # header line
            else:
                raise ValidationError(
                    f"{path}: unparseable row {row_number + 1}: {row!r}"
                )
    sequences = [
        Sequence(groups[t], label=t) for t in order if len(groups[t]) > 0
    ]
    sequences.extend(wide_sequences)
    if not sequences:
        raise ValidationError(f"{path} contained no sequences")
    return StockDataset(sequences=sequences, source=str(path))


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
