"""The registry of named benchmark specs — ``repro bench --list``.

Two families live here.  *Workload* specs describe query sweeps the
runner times itself with interleaved per-query-minimum sampling
(method/backend/shard/obs-mode comparisons).  *Experiment* specs wrap
the paper-figure and ablation harnesses in :mod:`repro.eval.experiments`
plus the bespoke sweeps kept in ``benchmarks/bench_*.py``, folding each
run's series and work counters into the same ``BENCH_*.json`` schema.

Every spec is fully seeded, so the work counters a run records are
exact and comparable bit-for-bit against the committed baselines in
``benchmarks/_baselines/``.
"""

from __future__ import annotations

from ..exceptions import ValidationError
from .spec import BenchSpec, DatasetSpec, VariantSpec

__all__ = [
    "WORKLOADS",
    "SMOKE_SUITE",
    "get_spec",
    "iter_specs",
]


def _workload_specs() -> list[BenchSpec]:
    walk = DatasetSpec(kind="walk", n=1200, length=100, seed=37)
    stocks = DatasetSpec(kind="stocks", n=400, length=128, seed=42)
    return [
        BenchSpec(
            name="cascade",
            title="Lower-bound cascade vs per-sequence LB-Scan",
            dataset=walk,
            epsilons=(0.1, 0.2, 0.4),
            variants=(
                VariantSpec(name="per_seq_scan", method="per_seq_scan"),
                VariantSpec(name="cascade", method="cascade"),
                VariantSpec(name="cascade_batch", method="cascade_batch"),
            ),
            n_queries=6,
            repeats=3,
            smoke_n=150,
            smoke_queries=3,
        ),
        BenchSpec(
            name="backends",
            title="Index backends under the query engine (stock data)",
            dataset=stocks,
            epsilons=(0.5, 2.0),
            variants=(
                VariantSpec(name="rtree", method="engine", backend="rtree"),
                VariantSpec(name="rstar", method="engine", backend="rstar"),
                VariantSpec(name="strbulk", method="engine", backend="strbulk"),
                VariantSpec(name="linear", method="engine", backend="linear"),
            ),
            n_queries=6,
            repeats=3,
            smoke_n=80,
            smoke_queries=3,
        ),
        BenchSpec(
            name="stock_methods",
            title="Paper search methods on stock data",
            dataset=stocks,
            epsilons=(0.5, 2.0),
            variants=(
                VariantSpec(name="naive", method="naive"),
                VariantSpec(name="lb_scan", method="lb_scan"),
                VariantSpec(name="tw_sim", method="tw_sim"),
                VariantSpec(name="cascade_scan", method="cascade_scan"),
            ),
            n_queries=4,
            repeats=3,
            smoke_n=60,
            smoke_queries=2,
        ),
        BenchSpec(
            name="sharding",
            title="Shard-parallel engine scaling and executor planes",
            dataset=walk,
            # 0.2 is filter-heavy (the cascade prunes nearly everything);
            # 6.0 is verify-heavy (most candidates reach DTW), which is
            # where the executor choice moves wall-clock: the process
            # plane sidesteps the GIL that serializes thread workers.
            epsilons=(0.2, 6.0),
            variants=(
                VariantSpec(name="shards1", method="engine", shards=1),
                VariantSpec(name="shards2", method="engine", shards=2),
                VariantSpec(name="shards4", method="engine", shards=4),
                VariantSpec(
                    name="serial4", method="engine", shards=4, executor="serial"
                ),
                VariantSpec(
                    name="process4",
                    method="engine",
                    shards=4,
                    executor="process",
                ),
            ),
            # The verify-heavy tolerance makes passes expensive (every
            # candidate reaches full DTW), so this spec samples fewer
            # queries/repeats than the filter-bound ones.
            n_queries=4,
            repeats=2,
            smoke_n=150,
            smoke_queries=3,
        ),
        BenchSpec(
            name="obs_overhead",
            title="Observability overhead (off vs null sink vs enabled)",
            dataset=DatasetSpec(kind="walk", n=400, length=64, seed=11),
            epsilons=(0.3,),
            variants=(
                VariantSpec(name="off", method="engine", obs="off"),
                VariantSpec(name="null", method="engine", obs="null"),
                VariantSpec(name="enabled", method="engine", obs="enabled"),
            ),
            n_queries=8,
            repeats=5,
            smoke_n=120,
            smoke_queries=4,
            smoke_repeats=3,
        ),
    ]


_EXPERIMENTS = (
    # Paper figures and ablations (library harness).
    ("fig2", "repro.eval.experiments:experiment1_candidate_ratio"),
    ("fig3", "repro.eval.experiments:experiment2_elapsed_stock"),
    ("fig4", "repro.eval.experiments:experiment3_scale_count"),
    ("fig5", "repro.eval.experiments:experiment4_scale_length"),
    ("a1_base_distance", "repro.eval.experiments:ablation_base_distance"),
    ("a2_features", "repro.eval.experiments:ablation_features"),
    ("a3_bulk_load", "repro.eval.experiments:ablation_bulk_load"),
    ("a5_lower_bounds", "repro.eval.experiments:ablation_lower_bounds"),
    ("c1_cascade_stages", "repro.eval.experiments:experiment_cascade_stages"),
    # Bespoke sweeps that live with the benchmark scripts.
    ("backend_sweep", "benchmarks.bench_backend_sweep:_run"),
    ("index_variants", "benchmarks.bench_index_variants:_run"),
    ("subsequence", "benchmarks.bench_subsequence:_run"),
    ("categories", "benchmarks.bench_ablation_categories:_run"),
    ("tw_sim_index_choice", "benchmarks.bench_tw_sim_index_choice:_run"),
    ("a6_dtw_kernels", "benchmarks.bench_dtw_kernels:_run"),
    ("a7_storage", "benchmarks.bench_storage_io:_run"),
)


def _experiment_specs() -> list[BenchSpec]:
    return [
        BenchSpec(
            name=name,
            title=f"experiment {name}",
            kind="experiment",
            experiment=reference,
        )
        for name, reference in _EXPERIMENTS
    ]


#: All registered specs, keyed by name (``repro bench --list``).
WORKLOADS: dict[str, BenchSpec] = {
    spec.name: spec for spec in _workload_specs() + _experiment_specs()
}

#: The CI smoke-tier subset: cheap, counter-rich, and covering the
#: six subsystems the trajectory must guard (cascade pruning, index
#: backends, shard executors incl. the process plane, observability
#: overhead, DTW kernel parity + speedup, storage-plane IO parity).
SMOKE_SUITE = (
    "cascade",
    "backends",
    "sharding",
    "obs_overhead",
    "a6_dtw_kernels",
    "a7_storage",
)


def get_spec(name: str) -> BenchSpec:
    """The registered spec called *name* (raises on unknown names)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValidationError(
            f"unknown benchmark {name!r}; registered: {known}"
        ) from None


def iter_specs(names: list[str] | None = None) -> list[BenchSpec]:
    """Resolve a name list (``["all"]``/``None`` -> every spec)."""
    if not names or names == ["all"]:
        return list(WORKLOADS.values())
    return [get_spec(name) for name in names]
